"""Defense anatomy: watch Grad-Prune find the backdoor pathway.

Runs the defense with full telemetry and answers three questions the
paper's mechanism story raises:

1. *Which filters get pruned?* — per-layer depth profile;
2. *Were they the right ones?* — trigger-sensitivity of pruned vs kept
   filters (normalized spatial-max activation response);
3. *What did each pruning round do?* — unlearning loss + validation
   accuracy per round, written as an SVG line plot.

Run: ``python examples/defense_anatomy.py [--fast]``  (writes
``defense_anatomy_history.svg`` to the working directory)
"""

import argparse

import numpy as np

from repro.attacks import BadNetsAttack, train_backdoored_model
from repro.core import (
    FineTuner,
    GradientPruner,
    pruned_vs_kept_sensitivity,
    pruning_depth_profile,
    trigger_sensitivity,
)
from repro.data import make_synth_cifar
from repro.data.splits import defender_split
from repro.eval import evaluate_backdoor_metrics, pruning_history_svg
from repro.models import PruningMask, build_model
from repro.training import TrainConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n_train = 600 if args.fast else 1500
    epochs = 5 if args.fast else 8

    full, test = make_synth_cifar(n_train=n_train + 500, n_test=300, seed=args.seed)
    train = full.subset(np.arange(n_train))
    reservoir = full.subset(np.arange(n_train, n_train + 500))
    attack = BadNetsAttack(target_class=0)

    model = build_model("preact_resnet18", num_classes=10, seed=args.seed + 1)
    print("training backdoored model...")
    train_backdoored_model(
        model, train, attack, poison_ratio=0.10,
        config=TrainConfig(epochs=epochs, batch_size=64, lr=0.05),
        rng=np.random.default_rng(args.seed + 2),
    )
    print(f"baseline: {evaluate_backdoor_metrics(model, test, attack)}")

    # Ground-truth-ish signal measured BEFORE the defense touches anything.
    print("measuring per-filter trigger sensitivity (pre-defense)...")
    sensitivity = trigger_sensitivity(model, test, attack)

    clean_train, clean_val = defender_split(reservoir, 20, np.random.default_rng(args.seed + 3))
    mask = PruningMask(model)
    pruner = GradientPruner(max_acc_drop=0.10, patience=5)
    history = pruner.prune(
        model,
        attack.triggered_with_true_labels(clean_train),
        clean_val,
        attack.triggered_with_true_labels(clean_val),
        mask=mask,
    )
    print(f"\npruning stopped: {history.stop_reason} ({history.num_pruned} filters)")

    print("\n1. depth profile (pruned / total per conv layer):")
    for name, pruned_count, total in pruning_depth_profile(model, mask.pruned_refs):
        bar = "#" * pruned_count
        print(f"   {name:<24} {pruned_count:>2}/{total:<3} {bar}")

    if len(mask):
        comparison = pruned_vs_kept_sensitivity(sensitivity, mask.pruned_refs)
        print("\n2. trigger sensitivity: pruned vs kept filters")
        print(f"   pruned mean = {comparison['pruned_mean']:.3f}")
        print(f"   kept mean   = {comparison['kept_mean']:.3f}")
        print(f"   ratio       = {comparison['ratio']:.2f}x "
              f"({'the defense targeted trigger-responsive filters' if comparison['ratio'] > 1 else 'inconclusive'})")

    if history.num_pruned:
        svg = pruning_history_svg(history, title="Grad-Prune rounds")
        with open("defense_anatomy_history.svg", "w") as handle:
            handle.write(svg)
        print("\n3. per-round history written to defense_anatomy_history.svg")

    tuner = FineTuner(max_epochs=12, patience=4, seed=args.seed)
    tuner.tune(
        model, clean_train, clean_val,
        attack.triggered_with_true_labels(clean_train),
        attack.triggered_with_true_labels(clean_val),
        mask=mask,
    )
    print(f"\nafter fine-tuning: {evaluate_backdoor_metrics(model, test, attack)}")


if __name__ == "__main__":
    main()
