"""Quickstart: embed a BadNets backdoor, then remove it with Grad-Prune.

Runs end-to-end on CPU in a few minutes::

    python examples/quickstart.py            # default sizes
    python examples/quickstart.py --fast     # smaller/faster variant

Walks through the full story of the paper:

1. train a PreactResNet-18 on a poisoned SynthCIFAR training set (the
   adversary's step);
2. measure the damage: high ASR at unchanged clean accuracy;
3. play defender with a tiny clean budget (10 samples per class),
   synthesize backdoor variants, and run gradient-based unlearning pruning
   plus fine-tuning;
4. measure again: ASR collapses, accuracy holds, RA recovers.
"""

import argparse
import time

import numpy as np

from repro.attacks import BadNetsAttack, train_backdoored_model
from repro.core import GradPruneConfig, GradPruneDefense
from repro.data import make_synth_cifar
from repro.data.splits import defender_split
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics
from repro.models import build_model
from repro.training import TrainConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller dataset and fewer epochs")
    parser.add_argument("--spc", type=int, default=10, help="defender samples per class")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n_train = 600 if args.fast else 1500
    n_reservoir = 400 if args.fast else 800
    epochs = 5 if args.fast else 8

    print("== 1. Data and attack setup")
    full_train, test = make_synth_cifar(
        n_train=n_train + n_reservoir, n_test=300, seed=args.seed
    )
    train = full_train.subset(np.arange(n_train))
    reservoir = full_train.subset(np.arange(n_train, n_train + n_reservoir))
    attack = BadNetsAttack(target_class=0)
    print(f"   train={len(train)} reservoir={len(reservoir)} test={len(test)}")

    print("== 2. Adversary trains a backdoored model (10% poisoning)")
    model = build_model("preact_resnet18", num_classes=10, seed=args.seed + 1)
    start = time.time()
    train_backdoored_model(
        model, train, attack,
        poison_ratio=0.10,
        config=TrainConfig(epochs=epochs, batch_size=64, lr=0.05, shuffle_seed=args.seed),
        rng=np.random.default_rng(args.seed + 2),
    )
    baseline = evaluate_backdoor_metrics(model, test, attack)
    print(f"   trained in {time.time() - start:.0f}s")
    print(f"   baseline: {baseline}  <- backdoor fires on ~all triggered inputs")

    print(f"== 3. Defender: SPC={args.spc} clean samples per class, Grad-Prune")
    clean_train, clean_val = defender_split(
        reservoir, spc=args.spc, rng=np.random.default_rng(args.seed + 3)
    )
    data = DefenderData(clean_train=clean_train, clean_val=clean_val, attack=attack)
    defense = GradPruneDefense(GradPruneConfig(
        max_acc_drop=0.10, prune_patience=5, tune_patience=4, tune_max_epochs=15,
        seed=args.seed,
    ))
    start = time.time()
    report = defense.apply(model, data)
    print(f"   defense ran in {time.time() - start:.0f}s")
    print(f"   pruned {report.details['num_pruned']} filters "
          f"({report.details['sparsity'] * 100:.1f}% of all conv filters)")
    print(f"   pruning stopped: {report.details['prune_stop_reason']}")
    print(f"   fine-tuning stopped: {report.details['tune_stop_reason']}")

    print("== 4. Post-defense metrics")
    defended = evaluate_backdoor_metrics(model, test, attack)
    print(f"   before: {baseline}")
    print(f"   after:  {defended}")
    asr_drop = (baseline.asr - defended.asr) * 100
    print(f"   => ASR reduced by {asr_drop:.1f} points; "
          f"ACC moved {(defended.acc - baseline.acc) * 100:+.1f} points; "
          f"RA recovered to {defended.ra * 100:.1f}%")


if __name__ == "__main__":
    main()
