"""Transfer learning with a backdoored upstream model (paper §I threat).

The paper motivates backdoor risk through outsourced training and transfer
learning: a downstream user takes a pre-trained (secretly backdoored)
feature extractor, replaces the classification head, and fine-tunes the
head on their own clean data.  This example shows:

1. the backdoor *survives* head-only transfer — triggered inputs still
   route through the poisoned features to the attacker's target;
2. Grad-Prune applied by the downstream user (who can synthesize the
   trigger per assumption III-C) removes it.

Run: ``python examples/transfer_learning_backdoor.py [--fast]``
"""

import argparse
import copy
import time

import numpy as np

from repro.attacks import BadNetsAttack, train_backdoored_model
from repro.core import GradPruneConfig, GradPruneDefense
from repro.data import make_synth_cifar
from repro.data.dataset import DataLoader
from repro.data.splits import defender_split
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics
from repro.models import build_model
from repro.nn import SGD, Tensor, cross_entropy
from repro.training import TrainConfig, evaluate_accuracy


def finetune_head_only(model, dataset, epochs: int, lr: float, seed: int) -> None:
    """Train only the final linear layer, freezing the feature extractor."""
    head_params = [model.fc.weight] + ([model.fc.bias] if model.fc.bias is not None else [])
    optimizer = SGD(head_params, lr=lr, momentum=0.9)
    loader = DataLoader(dataset, batch_size=64, shuffle=True, rng=np.random.default_rng(seed))
    model.train()
    for _epoch in range(epochs):
        for images, labels in loader:
            loss = cross_entropy(model(Tensor(images)), labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    model.eval()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    upstream_n = 600 if args.fast else 1500
    downstream_n = 400 if args.fast else 800
    epochs = 5 if args.fast else 8

    # Upstream provider's data and the downstream user's data come from the
    # same domain (same generation seed -> same class prototypes).
    total = upstream_n + downstream_n + 500
    full, test = make_synth_cifar(n_train=total, n_test=300, seed=args.seed)
    upstream = full.subset(np.arange(upstream_n))
    downstream = full.subset(np.arange(upstream_n, upstream_n + downstream_n))
    reservoir = full.subset(np.arange(upstream_n + downstream_n, total))

    print("== 1. Upstream provider ships a backdoored feature extractor")
    attack = BadNetsAttack(target_class=0)
    model = build_model("preact_resnet18", num_classes=10, seed=args.seed + 1)
    train_backdoored_model(
        model, upstream, attack, poison_ratio=0.10,
        config=TrainConfig(epochs=epochs, batch_size=64, lr=0.05),
        rng=np.random.default_rng(args.seed + 2),
    )
    print(f"   upstream model: {evaluate_backdoor_metrics(model, test, attack)}")

    print("== 2. Downstream user: replace the head, fine-tune it on clean data")
    transferred = copy.deepcopy(model)
    rng = np.random.default_rng(args.seed + 3)
    transferred.fc.weight.data[...] = rng.normal(
        0.0, 0.05, transferred.fc.weight.shape
    ).astype(np.float32)
    if transferred.fc.bias is not None:
        transferred.fc.bias.data[...] = 0.0
    start = time.time()
    finetune_head_only(transferred, downstream, epochs=epochs, lr=0.05, seed=args.seed)
    after_transfer = evaluate_backdoor_metrics(transferred, test, attack)
    print(f"   head-only fine-tune took {time.time() - start:.0f}s")
    print(f"   after transfer: {after_transfer}")
    if after_transfer.asr > 0.5:
        print("   => the backdoor SURVIVED head-only transfer learning")

    print("== 3. Downstream user runs Grad-Prune with a small clean budget")
    clean_train, clean_val = defender_split(reservoir, 10, np.random.default_rng(args.seed + 4))
    data = DefenderData(clean_train, clean_val, attack)
    GradPruneDefense(GradPruneConfig(prune_patience=5, tune_max_epochs=12)).apply(transferred, data)
    defended = evaluate_backdoor_metrics(transferred, test, attack)
    print(f"   defended: {defended}")
    print(f"   clean accuracy on downstream task: {evaluate_accuracy(transferred, test):.3f}")


if __name__ == "__main__":
    main()
