"""Federated learning with a malicious client, then server-side repair.

Paper §I names federated learning among the settings that let adversaries
inject backdoors.  This example runs the full story on the substrate:

1. Eight clients jointly train a SynthCIFAR classifier with FedAvg; one
   client is malicious (poisons its shard with BadNets and boosts its
   update — model replacement).
2. The backdoor lands in the *global* model even though 7/8 clients are
   honest.
3. A robust aggregator (coordinate-wise trimmed mean) blunts but does not
   reliably remove the attack.
4. The server applies Grad-Prune post-hoc with a small clean holdout and
   removes it.

Run: ``python examples/federated_backdoor.py [--fast]``
"""

import argparse
import time

import numpy as np

from repro.attacks import BadNetsAttack
from repro.core import GradPruneConfig, GradPruneDefense
from repro.data import make_synth_cifar
from repro.data.splits import defender_split
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics
from repro.federated import run_federated_backdoor
from repro.models import build_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n_train = 800 if args.fast else 1600
    rounds = 4 if args.fast else 8
    num_clients = 6 if args.fast else 8

    full, test = make_synth_cifar(n_train=n_train + 500, n_test=300, seed=args.seed)
    train = full.subset(np.arange(n_train))
    reservoir = full.subset(np.arange(n_train, n_train + 500))
    attack = BadNetsAttack(target_class=0)

    print(f"== 1. FedAvg with {num_clients} clients, 1 malicious (boost=4), {rounds} rounds")
    model = build_model("preact_resnet18", num_classes=10, seed=args.seed + 1)
    start = time.time()
    _server, log = run_federated_backdoor(
        model, train, test, attack,
        num_clients=num_clients, num_malicious=1, rounds=rounds,
        local_epochs=2, boost=4.0, lr=0.05, seed=args.seed,
    )
    print(f"   {time.time() - start:.0f}s; per-round (ACC, ASR):")
    for index, metrics in enumerate(log.rounds):
        print(f"     round {index}: ACC={metrics.acc:.3f} ASR={metrics.asr:.3f}")
    print(f"   => backdoor in the GLOBAL model: {log.final}")

    print("== 2. Same run under trimmed-mean aggregation")
    robust_model = build_model("preact_resnet18", num_classes=10, seed=args.seed + 1)
    _server2, log2 = run_federated_backdoor(
        robust_model, train, test, attack,
        num_clients=num_clients, num_malicious=1, rounds=rounds,
        local_epochs=2, boost=4.0, lr=0.05, aggregation="trimmed_mean", seed=args.seed,
    )
    print(f"   trimmed-mean final: {log2.final}")

    print("== 3. Server-side Grad-Prune on the FedAvg model (SPC=10 holdout)")
    clean_train, clean_val = defender_split(reservoir, 10, np.random.default_rng(args.seed + 5))
    data = DefenderData(clean_train, clean_val, attack)
    GradPruneDefense(GradPruneConfig(prune_patience=5, tune_max_epochs=12)).apply(model, data)
    defended = evaluate_backdoor_metrics(model, test, attack)
    print(f"   defended global model: {defended}")


if __name__ == "__main__":
    main()
