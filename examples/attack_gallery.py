"""Attack gallery: what the four triggers look like and how they embed.

For each attack (BadNets, Blended, Low-Frequency, BPP) this example

1. reports the trigger's footprint: how many pixels change, the mean and
   max perturbation, and an ASCII difference map;
2. trains a quick backdoored model and reports baseline ACC / ASR / RA.

Useful to build intuition for why defenses behave so differently per
attack (e.g. why patch-oriented pruning crushes BadNets but struggles with
the input-dependent BPP trigger).

Run: ``python examples/attack_gallery.py [--skip-training]``
"""

import argparse
import time

import numpy as np

from repro.attacks import ATTACK_REGISTRY, build_attack, train_backdoored_model
from repro.data import make_synth_cifar
from repro.eval import evaluate_backdoor_metrics
from repro.models import build_model
from repro.training import TrainConfig


def ascii_diff_map(clean: np.ndarray, triggered: np.ndarray, width: int = 32) -> str:
    """Render per-pixel trigger magnitude as ASCII shades."""
    diff = np.abs(triggered - clean).mean(axis=0)  # (H, W)
    peak = diff.max()
    if peak > 0:
        diff = diff / peak
    shades = " .:-=+*#%@"
    lines = []
    for row in diff:
        lines.append("".join(shades[min(int(v * (len(shades) - 1)), len(shades) - 1)] for v in row))
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-training", action="store_true",
                        help="only show trigger footprints (seconds instead of minutes)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    train, test = make_synth_cifar(n_train=900, n_test=300, seed=args.seed)
    sample = train.images[:64]

    for name in sorted(ATTACK_REGISTRY):
        attack = build_attack(name, target_class=0)
        triggered = attack.apply(sample)
        delta = np.abs(triggered - sample)
        changed = (delta > 1e-6).any(axis=1)  # (N, H, W)
        print(f"\n=== {name}")
        print(f"  pixels changed: {changed.mean() * 100:5.1f}% of the image")
        print(f"  mean |perturbation| (changed px): {delta[delta > 1e-6].mean():.3f}")
        print(f"  max  |perturbation|: {delta.max():.3f}")
        print("  trigger footprint (mean |delta| over one image):")
        print("  " + ascii_diff_map(sample[0], triggered[0]).replace("\n", "\n  "))

        if args.skip_training:
            continue
        model = build_model("preact_resnet18", num_classes=10, seed=args.seed + 1)
        start = time.time()
        train_backdoored_model(
            model, train, attack, poison_ratio=0.10,
            config=TrainConfig(epochs=5, batch_size=64, lr=0.05),
            rng=np.random.default_rng(args.seed + 2),
        )
        metrics = evaluate_backdoor_metrics(model, test, attack)
        print(f"  embedded in {time.time() - start:.0f}s -> baseline {metrics}")


if __name__ == "__main__":
    main()
