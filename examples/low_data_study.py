"""Low-data study: how much clean data does the defender really need?

The paper's central evaluation axis (§V-B) is the defender's data budget,
measured in samples per class (SPC).  This example sweeps SPC for
Grad-Prune and plain fine-tuning on one backdoored model, showing the
paper's qualitative finding: fine-tuning collapses in low-data settings
while gradient-informed pruning degrades gracefully (pruning needs
gradients, not gradient *steps*, so a handful of samples already carries
signal).

Run: ``python examples/low_data_study.py [--fast]``
"""

import argparse
import copy
import time

import numpy as np

from repro.attacks import BadNetsAttack, train_backdoored_model
from repro.data import make_synth_cifar
from repro.data.splits import defender_split
from repro.defenses import build_defense
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics
from repro.models import build_model
from repro.training import TrainConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    spc_values = (2, 10) if args.fast else (2, 10, 50)
    n_train = 600 if args.fast else 1500
    n_reservoir = 600
    epochs = 5 if args.fast else 8

    full_train, test = make_synth_cifar(
        n_train=n_train + n_reservoir, n_test=300, seed=args.seed
    )
    train = full_train.subset(np.arange(n_train))
    reservoir = full_train.subset(np.arange(n_train, n_train + n_reservoir))
    attack = BadNetsAttack(target_class=0)

    model = build_model("preact_resnet18", num_classes=10, seed=args.seed + 1)
    print("training backdoored model...")
    train_backdoored_model(
        model, train, attack, poison_ratio=0.10,
        config=TrainConfig(epochs=epochs, batch_size=64, lr=0.05),
        rng=np.random.default_rng(args.seed + 2),
    )
    baseline = evaluate_backdoor_metrics(model, test, attack)
    print(f"baseline: {baseline}\n")

    defenses = {
        "ft": {"epochs": 10},
        "grad_prune": {"prune_patience": 5, "tune_max_epochs": 12},
    }
    print(f"{'SPC':>4} {'defense':<12} {'ACC %':>12} {'ASR %':>12} {'RA %':>12}")
    for spc in spc_values:
        for name, kwargs in defenses.items():
            accs, asrs, ras = [], [], []
            for trial in range(args.trials):
                clean_train, clean_val = defender_split(
                    reservoir, spc=spc,
                    rng=np.random.default_rng(args.seed + 100 * trial + spc),
                )
                data = DefenderData(clean_train, clean_val, attack)
                candidate = copy.deepcopy(model)
                build_defense(name, **kwargs).apply(candidate, data)
                metrics = evaluate_backdoor_metrics(candidate, test, attack)
                accs.append(metrics.acc)
                asrs.append(metrics.asr)
                ras.append(metrics.ra)
            print(
                f"{spc:>4} {name:<12} "
                f"{np.mean(accs) * 100:6.2f}±{np.std(accs) * 100:4.2f} "
                f"{np.mean(asrs) * 100:6.2f}±{np.std(asrs) * 100:4.2f} "
                f"{np.mean(ras) * 100:6.2f}±{np.std(ras) * 100:4.2f}"
            )
    print("\nExpected shape: grad_prune holds low ASR even at SPC=2, while ft")
    print("needs the larger budgets to move ASR at all.")


if __name__ == "__main__":
    main()
