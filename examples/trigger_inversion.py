"""Trigger inversion: defending when the real trigger is unknown.

The paper assumes the defender can synthesize triggered inputs (§III-C) and
names removing that assumption as future work (§VI).  This example runs the
full trigger-free pipeline on a BadNets-backdoored model:

1. Neural-Cleanse-style detection: invert a minimal trigger per class and
   flag the class whose trigger is an anomalously small L1 outlier;
2. wrap the inverted (mask, pattern) as a synthesized attack;
3. run Grad-Prune against the synthesized trigger;
4. score the defended model against the REAL trigger to see how much of the
   backdoor the approximation removed.

Run: ``python examples/trigger_inversion.py [--fast]``
"""

import argparse
import time

import numpy as np

from repro.attacks import BadNetsAttack, train_backdoored_model
from repro.core import GradPruneConfig
from repro.data import make_synth_cifar
from repro.data.splits import defender_split
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics
from repro.models import build_model
from repro.synthesis import detect_backdoor, grad_prune_without_trigger
from repro.training import TrainConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n_train = 600 if args.fast else 1500
    epochs = 5 if args.fast else 8
    steps = 100 if args.fast else 250

    full_train, test = make_synth_cifar(n_train=n_train + 500, n_test=300, seed=args.seed)
    train = full_train.subset(np.arange(n_train))
    reservoir = full_train.subset(np.arange(n_train, n_train + 500))
    attack = BadNetsAttack(target_class=0)

    print("== adversary: BadNets, target class 0 (the defender does NOT know this)")
    model = build_model("preact_resnet18", num_classes=10, seed=args.seed + 1)
    train_backdoored_model(
        model, train, attack, poison_ratio=0.10,
        config=TrainConfig(epochs=epochs, batch_size=64, lr=0.05),
        rng=np.random.default_rng(args.seed + 2),
    )
    baseline = evaluate_backdoor_metrics(model, test, attack)
    print(f"   baseline: {baseline}")

    clean_train, clean_val = defender_split(reservoir, 10, np.random.default_rng(args.seed + 3))

    print("== step 1: per-class trigger inversion + anomaly detection")
    start = time.time()
    detection = detect_backdoor(
        model, clean_train.concat(clean_val), num_classes=10, steps=steps, seed=args.seed
    )
    print(f"   {time.time() - start:.0f}s; per-class inverted-mask L1:")
    for cls, (l1, anomaly) in enumerate(zip(detection["mask_l1"], detection["anomaly_index"])):
        marker = "  <-- flagged" if cls in detection["flagged_classes"] else ""
        print(f"     class {cls}: L1={l1:7.2f} anomaly={anomaly:+5.2f}{marker}")

    print("== steps 2-3: Grad-Prune with the synthesized trigger")
    data = DefenderData(clean_train, clean_val, attack=None)
    start = time.time()
    report, synth = grad_prune_without_trigger(
        model, data, num_classes=10,
        config=GradPruneConfig(prune_patience=5, tune_max_epochs=10),
        inversion_steps=steps, seed=args.seed,
    )
    print(f"   {time.time() - start:.0f}s; detected target={report.details['synthesized_target']} "
          f"(true target: 0); inverted-trigger flip rate "
          f"{report.details['trigger_flip_rate'] * 100:.0f}%")

    print("== step 4: score against the REAL trigger")
    defended = evaluate_backdoor_metrics(model, test, attack)
    print(f"   before: {baseline}")
    print(f"   after:  {defended}")
    if defended.asr < baseline.asr * 0.5:
        print("   => the synthesized trigger carried enough signal to break the real backdoor")
    else:
        print("   => partial mitigation; detection/inversion quality limits the trigger-free"
              " pipeline (exactly why the paper lists this as future work)")


if __name__ == "__main__":
    main()
