"""Traffic-sign scenario: the paper's motivating deployment (§I).

A driver-assistance vendor outsources training of a traffic-sign classifier
and receives a model with an embedded Blended backdoor: any sign with a
faint full-image pattern is read as class 0 ("speed limit lifted", say).
The vendor holds only a small set of verified sign photos.

This example compares three mitigation options on a SynthGTSRB task with a
MobileNetV3-Large backbone (the paper's hardest architecture):

- FT-SAM (strongest fine-tuning baseline),
- ANP (adversarial neuron pruning baseline),
- Grad-Prune (the paper's gradient-based unlearning pruning).

Run: ``python examples/traffic_sign_defense.py [--fast]``
"""

import argparse
import copy
import time

import numpy as np

from repro.attacks import BlendedAttack, train_backdoored_model
from repro.data import make_synth_gtsrb
from repro.data.splits import defender_split
from repro.defenses import build_defense
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics
from repro.models import build_model
from repro.training import TrainConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--spc", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n_train = 500 if args.fast else 1200
    n_reservoir = 350 if args.fast else 700
    epochs = 5 if args.fast else 8
    num_classes = 8 if args.fast else 12

    print("== Traffic-sign task (SynthGTSRB) with a Blended backdoor")
    full_train, test = make_synth_gtsrb(
        n_train=n_train + n_reservoir, n_test=300, num_classes=num_classes, seed=args.seed
    )
    train = full_train.subset(np.arange(n_train))
    reservoir = full_train.subset(np.arange(n_train, n_train + n_reservoir))
    attack = BlendedAttack(target_class=0, blend_ratio=0.25)

    model = build_model("mobilenet_v3_large", num_classes=num_classes, seed=args.seed + 1)
    print(f"   MobileNetV3-Large: {model.num_parameters():,} parameters")
    start = time.time()
    train_backdoored_model(
        model, train, attack, poison_ratio=0.10,
        config=TrainConfig(epochs=epochs, batch_size=64, lr=0.05),
        rng=np.random.default_rng(args.seed + 2),
    )
    baseline = evaluate_backdoor_metrics(model, test, attack)
    print(f"   adversary training: {time.time() - start:.0f}s; baseline {baseline}")

    clean_train, clean_val = defender_split(
        reservoir, spc=args.spc, rng=np.random.default_rng(args.seed + 3)
    )
    data = DefenderData(clean_train=clean_train, clean_val=clean_val, attack=attack)

    defenses = {
        "ft_sam": {"epochs": 8 if args.fast else 15},
        "anp": {"steps": 40 if args.fast else 100},
        "grad_prune": {"prune_patience": 5, "tune_max_epochs": 10 if args.fast else 20},
    }
    print(f"\n{'defense':<12} {'ACC %':>7} {'ASR %':>7} {'RA %':>7} {'time':>6}")
    print(f"{'baseline':<12} {baseline.acc * 100:7.2f} {baseline.asr * 100:7.2f} "
          f"{baseline.ra * 100:7.2f} {'-':>6}")
    for name, kwargs in defenses.items():
        candidate = copy.deepcopy(model)
        start = time.time()
        build_defense(name, **kwargs).apply(candidate, data)
        metrics = evaluate_backdoor_metrics(candidate, test, attack)
        print(f"{name:<12} {metrics.acc * 100:7.2f} {metrics.asr * 100:7.2f} "
              f"{metrics.ra * 100:7.2f} {time.time() - start:5.0f}s")

    print("\nReading the rows: a good defense keeps ACC near baseline, drives ASR")
    print("toward zero, and lifts RA (triggered signs read correctly again).")


if __name__ == "__main__":
    main()
