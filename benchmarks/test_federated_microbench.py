"""Federated scheduler microbenchmark: serial vs ``--workers 4`` rounds.

Runs one 64-client Dirichlet tableF cell twice from cold run dirs — once
inline (``workers=0``) and once through the worker pool — checks the final
global models are bitwise identical, and records both wall-clock times in
``benchmarks/out/BENCH_federated.json``.

Read the speedup together with ``cpu_count`` in the JSON: per-round client
tasks parallelize, but each aggregation is a barrier, so the scale-out is
bounded by the round structure (and on a single-core box the pool can only
tie at best).
"""

import json
import os

import numpy as np
import pytest
from conftest import OUT_DIR

from repro.federated import FederatedOrchestrator, build_federated_dag, federated_spec
from repro.federated.scheduler import state_key
from repro.orchestrator.artifacts import ArtifactStore
from repro.orchestrator.orchestrator import OrchestratorConfig
from repro.utils import Timer
from repro.utils.timing import hard_timeout

pytestmark = pytest.mark.bench

WORKERS = 4
GUARD_SECONDS = 1800.0


@pytest.fixture(autouse=True)
def _bench_guard():
    """Wall-clock ceiling: a wedged worker pool fails loudly, not as a hang."""
    with hard_timeout(GUARD_SECONDS, "federated microbench wedged"):
        yield


def _cell_spec():
    return federated_spec(
        "quick",
        client_counts=(64,),
        malicious_fractions=(0.125,),
        rounds=2,
        partition="dirichlet",
        n_train=640,
        n_test=150,
        n_reservoir=300,
        num_classes=3,
        defenses=("fed_unlearn",),
        spc=10,
    )


def test_federated_serial_vs_workers(tmp_path):
    spec = _cell_spec()
    fp = spec.scenarios()[0].fingerprint()

    serial = FederatedOrchestrator(
        OrchestratorConfig(workers=0, run_dir=str(tmp_path / "serial"), verbose=False)
    )
    with Timer() as serial_timer:
        serial_result = serial.run(spec)
    serial_s = serial_timer.elapsed

    pooled = FederatedOrchestrator(
        OrchestratorConfig(
            workers=WORKERS, run_dir=str(tmp_path / "pooled"), verbose=False
        )
    )
    with Timer() as pooled_timer:
        pooled_result = pooled.run(spec)
    pooled_s = pooled_timer.elapsed

    assert serial_result.ok and pooled_result.ok
    serial_state = ArtifactStore(
        os.path.join(serial_result.run_dir, "artifacts")
    ).get_state(state_key(fp, 1))
    pooled_state = ArtifactStore(
        os.path.join(pooled_result.run_dir, "artifacts")
    ).get_state(state_key(fp, 1))
    assert serial_state is not None and pooled_state is not None
    assert all(np.array_equal(serial_state[k], pooled_state[k]) for k in serial_state)

    (cell,) = serial_result.cells
    payload = {
        "experiment": spec.experiment_id,
        "clients": 64,
        "rounds": 2,
        "tasks": len(build_federated_dag(spec)),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "workers_s": round(pooled_s, 3),
        "speedup": round(serial_s / pooled_s, 3),
        "final_asr": cell.arms["none"].asr,
        "fed_unlearn_asr": cell.arms["fed_unlearn"].asr,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "BENCH_federated.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
    assert payload["speedup"] > 0
