"""Ablation A3: sensitivity of the pruning stopping rule (alpha, P_p).

Sweeps the two user-facing knobs the paper advertises as "intuitive":
``max_acc_drop`` (which derives the accuracy floor alpha) and the patience
``P_p``.  Reports pruned-filter counts and post-prune metrics so the
trade-off surface is visible.  Fine-tuning is skipped to isolate the
stopping rule.
"""

import copy

import pytest

from repro.core import GradientPruner
from repro.eval import DefenderBudget, ScenarioConfig, evaluate_backdoor_metrics, get_profile
from repro.models import PruningMask

from conftest import write_text

PROFILE = get_profile()
SWEEP = [
    ("drop05_p3", 0.05, 3),
    ("drop10_p3", 0.10, 3),
    ("drop20_p3", 0.20, 3),
    ("drop10_p1", 0.10, 1),
    ("drop10_p8", 0.10, 8),
]


@pytest.fixture(scope="module")
def scenario(runner):
    config = ScenarioConfig(
        dataset="synth_cifar",
        model="preact_resnet18",
        attack="badnets",
        n_train=PROFILE.n_train,
        n_test=PROFILE.n_test,
        n_reservoir=PROFILE.n_reservoir,
        train_epochs=PROFILE.train_epochs,
        seed=0,
    )
    return runner.prepare(config)


def run_point(scenario, label: str, max_acc_drop: float, patience: int):
    data = DefenderBudget(spc=50, trial=0, seed=31).draw(
        scenario.reservoir, attack=scenario.attack
    )
    model = copy.deepcopy(scenario.backdoored_model)
    mask = PruningMask(model)
    pruner = GradientPruner(max_acc_drop=max_acc_drop, patience=patience)
    history = pruner.prune(
        model, data.backdoor_train(), data.clean_val, data.backdoor_val(), mask=mask
    )
    metrics = evaluate_backdoor_metrics(model, scenario.test_set, scenario.attack)
    row = (
        f"A3 {label:<10} drop={max_acc_drop:.2f} P_p={patience}  "
        f"pruned={history.num_pruned:>3}  ACC {metrics.acc * 100:6.2f} | "
        f"ASR {metrics.asr * 100:6.2f} | RA {metrics.ra * 100:6.2f}  [{history.stop_reason}]"
    )
    write_text(f"ablation_stopping_{label}", row)
    print("\n" + row)
    return history, metrics


@pytest.mark.parametrize("label,max_acc_drop,patience", SWEEP)
def test_ablation_stopping_point(benchmark, scenario, label, max_acc_drop, patience):
    history, metrics = benchmark.pedantic(
        run_point, args=(scenario, label, max_acc_drop, patience), rounds=1, iterations=1,
    )
    assert history.num_pruned >= 0
    assert 0.0 <= metrics.acc <= 1.0
