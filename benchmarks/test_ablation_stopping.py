"""Ablation A3: sensitivity of the pruning stopping rule (alpha, P_p).

Sweeps the two user-facing knobs the paper advertises as "intuitive":
``max_acc_drop`` (which derives the accuracy floor alpha) and the patience
``P_p``.  Reports pruned-filter counts and post-prune metrics so the
trade-off surface is visible.  Fine-tuning is skipped to isolate the
stopping rule.

``test_ablation_stopping_adaptive`` extends the sweep with the adaptive
policy (plateau + score-mass exhaustion, ``repro.core.stopping``): it must
match the fixed-``P_p`` run's final ASR/ACC within tolerance while never
taking more rounds — the drop-in-replacement claim.
"""

import copy
import json
import os

import pytest

from repro.core import AdaptiveStopping, GradientPruner
from repro.eval import DefenderBudget, ScenarioConfig, evaluate_backdoor_metrics, get_profile
from repro.models import PruningMask

from conftest import OUT_DIR, write_text

PROFILE = get_profile()
SWEEP = [
    ("drop05_p3", 0.05, 3),
    ("drop10_p3", 0.10, 3),
    ("drop20_p3", 0.20, 3),
    ("drop10_p1", 0.10, 1),
    ("drop10_p8", 0.10, 8),
]


@pytest.fixture(scope="module")
def scenario(runner):
    config = ScenarioConfig(
        dataset="synth_cifar",
        model="preact_resnet18",
        attack="badnets",
        n_train=PROFILE.n_train,
        n_test=PROFILE.n_test,
        n_reservoir=PROFILE.n_reservoir,
        train_epochs=PROFILE.train_epochs,
        seed=0,
    )
    return runner.prepare(config)


def run_point(scenario, label: str, max_acc_drop: float, patience: int):
    data = DefenderBudget(spc=50, trial=0, seed=31).draw(
        scenario.reservoir, attack=scenario.attack
    )
    model = copy.deepcopy(scenario.backdoored_model)
    mask = PruningMask(model)
    pruner = GradientPruner(max_acc_drop=max_acc_drop, patience=patience)
    history = pruner.prune(
        model, data.backdoor_train(), data.clean_val, data.backdoor_val(), mask=mask
    )
    metrics = evaluate_backdoor_metrics(model, scenario.test_set, scenario.attack)
    row = (
        f"A3 {label:<10} drop={max_acc_drop:.2f} P_p={patience}  "
        f"pruned={history.num_pruned:>3}  ACC {metrics.acc * 100:6.2f} | "
        f"ASR {metrics.asr * 100:6.2f} | RA {metrics.ra * 100:6.2f}  [{history.stop_reason}]"
    )
    write_text(f"ablation_stopping_{label}", row)
    print("\n" + row)
    return history, metrics


@pytest.mark.parametrize("label,max_acc_drop,patience", SWEEP)
def test_ablation_stopping_point(benchmark, scenario, label, max_acc_drop, patience):
    history, metrics = benchmark.pedantic(
        run_point, args=(scenario, label, max_acc_drop, patience), rounds=1, iterations=1,
    )
    assert history.num_pruned >= 0
    assert 0.0 <= metrics.acc <= 1.0


# Tolerance for the adaptive-vs-fixed final metrics (absolute ACC/ASR gap).
ADAPTIVE_TOL = 0.05
FIXED_PATIENCE = 10
ADAPTIVE_WINDOW = 5  # strictly < FIXED_PATIENCE: the no-more-rounds guarantee
# Generous accuracy budget (the drop20 sweep point) so the run is decided by
# the stopping policies under test, not by the alpha floor on round one.
ADAPTIVE_MAX_ACC_DROP = 0.20


def test_ablation_stopping_adaptive(scenario):
    """Adaptive stopping as a drop-in for fixed P_p: same endpoint, fewer rounds."""
    data = DefenderBudget(spc=50, trial=0, seed=31).draw(
        scenario.reservoir, attack=scenario.attack
    )

    def arm(stopping):
        model = copy.deepcopy(scenario.backdoored_model)
        mask = PruningMask(model)
        pruner = GradientPruner(
            max_acc_drop=ADAPTIVE_MAX_ACC_DROP, patience=FIXED_PATIENCE,
            stopping=stopping,
        )
        history = pruner.prune(
            model, data.backdoor_train(), data.clean_val, data.backdoor_val(), mask=mask
        )
        metrics = evaluate_backdoor_metrics(model, scenario.test_set, scenario.attack)
        return history, metrics

    fixed_history, fixed_metrics = arm(None)
    adaptive_history, adaptive_metrics = arm(
        AdaptiveStopping(window=ADAPTIVE_WINDOW, rel_improvement=1e-3)
    )

    acc_gap = abs(adaptive_metrics.acc - fixed_metrics.acc)
    asr_gap = abs(adaptive_metrics.asr - fixed_metrics.asr)
    payload = {
        "fixed": {
            "policy": fixed_history.stop_policy,
            "patience": FIXED_PATIENCE,
            "rounds": len(fixed_history.rounds),
            "num_pruned": fixed_history.num_pruned,
            "acc": fixed_metrics.acc, "asr": fixed_metrics.asr, "ra": fixed_metrics.ra,
            "stop_reason": fixed_history.stop_reason,
        },
        "adaptive": {
            "policy": adaptive_history.stop_policy,
            "window": ADAPTIVE_WINDOW,
            "rounds": len(adaptive_history.rounds),
            "num_pruned": adaptive_history.num_pruned,
            "acc": adaptive_metrics.acc, "asr": adaptive_metrics.asr,
            "ra": adaptive_metrics.ra,
            "stop_reason": adaptive_history.stop_reason,
        },
        "acc_gap": acc_gap,
        "asr_gap": asr_gap,
        "tolerance": ADAPTIVE_TOL,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "ablation_stopping_adaptive.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
    row = (
        f"A3 adaptive   window={ADAPTIVE_WINDOW} vs P_p={FIXED_PATIENCE}  "
        f"rounds {len(adaptive_history.rounds)} vs {len(fixed_history.rounds)}  "
        f"ACC {adaptive_metrics.acc * 100:6.2f} vs {fixed_metrics.acc * 100:6.2f} | "
        f"ASR {adaptive_metrics.asr * 100:6.2f} vs {fixed_metrics.asr * 100:6.2f}  "
        f"[{adaptive_history.stop_reason}]"
    )
    write_text("ablation_stopping_adaptive", row)
    print("\n" + row)

    assert adaptive_history.stop_policy == "adaptive"
    assert fixed_history.stop_policy == "patience"
    # Never slower than the fixed rule it replaces...
    assert len(adaptive_history.rounds) <= len(fixed_history.rounds)
    # ...and it lands on the same defense endpoint.
    assert acc_gap <= ADAPTIVE_TOL, f"ACC gap {acc_gap:.3f} > {ADAPTIVE_TOL}"
    assert asr_gap <= ADAPTIVE_TOL, f"ASR gap {asr_gap:.3f} > {ADAPTIVE_TOL}"
