"""Figure 1 bench: ACC & RA vs ASR scatter over the SynthCIFAR grids.

Figure 1 in the paper visualizes the Table I + II grids as scatter plots
(x = ASR, y = ACC or RA, one marker per defense).  This bench assembles the
series from the Table benches' stored aggregates when available — running
the full grid twice would be pure waste — and falls back to computing a
reduced slice itself.  Output: ``benchmarks/out/figure1_*.txt`` (ASCII
scatter) and ``figure1_series.json`` (the numeric series a plotting tool
would consume).
"""

import json
import os

import pytest

from repro.eval import (
    experiment_spec,
    figure_svg,
    render_scatter_text,
    run_experiment,
    scatter_series,
)

from conftest import OUT_DIR, load_results, write_text

SPEC = experiment_spec("figure1")
TABLE_OF_MODEL = {"preact_resnet18": "table1", "vgg19_bn": "table2"}


def collect_series(runner, model: str):
    table = TABLE_OF_MODEL[model]
    pooled = []
    missing = []
    for attack in SPEC.attacks:
        stored = load_results(f"{table}_{attack}")
        if stored is None:
            missing.append(attack)
        else:
            pooled.extend(stored["aggregates"])
    if missing:
        result = run_experiment(SPEC, runner=runner, models=(model,), attacks=tuple(missing))
        for attack in missing:
            pooled.extend(result.results[model][attack])
    return scatter_series(pooled)


def render_and_store(runner, model: str):
    series = collect_series(runner, model)
    acc_plot = render_scatter_text(series, "acc_vs_asr")
    ra_plot = render_scatter_text(series, "ra_vs_asr")
    text = f"Figure 1 — {model}\n\n{acc_plot}\n\n{ra_plot}"
    write_text(f"figure1_{model}", text)
    path = os.path.join(OUT_DIR, f"figure1_series_{model}.json")
    with open(path, "w") as handle:
        json.dump(series, handle, indent=2)
    with open(os.path.join(OUT_DIR, f"figure1_{model}.svg"), "w") as handle:
        handle.write(figure_svg(series, title=f"Figure 1 — {model}"))
    print("\n" + text)
    return series


@pytest.mark.parametrize("model", SPEC.models)
def test_figure1_scatter(benchmark, runner, out_dir, model):
    series = benchmark.pedantic(render_and_store, args=(runner, model), rounds=1, iterations=1)
    assert set(series) <= set(SPEC.defenses)
    assert len(series) >= 1
    for entry in series.values():
        for x, y in entry["acc_vs_asr"] + entry["ra_vs_asr"]:
            assert 0.0 <= x <= 100.0
            assert 0.0 <= y <= 100.0
