"""Figure 2 bench: SynthGTSRB, four architectures, {FT-SAM, ANP, Grad-Prune}.

The paper's Figure 2 scatters ACC & RA vs ASR for the three strongest
defenses across PreactResNet-18, VGG-19+BN, EfficientNet-B3, and
MobileNetV3-Large on GTSRB.  One benchmark function per architecture; the
quick profile runs the BadNets column (attacks scale with the paper
profile).  Output: ``benchmarks/out/figure2_<model>.txt`` + series JSON.
"""

import json
import os

import pytest

from repro.eval import (
    experiment_spec,
    figure_svg,
    format_table,
    render_scatter_text,
    run_experiment,
    scatter_series,
)

from conftest import OUT_DIR, store_results, write_text

SPEC = experiment_spec("figure2")
# The quick profile exercises the architecture axis (the figure's point)
# on one attack; the paper profile runs all four attacks.
ATTACKS = SPEC.attacks if SPEC.profile.name == "paper" else ("badnets",)


def run_model_panel(runner, model: str):
    result = run_experiment(SPEC, runner=runner, models=(model,), attacks=ATTACKS)
    pooled = []
    for attack in ATTACKS:
        aggregates = result.results[model][attack]
        store_results(f"figure2_{model}_{attack}", aggregates, result.baselines[model][attack])
        pooled.extend(aggregates)
    series = scatter_series(pooled)
    table = format_table(result.results[model], result.baselines[model],
                         title=f"Figure 2 panel ({SPEC.profile.name}) — {model}")
    text = "\n\n".join(
        [table,
         render_scatter_text(series, "acc_vs_asr"),
         render_scatter_text(series, "ra_vs_asr")]
    )
    write_text(f"figure2_{model}", text)
    with open(os.path.join(OUT_DIR, f"figure2_series_{model}.json"), "w") as handle:
        json.dump(series, handle, indent=2)
    with open(os.path.join(OUT_DIR, f"figure2_{model}.svg"), "w") as handle:
        handle.write(figure_svg(series, title=f"Figure 2 — {model}"))
    print("\n" + text)
    return series


@pytest.mark.parametrize("model", SPEC.models)
def test_figure2_model_panel(benchmark, runner, out_dir, model):
    series = benchmark.pedantic(run_model_panel, args=(runner, model), rounds=1, iterations=1)
    assert set(series) == set(SPEC.defenses)
    for entry in series.values():
        assert len(entry["acc_vs_asr"]) == len(SPEC.profile.spc_values) * len(ATTACKS)
