"""Table II bench: SynthCIFAR / VGG-19+BN, all defenses × SPC × attacks.

Same structure as the Table I bench with the VGG-19+BN architecture; rows
land in ``benchmarks/out/table2.txt`` / ``table2_<attack>.json``.
"""

import pytest

from repro.eval import (
    check_table_claims,
    experiment_spec,
    format_table,
    format_verdicts,
    run_experiment,
)

from conftest import store_results, write_text

SPEC = experiment_spec("table2")
MODEL = "vgg19_bn"


def run_attack_column(runner, attack: str):
    result = run_experiment(SPEC, runner=runner, attacks=(attack,))
    aggregates = result.results[MODEL][attack]
    baseline = result.baselines[MODEL][attack]
    store_results(f"table2_{attack}", aggregates, baseline)
    text = format_table(
        {attack: aggregates}, {attack: baseline},
        title=f"Table II ({SPEC.profile.name} profile) — {MODEL} / {attack}",
    )
    verdicts = format_verdicts(
        check_table_claims(aggregates, baseline), header=f"paper-shape claims — {attack}"
    )
    write_text(f"table2_{attack}", text + "\n\n" + verdicts)
    print("\n" + text + "\n" + verdicts)
    return aggregates


@pytest.mark.parametrize("attack", SPEC.attacks)
def test_table2_attack_column(benchmark, runner, attack):
    aggregates = benchmark.pedantic(
        run_attack_column, args=(runner, attack), rounds=1, iterations=1,
    )
    expected = len(SPEC.defenses) * len(SPEC.profile.spc_values)
    assert len(aggregates) == expected
    for agg in aggregates:
        assert 0.0 <= agg.acc_mean <= 1.0
        assert 0.0 <= agg.asr_mean <= 1.0
