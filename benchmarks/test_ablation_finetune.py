"""Ablation A2: the fine-tuning stage's contribution (paper §IV-C).

Four variants on the same backdoored model and defender budget:

- ``prune_only``      — gradient pruning, no fine-tuning;
- ``prune_ft_clean``  — pruning + fine-tuning on clean data only;
- ``prune_ft_full``   — the paper's method: pruning + fine-tuning on clean
                        AND relabeled backdoor data;
- ``ft_full_only``    — fine-tuning with both data kinds but NO pruning
                        (how much does pruning add over pure unlearning-
                        style fine-tuning?).
"""

import copy

import pytest

from repro.core import FineTuner, GradientPruner
from repro.eval import DefenderBudget, ScenarioConfig, evaluate_backdoor_metrics, get_profile
from repro.models import PruningMask

from conftest import write_text

PROFILE = get_profile()
VARIANTS = ("prune_only", "prune_ft_clean", "prune_ft_full", "ft_full_only")


@pytest.fixture(scope="module")
def scenario(runner):
    config = ScenarioConfig(
        dataset="synth_cifar",
        model="preact_resnet18",
        attack="blended",
        n_train=PROFILE.n_train,
        n_test=PROFILE.n_test,
        n_reservoir=PROFILE.n_reservoir,
        train_epochs=PROFILE.train_epochs,
        seed=0,
    )
    return runner.prepare(config)


def run_variant(scenario, variant: str):
    data = DefenderBudget(spc=50, trial=0, seed=21).draw(
        scenario.reservoir, attack=scenario.attack
    )
    model = copy.deepcopy(scenario.backdoored_model)
    backdoor_train = data.backdoor_train()
    backdoor_val = data.backdoor_val()
    mask = PruningMask(model)

    if variant.startswith("prune"):
        pruner = GradientPruner(patience=5, batch_size=128)
        pruner.prune(model, backdoor_train, data.clean_val, backdoor_val, mask=mask)

    tuner = FineTuner(max_epochs=12, patience=4, seed=0)
    if variant == "prune_ft_clean":
        tuner.tune(model, data.clean_train, data.clean_val, mask=mask)
    elif variant == "prune_ft_full":
        tuner.tune(model, data.clean_train, data.clean_val, backdoor_train, backdoor_val, mask=mask)
    elif variant == "ft_full_only":
        tuner.tune(model, data.clean_train, data.clean_val, backdoor_train, backdoor_val)

    metrics = evaluate_backdoor_metrics(model, scenario.test_set, scenario.attack)
    row = (
        f"A2 {variant:<16} ACC {metrics.acc * 100:6.2f} | "
        f"ASR {metrics.asr * 100:6.2f} | RA {metrics.ra * 100:6.2f} "
        f"(pruned {len(mask)})"
    )
    write_text(f"ablation_finetune_{variant}", row)
    print("\n" + row)
    return metrics


@pytest.mark.parametrize("variant", VARIANTS)
def test_ablation_finetune_variant(benchmark, scenario, variant):
    metrics = benchmark.pedantic(run_variant, args=(scenario, variant), rounds=1, iterations=1)
    assert 0.0 <= metrics.acc <= 1.0
