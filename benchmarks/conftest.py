"""Shared benchmark fixtures: runner with persistent model cache, result store.

Benchmarks write their tables/series to ``benchmarks/out/`` so Figure
benches can reuse Table results and EXPERIMENTS.md can quote them.
Backdoored models are cached under ``~/.cache/repro`` (override with
``REPRO_CACHE_DIR``), so re-running benches skips attack training.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Dict, List, Optional

import pytest

from repro.eval import AggregateResult, BackdoorMetrics, BenchmarkRunner

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


@pytest.fixture(scope="session")
def runner() -> BenchmarkRunner:
    return BenchmarkRunner(verbose=True)


@pytest.fixture(scope="session")
def out_dir() -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


def store_results(
    name: str,
    aggregates: List[AggregateResult],
    baseline: Optional[BackdoorMetrics] = None,
    extra: Optional[Dict] = None,
) -> str:
    """Persist one bench slice's aggregates as JSON; returns the path."""
    os.makedirs(OUT_DIR, exist_ok=True)
    payload = {
        "aggregates": [asdict(a) for a in aggregates],
        "baseline": asdict(baseline) if baseline else None,
        "extra": extra or {},
    }
    path = os.path.join(OUT_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return path


def load_results(name: str) -> Optional[Dict]:
    """Load a previously stored bench slice, or None."""
    path = os.path.join(OUT_DIR, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        payload = json.load(handle)
    payload["aggregates"] = [AggregateResult(**a) for a in payload["aggregates"]]
    if payload["baseline"]:
        payload["baseline"] = BackdoorMetrics(**payload["baseline"])
    return payload


def write_text(name: str, text: str) -> str:
    """Write a rendered table/figure to out/<name>.txt."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
