"""Table I bench: SynthCIFAR / PreactResNet-18, all defenses × SPC × attacks.

Each benchmark function regenerates one attack column of the paper's
Table I: every defense at every SPC setting, aggregated over trials.  The
rendered rows land in ``benchmarks/out/table1.txt`` and the raw aggregates
in ``benchmarks/out/table1_<attack>.json`` (reused by the Figure 1 bench).

Run with ``pytest benchmarks/ --benchmark-only``.  Set
``REPRO_BENCH_PROFILE=paper`` for the full five-trial grid.
"""

import pytest

from repro.eval import (
    check_table_claims,
    experiment_spec,
    format_table,
    format_verdicts,
    run_experiment,
)

from conftest import store_results, write_text

SPEC = experiment_spec("table1")
MODEL = "preact_resnet18"


def run_attack_column(runner, attack: str):
    result = run_experiment(SPEC, runner=runner, attacks=(attack,))
    aggregates = result.results[MODEL][attack]
    baseline = result.baselines[MODEL][attack]
    store_results(f"table1_{attack}", aggregates, baseline)
    text = format_table(
        {attack: aggregates}, {attack: baseline},
        title=f"Table I ({SPEC.profile.name} profile) — {MODEL} / {attack}",
    )
    verdicts = format_verdicts(
        check_table_claims(aggregates, baseline), header=f"paper-shape claims — {attack}"
    )
    write_text(f"table1_{attack}", text + "\n\n" + verdicts)
    print("\n" + text + "\n" + verdicts)
    return aggregates


@pytest.mark.parametrize("attack", SPEC.attacks)
def test_table1_attack_column(benchmark, runner, attack):
    aggregates = benchmark.pedantic(
        run_attack_column, args=(runner, attack), rounds=1, iterations=1,
    )
    # Regeneration contract: one row per (defense, SPC) cell.
    expected = len(SPEC.defenses) * len(SPEC.profile.spc_values)
    assert len(aggregates) == expected
    for agg in aggregates:
        assert 0.0 <= agg.acc_mean <= 1.0
        assert 0.0 <= agg.asr_mean <= 1.0
