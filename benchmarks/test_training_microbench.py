"""Training-path microbenchmark: engine-dispatched backward GEMMs.

Times a full train step (forward + backward + SGD update) on the
engine-dispatched training path — im2col column reuse into the dW
``execute_tn`` reduction split, planned gradient buffers — against the
``REPRO_DISABLE_FAST_PATH=1`` reference closures, and records a
workers-1/2/4 scaling series in ``benchmarks/out/BENCH_training.json``
(registered next to ``BENCH_engine.json`` / ``BENCH_serving.json``).

Two host guarantees, both gated on what the box can actually show:

* **No single-core regression**: the workers-1 fast path must stay within
  ``SINGLE_CORE_FLOOR`` of the reference path (it issues the same BLAS
  calls minus per-layer temporaries, so parity is the worst case).
* **Scaling**: >=1.5x samples/sec at 4 workers over 1 worker, asserted
  only when ``cpu_count >= 4``; elsewhere the series is still recorded.

Soak-style timing loops, so marked ``bench`` (excluded from tier-1) and
wrapped in ``hard_timeout`` wall-clock guards.
"""

import json
import os

import numpy as np
import pytest
from conftest import OUT_DIR

from repro.data import ImageDataset
from repro.models import build_model
from repro.nn import SGD, Tensor, cross_entropy
from repro.nn.engine import WORKERS_ENV, engine, reset_engine
from repro.nn.functional import FAST_PATH_ENV
from repro.telemetry import bus
from repro.training import TrainConfig, train_classifier
from repro.utils.timing import best_of_seconds, hard_timeout

pytestmark = pytest.mark.bench

GUARD_SECONDS = 600.0
BATCH = 32
NUM_CLASSES = 10
SINGLE_CORE_FLOOR = 0.9  # fast/reference throughput ratio tolerated at workers=1
SCALING_FLOOR = 1.5
MIN_CORES_FOR_SPEEDUP = 4

RNG = np.random.default_rng(0)

_RESULTS = {}
_SCALING_SERIES = []


@pytest.fixture(autouse=True)
def _bench_guard():
    """Wall-clock ceiling for every probe: a wedged timing loop fails loudly."""
    with hard_timeout(GUARD_SECONDS, "training microbench wedged"):
        yield


def _host_info():
    """Host facts needed to interpret the numbers: cores, BLAS, thread env."""
    info = {
        "cpu_count": os.cpu_count(),
        "thread_env": {
            key: os.environ.get(key)
            for key in (
                "OMP_NUM_THREADS",
                "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS",
                "NUMEXPR_NUM_THREADS",
            )
        },
    }
    try:
        deps = np.show_config(mode="dicts").get("Build Dependencies", {})
        blas = deps.get("blas", {})
        info["blas"] = {"name": blas.get("name"), "version": blas.get("version")}
    except TypeError:  # older numpy: show_config has no mode kwarg
        info["blas"] = {"name": "unknown", "version": None}
    return info


def _make_step(seed=0, update=True):
    """A self-contained train step closure over a fresh model + fixed batch.

    The batch is drawn from its own seeded RNG so fast/reference timings see
    byte-identical data.  ``update=False`` skips the SGD update, keeping the
    weights fixed across calls (used for the gradient-equivalence check,
    where compounding float drift over several updates would swamp the
    single-step tolerance).
    """
    data_rng = np.random.default_rng(seed + 1234)
    model = build_model("preact_resnet18", num_classes=NUM_CLASSES, seed=seed)
    model.train()
    optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
    x = Tensor(data_rng.uniform(0, 1, (BATCH, 3, 32, 32)).astype(np.float32))
    labels = data_rng.integers(0, NUM_CLASSES, BATCH)

    def step():
        logits = model(x)
        loss = cross_entropy(logits, labels)
        optimizer.zero_grad(set_to_none=False)
        loss.backward()
        if update:
            optimizer.step()
        return loss

    return model, step


def _grad_snapshot(model):
    return {
        name: p.grad.copy()
        for name, p in model.named_parameters()
        if p.grad is not None
    }


def test_train_step_fastpath_vs_reference():
    """Workers-1 fast path vs reference: same gradients, no regression."""
    saved_workers = os.environ.get(WORKERS_ENV)
    saved_fast = os.environ.get(FAST_PATH_ENV)
    os.environ[WORKERS_ENV] = "1"
    os.environ.pop(FAST_PATH_ENV, None)
    try:
        reset_engine()
        _, step = _make_step()
        step()  # warm BLAS + arenas before timing
        fast_s = best_of_seconds(step, repeats=3, number=1)
        # Equivalence on a fresh, non-updating model: one backward each, so
        # float drift cannot compound across optimizer updates.
        eq_model, eq_step = _make_step(update=False)
        eq_step()
        fast_grads = _grad_snapshot(eq_model)

        os.environ[FAST_PATH_ENV] = "1"
        _, ref_step = _make_step()
        ref_step()
        reference_s = best_of_seconds(ref_step, repeats=3, number=1)
        ref_eq_model, ref_eq_step = _make_step(update=False)
        ref_eq_step()
        reference_grads = _grad_snapshot(ref_eq_model)
    finally:
        for key, value in ((WORKERS_ENV, saved_workers), (FAST_PATH_ENV, saved_fast)):
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        reset_engine()

    # Identical seed, identical batch, one backward each.  Per-layer grads
    # through 18 layers of train-mode BN carry ~1e-2 relative float32 noise
    # on BOTH paths (measured against a float64 reference), so elementwise
    # tolerances would flake; bound the relative Frobenius error instead.
    # Layer-level exactness is covered by tests/property/test_property_train_engine.py.
    assert set(fast_grads) == set(reference_grads)
    max_err = 0.0
    for name in reference_grads:
        diff = np.linalg.norm(fast_grads[name] - reference_grads[name])
        scale = max(float(np.linalg.norm(reference_grads[name])), 1e-12)
        rel = float(diff) / scale
        max_err = max(max_err, rel)
        assert rel <= 5e-2, f"{name}: relative grad error {rel:.3e}"

    ratio = reference_s / fast_s
    _RESULTS["train_step_batch32"] = {
        "fast_ms": fast_s * 1e3,
        "reference_ms": reference_s * 1e3,
        "fast_samples_per_sec": BATCH / fast_s,
        "reference_samples_per_sec": BATCH / reference_s,
        "speedup": ratio,
        "max_rel_grad_err": max_err,
        "single_core_floor": SINGLE_CORE_FLOOR,
    }
    assert ratio >= SINGLE_CORE_FLOOR, (
        f"fast training path regressed at workers=1: {ratio:.2f}x of reference "
        f"(fast {fast_s * 1e3:.1f}ms vs reference {reference_s * 1e3:.1f}ms)"
    )


def test_training_scaling_workers():
    """Samples/sec at 1/2/4 workers; >=1.5x at 4 asserted on multicore only."""
    saved = os.environ.get(WORKERS_ENV)
    try:
        for workers in (1, 2, 4):
            os.environ[WORKERS_ENV] = str(workers)
            reset_engine()  # fresh pool + telemetry per worker setting
            _, step = _make_step()
            step()  # warm up
            seconds = best_of_seconds(step, repeats=3, number=1)
            telemetry = dict(engine().last)
            if workers > 1:
                assert telemetry.get("workers") == workers
            _SCALING_SERIES.append(
                {
                    "workers": workers,
                    "seconds": seconds,
                    "samples_per_sec": BATCH / seconds,
                    "engine": telemetry,
                }
            )
    finally:
        if saved is None:
            os.environ.pop(WORKERS_ENV, None)
        else:
            os.environ[WORKERS_ENV] = saved
        reset_engine()

    by_workers = {entry["workers"]: entry for entry in _SCALING_SERIES}
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_SPEEDUP:
        speedup = by_workers[4]["samples_per_sec"] / by_workers[1]["samples_per_sec"]
        assert speedup >= SCALING_FLOOR, (
            f"4-worker training scaling only {speedup:.2f}x on a multicore host"
        )


def test_training_throughput_gauge_emitted():
    """The wired hot loops publish training.samples_per_sec via telemetry."""
    images = RNG.uniform(0, 1, (64, 3, 32, 32)).astype(np.float32)
    labels = np.arange(64) % NUM_CLASSES
    model = build_model("preact_resnet18", num_classes=NUM_CLASSES, seed=1)
    result = train_classifier(
        model, ImageDataset(images, labels), TrainConfig(epochs=1, batch_size=32)
    )
    assert len(result.losses) == 1
    gauge = bus().metrics.gauge("training.samples_per_sec").value
    assert gauge is not None and gauge > 0
    _RESULTS["telemetry_gauge_samples_per_sec"] = gauge


def test_emit_bench_training_json():
    """Aggregate the training probes into BENCH_training.json."""
    assert "train_step_batch32" in _RESULTS, "probes must run before the JSON is emitted"
    assert _SCALING_SERIES, "the scaling probe must run before the JSON is emitted"
    os.makedirs(OUT_DIR, exist_ok=True)
    cpu_count = os.cpu_count() or 1
    payload = {
        "bench": "training_engine",
        "workload": f"preact_resnet18 train step, batch {BATCH} (fwd+bwd+SGD)",
        "reference": f"{FAST_PATH_ENV}=1 (reference autograd closures)",
        "host": _host_info(),
        "entries": _RESULTS,
        "scaling": {
            "series": _SCALING_SERIES,
            "floor": SCALING_FLOOR,
            "asserted": cpu_count >= MIN_CORES_FOR_SPEEDUP,
        },
    }
    path = os.path.join(OUT_DIR, "BENCH_training.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    with open(path) as handle:
        written = json.load(handle)
    assert [s["workers"] for s in written["scaling"]["series"]] == [1, 2, 4]
    assert written["host"]["cpu_count"] == os.cpu_count()
    assert written["entries"]["train_step_batch32"]["fast_samples_per_sec"] > 0
