"""Ablation A1: scoring-signal comparison at equal pruning budget.

Prunes the same number of filters under each ranking signal — the paper's
unlearning-loss gradients (Eq. 3), Fine-Pruning's clean-activation
dormancy, weight magnitude, and random — with no fine-tuning, isolating the
quality of the selection signal.  Expectation (paper §V-D's claim): the
gradient signal removes the backdoor (ASR drop) with the least clean-
accuracy damage at a given budget.
"""

import copy

import numpy as np
import pytest

from repro.core import SCORING_STRATEGIES, prune_by_strategy
from repro.eval import DefenderBudget, ScenarioConfig, evaluate_backdoor_metrics, get_profile

from conftest import write_text

PROFILE = get_profile()
# 2 % of all filters: large enough to disrupt the backdoor under a good
# signal, small enough that clean accuracy differences stay interpretable
# (no fine-tuning runs in this ablation).
BUDGET_FRACTION = 0.02


@pytest.fixture(scope="module")
def scenario(runner):
    config = ScenarioConfig(
        dataset="synth_cifar",
        model="preact_resnet18",
        attack="badnets",
        n_train=PROFILE.n_train,
        n_test=PROFILE.n_test,
        n_reservoir=PROFILE.n_reservoir,
        train_epochs=PROFILE.train_epochs,
        seed=0,
    )
    return runner.prepare(config)


def run_strategy(scenario, strategy: str):
    from repro.models import count_filters

    data = DefenderBudget(spc=50, trial=0, seed=11).draw(
        scenario.reservoir, attack=scenario.attack
    )
    model = copy.deepcopy(scenario.backdoored_model)
    budget = max(1, int(count_filters(model) * BUDGET_FRACTION))
    prune_by_strategy(
        model,
        strategy,
        budget,
        backdoor_train=data.backdoor_train(),
        clean_train=data.clean_train,
        rng=np.random.default_rng(0),
    )
    metrics = evaluate_backdoor_metrics(model, scenario.test_set, scenario.attack)
    row = (
        f"A1 {strategy:<12} budget={budget:>3}  ACC {metrics.acc * 100:6.2f} | "
        f"ASR {metrics.asr * 100:6.2f} | RA {metrics.ra * 100:6.2f}"
    )
    write_text(f"ablation_scoring_{strategy}", row)
    print("\n" + row)
    return metrics


@pytest.mark.parametrize("strategy", SCORING_STRATEGIES)
def test_ablation_scoring_strategy(benchmark, scenario, strategy):
    metrics = benchmark.pedantic(run_strategy, args=(scenario, strategy), rounds=1, iterations=1)
    assert 0.0 <= metrics.acc <= 1.0
    assert 0.0 <= metrics.asr <= 1.0
