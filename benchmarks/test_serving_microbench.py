"""Serving-gateway microbenchmark: traffic mixes + micro-batching speedup.

Drives one gateway (preact_resnet18 on synth_cifar images, folded through
``CompiledInference``) with the three standard traffic mixes and records
sustained throughput, latency percentiles (shared :func:`latency_summary`
definition), and the batch-size histogram per mix in
``benchmarks/out/BENCH_serving.json`` — registered next to
``BENCH_engine.json`` and ``BENCH_orchestrator.json``.

The headline number is **micro-batched vs batch-1**: the same request
stream through a ``max_batch=32`` gateway and a ``max_batch=1`` gateway
(every request pays the full batch-1 dispatch overhead).  The >=1.5x
speedup is asserted only on boxes with ``cpu_count >= 4`` where the tiled
engine can actually fan out; elsewhere the JSON structure is still checked
and the measured ratio is recorded for the record (batch-32 GEMMs amortize
Python dispatch even on one core, so the ratio is usually >1 regardless).

Soak-style and open-loop, so marked ``bench`` (excluded from tier-1) and
wrapped in ``hard_timeout`` wall-clock guards.
"""

import json
import os

import numpy as np
import pytest
from conftest import OUT_DIR

from repro.data import make_synth_cifar
from repro.models import build_model
from repro.serving import (
    STANDARD_MIXES,
    ModelRegistry,
    ServeConfig,
    ServingGateway,
    TrafficGenerator,
)
from repro.attacks import BadNetsAttack
from repro.utils.timing import hard_timeout

pytestmark = pytest.mark.bench

GUARD_SECONDS = 600.0
MAX_BATCH = 32
MAX_WAIT_MS = 5.0
NUM_CLASSES = 10
SPEEDUP_FLOOR = 1.5
MIN_CORES_FOR_SPEEDUP = 4


@pytest.fixture(scope="module")
def pool():
    _, test = make_synth_cifar(n_train=2, n_test=192, num_classes=NUM_CLASSES, seed=0)
    return test


@pytest.fixture(scope="module")
def registry(tmp_path_factory, pool):
    registry = ModelRegistry(str(tmp_path_factory.mktemp("serving-bench-registry")))
    registry.publish(
        build_model("preact_resnet18", num_classes=NUM_CLASSES, seed=0),
        "preact_resnet18",
        factory_kwargs={"num_classes": NUM_CLASSES, "seed": 0},
        metadata={"image_shape": list(pool.images.shape[1:])},
    )
    return registry


def _run_mixes(registry, pool, max_batch, mixes):
    """One gateway per configuration; returns {mix_name: summary}."""
    attack = BadNetsAttack(image_shape=pool.images.shape[1:], seed=0)
    gateway = ServingGateway(
        registry,
        config=ServeConfig(max_batch=max_batch, max_wait_ms=MAX_WAIT_MS, seed=0),
        clean_pool=pool,
    )
    generator = TrafficGenerator(pool.images, attack=attack, seed=0)
    summaries = {}
    with hard_timeout(GUARD_SECONDS, f"serving bench wedged (max_batch={max_batch})"):
        with gateway:
            for mix in mixes:
                report = generator.run(gateway, mix)
                assert report.completed == mix.num_requests
                summaries[mix.name] = report.summary()
    return summaries


def test_serving_throughput_and_microbatch_speedup(registry, pool):
    per_mix = _run_mixes(registry, pool, MAX_BATCH, STANDARD_MIXES)

    # Batch-1 baseline on the steady stream only (it is the slow case).
    steady = next(m for m in STANDARD_MIXES if m.name == "steady")
    batch1 = _run_mixes(registry, pool, 1, (steady,))["steady"]

    microbatched_ips = per_mix["steady"]["images_per_sec"]
    batch1_ips = batch1["images_per_sec"]
    speedup = microbatched_ips / batch1_ips if batch1_ips > 0 else float("inf")

    cpu_count = os.cpu_count() or 1
    payload = {
        "model": "preact_resnet18",
        "image_shape": list(pool.images.shape[1:]),
        "max_batch": MAX_BATCH,
        "max_wait_ms": MAX_WAIT_MS,
        "cpu_count": cpu_count,
        "engine_workers_env": os.environ.get("REPRO_ENGINE_WORKERS"),
        "mixes": per_mix,
        "batch1_steady": batch1,
        "microbatch_speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": cpu_count >= MIN_CORES_FOR_SPEEDUP,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "BENCH_serving.json"), "w") as handle:
        json.dump(payload, handle, indent=2)

    # Structure checks hold on any host.
    for name, summary in per_mix.items():
        assert summary["completed"] == summary["requests"]
        assert summary["images_per_sec"] > 0
        assert {"p50", "p90", "p99"} <= set(summary["latency_ms"])
        assert sum(summary["batch_size_histogram"].values()) == summary["completed"]
    assert "verdict_confusion" in per_mix["adversarial"]
    # The bursty mix must have exercised batches larger than one.
    assert any(int(size) > 1 for size in per_mix["bursty"]["batch_size_histogram"])

    # The throughput claim is only a host guarantee with real parallelism.
    if cpu_count >= MIN_CORES_FOR_SPEEDUP:
        assert speedup >= SPEEDUP_FLOOR, (
            f"micro-batching speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x "
            f"(microbatched {microbatched_ips:.1f} vs batch-1 {batch1_ips:.1f} img/s)"
        )


def test_strip_serving_overhead(registry, pool):
    """Record what the STRIP pre-filter costs per request (informational).

    The gateway uses one *shared* overlay set per micro-batch (a 1-D
    ``overlay_idx``): each batch gathers ``strip_overlays`` pool images once
    and broadcasts the blend, instead of fancy-indexing ``overlays * batch``
    pool rows per request stack.  ``overlay_mode`` in the JSON records this.
    """
    steady = next(m for m in STANDARD_MIXES if m.name == "steady")
    plain = _run_mixes(registry, pool, MAX_BATCH, (steady,))["steady"]

    gateway = ServingGateway(
        registry,
        config=ServeConfig(
            max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS, strip=True,
            strip_overlays=8, seed=0,
        ),
        clean_pool=pool,
    )
    generator = TrafficGenerator(pool.images, seed=0)
    with hard_timeout(GUARD_SECONDS, "strip serving bench wedged"):
        with gateway:
            filtered = generator.run(gateway, steady).summary()

    path = os.path.join(OUT_DIR, "BENCH_serving.json")
    with open(path) as handle:
        payload = json.load(handle)
    payload["strip_overhead"] = {
        "overlays": 8,
        "overlay_mode": "shared-per-batch",
        "plain_images_per_sec": plain["images_per_sec"],
        "strip_images_per_sec": filtered["images_per_sec"],
        "slowdown": round(
            plain["images_per_sec"] / filtered["images_per_sec"], 3
        ) if filtered["images_per_sec"] > 0 else None,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)

    assert filtered["completed"] == steady.num_requests
    assert filtered["images_per_sec"] > 0
