"""Telemetry overhead microbenchmark: the event bus must be ~free.

Two claims, recorded in ``benchmarks/out/BENCH_telemetry.json`` (registered
next to ``BENCH_engine.json`` / ``BENCH_orchestrator.json``):

1. **Inactive fast path** — with no sinks attached, ``emit`` is a guarded
   no-op costing nanoseconds, so instrumented hot loops (pruner rounds,
   tuner epochs, batcher flushes) pay nothing in the default configuration.
2. **Instrumented pruning round** — a full Grad-Prune round with a JSONL
   sink attached runs within 5% of the same round with telemetry disabled
   (the ISSUE's acceptance bound).  Timings are min-of-repeats, the robust
   estimator against scheduler noise.
"""

import json
import os
import time

import numpy as np
import pytest
from conftest import OUT_DIR

from repro.core import GradientPruner
from repro.data import ImageDataset
from repro.models import build_model
from repro.telemetry import JsonlSink, TelemetryBus, set_bus
from repro.utils.timing import hard_timeout

pytestmark = pytest.mark.bench

GUARD_SECONDS = 900.0
OVERHEAD_LIMIT_PCT = 5.0
REPEATS = 3
NOOP_EMITS = 200_000
SINK_EMITS = 20_000

_RESULTS = {}


@pytest.fixture(autouse=True)
def _bench_guard():
    with hard_timeout(GUARD_SECONDS, "telemetry microbench wedged"):
        yield


def test_noop_emit_cost():
    """emit() on a bus with no sinks: the price every hot loop always pays."""
    bus = TelemetryBus()
    assert not bus.active
    start = time.perf_counter()
    for i in range(NOOP_EMITS):
        bus.emit("prune_round", "bench", round=i, val_loss=0.5)
    noop_ns = (time.perf_counter() - start) / NOOP_EMITS * 1e9
    _RESULTS["noop_emit_ns"] = round(noop_ns, 1)
    # "Nanoseconds" with slack for slow CI boxes; a regression to real work
    # (dict building, sanitize, I/O) lands in the microseconds and fails.
    assert noop_ns < 5_000, f"inactive emit costs {noop_ns:.0f}ns — fast path broken"


def test_active_jsonl_emit_cost(tmp_path):
    """emit() fanned out to a JSONL sink: sanitize + serialize + buffered write."""
    bus = TelemetryBus()
    bus.attach(JsonlSink(str(tmp_path / "t.jsonl")))
    start = time.perf_counter()
    for i in range(SINK_EMITS):
        bus.emit(
            "prune_round", "bench",
            round=i, layer="conv1", val_loss=0.5, val_acc=0.9, num_pruned=i,
        )
    active_us = (time.perf_counter() - start) / SINK_EMITS * 1e6
    bus.close()
    _RESULTS["active_jsonl_emit_us"] = round(active_us, 2)
    assert active_us < 1_000, f"sinked emit costs {active_us:.0f}us per event"


def _pruning_round(seed=7):
    rng = np.random.default_rng(seed)

    def dataset(n):
        return ImageDataset(
            rng.uniform(0, 1, (n, 3, 32, 32)).astype(np.float32),
            rng.integers(0, 10, n),
        )

    backdoor_train, clean_val, backdoor_val = dataset(32), dataset(128), dataset(128)

    def one_round():
        model = build_model("preact_resnet18")
        pruner = GradientPruner(alpha=0.0, patience=100, max_rounds=1, batch_size=64)
        return pruner.prune(model, backdoor_train, clean_val, backdoor_val)

    return one_round


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_instrumented_pruning_round_overhead(tmp_path):
    """The ISSUE acceptance bound: <5% wall-clock cost for full instrumentation."""
    one_round = _pruning_round()
    one_round()  # warm BLAS pools / arenas before either arm is timed

    disabled_bus = TelemetryBus()  # no sinks: every emit takes the no-op path
    instrumented_bus = TelemetryBus()
    sink = JsonlSink(str(tmp_path / "round.jsonl"))
    instrumented_bus.attach(sink)

    previous = set_bus(disabled_bus)
    try:
        baseline_s = _best_of(one_round)
        set_bus(instrumented_bus)
        instrumented_s = _best_of(one_round)
    finally:
        set_bus(previous)
    instrumented_bus.close()

    events = instrumented_bus.snapshot()["bus"]["events_emitted"]
    overhead_pct = (instrumented_s - baseline_s) / baseline_s * 100.0
    _RESULTS["pruning_round"] = {
        "baseline_s": round(baseline_s, 4),
        "instrumented_s": round(instrumented_s, 4),
        "overhead_pct": round(overhead_pct, 2),
        "events_per_timed_arm": events,
        "limit_pct": OVERHEAD_LIMIT_PCT,
        "repeats": REPEATS,
    }
    assert events > 0, "the pruner must actually stream events when a sink is live"
    assert (tmp_path / "round.jsonl").exists()
    assert overhead_pct < OVERHEAD_LIMIT_PCT, (
        f"instrumented round {instrumented_s:.3f}s vs {baseline_s:.3f}s disabled "
        f"({overhead_pct:+.1f}% > {OVERHEAD_LIMIT_PCT}% budget)"
    )


def test_emit_bench_telemetry_json():
    assert {"noop_emit_ns", "active_jsonl_emit_us", "pruning_round"} <= set(_RESULTS), (
        "overhead probes must run before the JSON is emitted"
    )
    os.makedirs(OUT_DIR, exist_ok=True)
    payload = {
        "bench": "telemetry_overhead",
        "cpu_count": os.cpu_count(),
        **_RESULTS,
    }
    path = os.path.join(OUT_DIR, "BENCH_telemetry.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    with open(path) as handle:
        written = json.load(handle)
    assert written["pruning_round"]["overhead_pct"] < OVERHEAD_LIMIT_PCT
