"""P1: substrate micro-benchmarks — conv forward/backward, BN, train step.

These are honest pytest-benchmark timings (multiple rounds), documenting
the numpy engine's throughput so table-bench runtimes are interpretable.
"""

import numpy as np
import pytest

from repro.data import ImageDataset
from repro.models import build_model
from repro.nn import SGD, Tensor, cross_entropy
from repro.nn import functional as F
from repro.training import TrainConfig, train_classifier
from repro.utils.timing import hard_timeout

pytestmark = pytest.mark.bench

GUARD_SECONDS = 600.0

RNG = np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _bench_guard():
    """Wall-clock ceiling for every probe: a wedged timing loop fails loudly."""
    with hard_timeout(GUARD_SECONDS, "engine microbench wedged"):
        yield


@pytest.fixture(scope="module")
def conv_inputs():
    x = Tensor(RNG.normal(size=(32, 16, 16, 16)).astype(np.float32), requires_grad=True)
    w = Tensor(RNG.normal(size=(32, 16, 3, 3)).astype(np.float32), requires_grad=True)
    return x, w


def test_conv2d_forward(benchmark, conv_inputs):
    x, w = conv_inputs
    out = benchmark(lambda: F.conv2d(x, w, None, stride=1, padding=1))
    assert out.shape == (32, 32, 16, 16)


def test_conv2d_forward_backward(benchmark, conv_inputs):
    x, w = conv_inputs

    def step():
        x.zero_grad()
        w.zero_grad()
        out = F.conv2d(x, w, None, stride=1, padding=1)
        out.sum().backward()
        return out

    benchmark(step)
    assert w.grad is not None


def test_depthwise_conv_forward(benchmark):
    x = Tensor(RNG.normal(size=(32, 32, 16, 16)).astype(np.float32))
    w = Tensor(RNG.normal(size=(32, 1, 3, 3)).astype(np.float32))
    out = benchmark(lambda: F.conv2d(x, w, None, padding=1, groups=32))
    assert out.shape == (32, 32, 16, 16)


def test_batch_norm_train_mode(benchmark):
    x = Tensor(RNG.normal(size=(64, 32, 16, 16)).astype(np.float32), requires_grad=True)
    weight = Tensor(np.ones(32, dtype=np.float32), requires_grad=True)
    bias = Tensor(np.zeros(32, dtype=np.float32), requires_grad=True)
    out = benchmark(lambda: F.batch_norm2d_train(x, weight, bias, 1e-5)[0])
    assert out.shape == x.shape


def test_model_inference_batch64(benchmark):
    model = build_model("preact_resnet18")
    model.eval()
    x = Tensor(RNG.uniform(0, 1, (64, 3, 32, 32)).astype(np.float32))
    from repro.nn import no_grad

    def infer():
        with no_grad():
            return model(x)

    out = benchmark(infer)
    assert out.shape == (64, 10)


def test_full_train_step(benchmark):
    model = build_model("preact_resnet18")
    model.train()
    optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
    x = Tensor(RNG.uniform(0, 1, (64, 3, 32, 32)).astype(np.float32))
    labels = RNG.integers(0, 10, 64)

    def step():
        logits = model(x)
        loss = cross_entropy(logits, labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss.item())


def test_one_epoch_tiny(benchmark):
    images = RNG.uniform(0, 1, (128, 3, 32, 32)).astype(np.float32)
    labels = np.arange(128) % 10
    dataset = ImageDataset(images, labels)

    def epoch():
        model = build_model("preact_resnet18")
        return train_classifier(model, dataset, TrainConfig(epochs=1, batch_size=64))

    result = benchmark.pedantic(epoch, rounds=2, iterations=1)
    assert len(result.losses) == 1


# ---------------------------------------------------------------------------
# Fast path vs. reference path (emits BENCH_engine.json)
#
# Each probe times the same workload twice — once on the fast inference path
# (single-GEMM conv, workspace arena, conv–BN folding, fused evaluator) and
# once with ``REPRO_DISABLE_FAST_PATH=1`` forcing the reference kernels —
# checks the outputs agree within float32 tolerance, and records ops/sec for
# both so future PRs can track the perf trajectory from the JSON alone.
# ---------------------------------------------------------------------------

import contextlib
import json
import os
import time

from repro.core import GradientPruner
from repro.nn import no_grad
from repro.nn.engine import WORKERS_ENV, engine, reset_engine
from repro.nn.functional import FAST_PATH_ENV
from repro.nn.inference import compile_for_inference
from repro.utils.timing import best_of_seconds

from conftest import OUT_DIR

_FASTPATH_RESULTS = {}
_SCALING_SERIES = []


def _host_info():
    """Host facts needed to interpret the numbers: cores, BLAS, thread env."""
    info = {
        "cpu_count": os.cpu_count(),
        "thread_env": {
            key: os.environ.get(key)
            for key in (
                "OMP_NUM_THREADS",
                "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS",
                "NUMEXPR_NUM_THREADS",
            )
        },
    }
    try:
        deps = np.show_config(mode="dicts").get("Build Dependencies", {})
        blas = deps.get("blas", {})
        info["blas"] = {"name": blas.get("name"), "version": blas.get("version")}
    except TypeError:  # older numpy: show_config has no mode kwarg
        info["blas"] = {"name": "unknown", "version": None}
    return info


@contextlib.contextmanager
def _reference_path():
    previous = os.environ.get(FAST_PATH_ENV)
    os.environ[FAST_PATH_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAST_PATH_ENV, None)
        else:
            os.environ[FAST_PATH_ENV] = previous


# Shared micro-benchmark timing primitive (see repro.utils.timing).
_best_seconds = best_of_seconds


def _record(name, fast_s, reference_s, max_abs_err, **extra):
    entry = {
        "fast_ms": fast_s * 1e3,
        "reference_ms": reference_s * 1e3,
        "fast_ops_per_sec": 1.0 / fast_s,
        "reference_ops_per_sec": 1.0 / reference_s,
        "speedup": reference_s / fast_s,
        "max_abs_err": max_abs_err,
    }
    entry.update(extra)
    _FASTPATH_RESULTS[name] = entry
    return entry


def test_fastpath_conv_forward():
    x = Tensor(RNG.normal(size=(32, 16, 16, 16)).astype(np.float32))
    w = Tensor(RNG.normal(size=(32, 16, 3, 3)).astype(np.float32))

    def forward():
        with no_grad():
            return F.conv2d(x, w, None, stride=1, padding=1)

    fast_s = _best_seconds(forward, number=10)
    fast_out = forward().data
    with _reference_path():
        reference_s = _best_seconds(forward, number=10)
        reference_out = forward().data

    err = float(np.abs(fast_out - reference_out).max())
    entry = _record("conv_forward", fast_s, reference_s, err)
    np.testing.assert_allclose(fast_out, reference_out, rtol=1e-4, atol=1e-5)
    assert entry["speedup"] > 0


def test_fastpath_folded_inference_batch64():
    model = build_model("preact_resnet18")
    model.eval()
    x = Tensor(RNG.uniform(0, 1, (64, 3, 32, 32)).astype(np.float32))

    def plain():
        with no_grad():
            return model(x).data

    with _reference_path():
        reference_s = _best_seconds(plain)
        reference_out = plain()

    compiled = compile_for_inference(model, Tensor(x.data[:1]))
    fast_s = _best_seconds(lambda: compiled(x))
    fast_out = compiled(x).data

    err = float(np.abs(fast_out - reference_out).max())
    entry = _record(
        "folded_inference_batch64",
        fast_s,
        reference_s,
        err,
        batch_size=64,
        fast_images_per_sec=64.0 / fast_s,
        reference_images_per_sec=64.0 / reference_s,
        num_folded=compiled.num_folded,
    )
    np.testing.assert_allclose(fast_out, reference_out, rtol=1e-3, atol=1e-4)
    assert entry["num_folded"] == len(model.blocks)


def test_fastpath_full_pruning_round():
    from repro.data import ImageDataset as _ImageDataset

    rng = np.random.default_rng(7)

    def dataset(n):
        return _ImageDataset(
            rng.uniform(0, 1, (n, 3, 32, 32)).astype(np.float32),
            rng.integers(0, 10, n),
        )

    backdoor_train, clean_val, backdoor_val = dataset(32), dataset(128), dataset(128)

    def one_round(use_fast_path):
        model = build_model("preact_resnet18")
        pruner = GradientPruner(
            alpha=0.0,
            patience=100,
            max_rounds=1,
            batch_size=64,
            use_fast_path=use_fast_path,
        )
        return pruner.prune(model, backdoor_train, clean_val, backdoor_val)

    one_round(True)  # warm caches (BLAS + arena) before either timing
    start = time.perf_counter()
    fast_history = one_round(True)
    fast_s = time.perf_counter() - start
    with _reference_path():
        start = time.perf_counter()
        reference_history = one_round(False)
        reference_s = time.perf_counter() - start

    # Equivalence: both paths must prune the same filter and agree on the
    # stopping-rule statistics for the round.
    assert [r.pruned for r in fast_history.rounds] == [
        r.pruned for r in reference_history.rounds
    ]
    err = float(
        abs(fast_history.rounds[0].val_accuracy - reference_history.rounds[0].val_accuracy)
    )
    _record(
        "full_pruning_round",
        fast_s,
        reference_s,
        err,
        num_folded=fast_history.num_folded_layers,
        fast_score_seconds=fast_history.total_score_seconds,
        fast_eval_seconds=fast_history.total_eval_seconds + fast_history.initial_eval_seconds,
        reference_score_seconds=reference_history.total_score_seconds,
        reference_eval_seconds=reference_history.total_eval_seconds
        + reference_history.initial_eval_seconds,
    )
    assert fast_history.rounds[0].val_accuracy == pytest.approx(
        reference_history.rounds[0].val_accuracy, abs=1e-6
    )
    assert fast_history.rounds[0].val_unlearning_loss == pytest.approx(
        reference_history.rounds[0].val_unlearning_loss, rel=1e-3
    )


def test_engine_scaling_cores_vs_throughput():
    """Cores-vs-throughput series: batch-64 folded inference at 1/2/4 workers.

    Every worker setting is equivalence-checked against the reference path.
    The ≥1.5x scaling assertion only applies on a multicore host — on 1-2
    core boxes the series is still recorded (extra workers just document the
    dispatch overhead) but the inline path is the expected winner there.
    """
    model = build_model("preact_resnet18")
    model.eval()
    x = Tensor(RNG.uniform(0, 1, (64, 3, 32, 32)).astype(np.float32))

    with _reference_path():
        with no_grad():
            reference_out = model(x).data

    compiled = compile_for_inference(model, Tensor(x.data[:1]))
    saved = os.environ.get(WORKERS_ENV)
    try:
        for workers in (1, 2, 4):
            os.environ[WORKERS_ENV] = str(workers)
            reset_engine()  # fresh pool + telemetry per worker setting
            seconds = _best_seconds(lambda: compiled(x), repeats=3, number=2)
            out = compiled(x).data
            np.testing.assert_allclose(out, reference_out, rtol=1e-3, atol=1e-4)
            telemetry = dict(engine().last)
            if workers == 1:
                assert telemetry == {}, "workers=1 must take the inline path"
            else:
                assert telemetry.get("workers") == workers
            _SCALING_SERIES.append(
                {
                    "workers": workers,
                    "seconds": seconds,
                    "images_per_sec": 64.0 / seconds,
                    "max_abs_err": float(np.abs(out - reference_out).max()),
                    "engine": telemetry,
                }
            )
    finally:
        if saved is None:
            os.environ.pop(WORKERS_ENV, None)
        else:
            os.environ[WORKERS_ENV] = saved
        reset_engine()

    by_workers = {entry["workers"]: entry for entry in _SCALING_SERIES}
    if (os.cpu_count() or 1) >= 4:
        speedup = by_workers[4]["images_per_sec"] / by_workers[1]["images_per_sec"]
        assert speedup >= 1.5, f"4-worker scaling only {speedup:.2f}x on a multicore host"


def test_emit_bench_engine_json():
    """Aggregate the fast-vs-reference probes into BENCH_engine.json."""
    assert set(_FASTPATH_RESULTS) == {
        "conv_forward",
        "folded_inference_batch64",
        "full_pruning_round",
    }, "fast-path probes must run before the JSON is emitted"
    assert _SCALING_SERIES, "the scaling probe must run before the JSON is emitted"
    os.makedirs(OUT_DIR, exist_ok=True)
    payload = {
        "bench": "engine_fastpath",
        "reference": f"{FAST_PATH_ENV}=1 (reference kernels, two-pass evaluator)",
        "host": _host_info(),
        "entries": _FASTPATH_RESULTS,
        "scaling": {
            "workload": "folded_inference_batch64 (compiled preact_resnet18)",
            "series": _SCALING_SERIES,
        },
    }
    path = os.path.join(OUT_DIR, "BENCH_engine.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    with open(path) as handle:
        written = json.load(handle)
    assert set(written["entries"]) == set(_FASTPATH_RESULTS)
    assert [s["workers"] for s in written["scaling"]["series"]] == [1, 2, 4]
    assert written["host"]["cpu_count"] == os.cpu_count()
