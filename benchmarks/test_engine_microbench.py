"""P1: substrate micro-benchmarks — conv forward/backward, BN, train step.

These are honest pytest-benchmark timings (multiple rounds), documenting
the numpy engine's throughput so table-bench runtimes are interpretable.
"""

import numpy as np
import pytest

from repro.data import ImageDataset
from repro.models import build_model
from repro.nn import SGD, Tensor, cross_entropy
from repro.nn import functional as F
from repro.training import TrainConfig, train_classifier

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def conv_inputs():
    x = Tensor(RNG.normal(size=(32, 16, 16, 16)).astype(np.float32), requires_grad=True)
    w = Tensor(RNG.normal(size=(32, 16, 3, 3)).astype(np.float32), requires_grad=True)
    return x, w


def test_conv2d_forward(benchmark, conv_inputs):
    x, w = conv_inputs
    out = benchmark(lambda: F.conv2d(x, w, None, stride=1, padding=1))
    assert out.shape == (32, 32, 16, 16)


def test_conv2d_forward_backward(benchmark, conv_inputs):
    x, w = conv_inputs

    def step():
        x.zero_grad()
        w.zero_grad()
        out = F.conv2d(x, w, None, stride=1, padding=1)
        out.sum().backward()
        return out

    benchmark(step)
    assert w.grad is not None


def test_depthwise_conv_forward(benchmark):
    x = Tensor(RNG.normal(size=(32, 32, 16, 16)).astype(np.float32))
    w = Tensor(RNG.normal(size=(32, 1, 3, 3)).astype(np.float32))
    out = benchmark(lambda: F.conv2d(x, w, None, padding=1, groups=32))
    assert out.shape == (32, 32, 16, 16)


def test_batch_norm_train_mode(benchmark):
    x = Tensor(RNG.normal(size=(64, 32, 16, 16)).astype(np.float32), requires_grad=True)
    weight = Tensor(np.ones(32, dtype=np.float32), requires_grad=True)
    bias = Tensor(np.zeros(32, dtype=np.float32), requires_grad=True)
    out = benchmark(lambda: F.batch_norm2d_train(x, weight, bias, 1e-5)[0])
    assert out.shape == x.shape


def test_model_inference_batch64(benchmark):
    model = build_model("preact_resnet18")
    model.eval()
    x = Tensor(RNG.uniform(0, 1, (64, 3, 32, 32)).astype(np.float32))
    from repro.nn import no_grad

    def infer():
        with no_grad():
            return model(x)

    out = benchmark(infer)
    assert out.shape == (64, 10)


def test_full_train_step(benchmark):
    model = build_model("preact_resnet18")
    model.train()
    optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
    x = Tensor(RNG.uniform(0, 1, (64, 3, 32, 32)).astype(np.float32))
    labels = RNG.integers(0, 10, 64)

    def step():
        logits = model(x)
        loss = cross_entropy(logits, labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss.item())


def test_one_epoch_tiny(benchmark):
    images = RNG.uniform(0, 1, (128, 3, 32, 32)).astype(np.float32)
    labels = np.arange(128) % 10
    dataset = ImageDataset(images, labels)

    def epoch():
        model = build_model("preact_resnet18")
        return train_classifier(model, dataset, TrainConfig(epochs=1, batch_size=64))

    result = benchmark.pedantic(epoch, rounds=2, iterations=1)
    assert len(result.losses) == 1
