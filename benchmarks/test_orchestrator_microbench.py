"""Orchestrator microbenchmark: serial vs ``--workers 4`` wall-clock.

Runs the same quick-profile Table I slice twice from cold caches — once
through the serial :func:`run_experiment` path and once through the
orchestrator with four worker processes — checks the aggregates are
numerically identical, and records both wall-clock times in
``benchmarks/out/BENCH_orchestrator.json`` (registered next to
``BENCH_engine.json`` from the engine microbench).

Read the speedup together with ``cpu_count`` in the JSON: on a single-core
box the parallel path can only tie at best (it still pays fork +
scheduling overhead); the number documents the orchestration tax, while
multi-core machines see the actual scale-out.
"""

import dataclasses
import json
import os

import pytest
from conftest import OUT_DIR

from repro.eval import BenchmarkRunner, ScenarioCache, TrialCache, run_experiment
from repro.eval.experiments import QUICK_PROFILE, ExperimentSpec
from repro.orchestrator import Orchestrator, OrchestratorConfig
from repro.orchestrator.orchestrator import build_experiment_dag
from repro.utils import Timer
from repro.utils.timing import hard_timeout

pytestmark = pytest.mark.bench

WORKERS = 4
GUARD_SECONDS = 1800.0


@pytest.fixture(autouse=True)
def _bench_guard():
    """Wall-clock ceiling: a wedged worker pool fails loudly, not as a hang."""
    with hard_timeout(GUARD_SECONDS, "orchestrator microbench wedged"):
        yield


def _slice_spec():
    profile = dataclasses.replace(
        QUICK_PROFILE,
        name="quick-slice",
        n_train=500,
        n_test=150,
        n_reservoir=300,
        train_epochs=3,
        spc_values=(2,),
        num_trials=2,
    )
    return ExperimentSpec(
        "table1", "Table I slice (orchestrator microbench)",
        "synth_cifar", ("preact_resnet18",), ("badnets",), ("clp", "ft"), profile,
    )


def test_orchestrator_vs_serial(tmp_path):
    spec = _slice_spec()

    serial_runner = BenchmarkRunner(
        cache=ScenarioCache(str(tmp_path / "serial_models")),
        trial_cache=TrialCache(str(tmp_path / "serial_trials")),
        verbose=False,
    )
    with Timer() as serial_timer:
        serial = run_experiment(spec, runner=serial_runner)
    serial_s = serial_timer.elapsed

    orchestrator = Orchestrator(
        OrchestratorConfig(
            workers=WORKERS,
            run_dir=str(tmp_path / "run"),
            model_cache_dir=str(tmp_path / "orch_models"),
            trial_cache_dir=str(tmp_path / "orch_trials"),
            verbose=False,
        )
    )
    with Timer() as orchestrated_timer:
        orchestrated = orchestrator.run(spec)
    orchestrated_s = orchestrated_timer.elapsed

    assert orchestrated.ok
    serial_aggs = serial.results["preact_resnet18"]["badnets"]
    orch_aggs = orchestrated.experiment.results["preact_resnet18"]["badnets"]
    assert len(serial_aggs) == len(orch_aggs)
    for ours, theirs in zip(orch_aggs, serial_aggs):
        assert (ours.defense, ours.spc) == (theirs.defense, theirs.spc)
        assert (ours.acc_mean, ours.asr_mean, ours.ra_mean) == (
            theirs.acc_mean, theirs.asr_mean, theirs.ra_mean,
        )

    payload = {
        "experiment": spec.experiment_id,
        "profile": spec.profile.name,
        "tasks": len(build_experiment_dag(spec)),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "orchestrated_s": round(orchestrated_s, 3),
        "speedup": round(serial_s / orchestrated_s, 3),
        "orchestrated_reused": orchestrated.reused,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "BENCH_orchestrator.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
    assert payload["speedup"] > 0
