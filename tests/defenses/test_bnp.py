"""BNP (batch-norm statistic pruning) tests."""

import copy

import numpy as np
import pytest

from repro.data.splits import defender_split
from repro.defenses import BNPDefense, bn_statistic_divergence
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics


@pytest.fixture()
def defender_data(tiny_reservoir, tiny_attack):
    clean_train, clean_val = defender_split(
        tiny_reservoir, spc=20, rng=np.random.default_rng(8)
    )
    return DefenderData(clean_train=clean_train, clean_val=clean_val, attack=tiny_attack)


class TestDivergence:
    def test_divergence_per_bn_layer(self, backdoored_tiny_model, tiny_test):
        div = bn_statistic_divergence(backdoored_tiny_model, tiny_test)
        assert len(div) == 2  # TinyConvNet has two BN layers
        for values in div.values():
            assert (values >= 0).all()
            assert np.isfinite(values).all()

    def test_divergence_zero_when_stats_match(self, tiny_test):
        # A freshly built model evaluated on the data whose statistics were
        # written into its running buffers has near-zero divergence.
        from tests.conftest import TinyConvNet
        from repro.nn import Tensor

        model = TinyConvNet(seed=0)
        model.train()
        for _ in range(60):  # converge the EMA onto the clean distribution
            model(Tensor(tiny_test.images[:64]))
        model.eval()
        div = bn_statistic_divergence(model, tiny_test.subset(np.arange(64)))
        for values in div.values():
            assert values.max() < 0.5

    def test_model_without_bn_returns_empty(self, tiny_test):
        from repro.nn import Conv2d, Sequential

        model = Sequential(Conv2d(3, 4, 3, padding=1))
        assert bn_statistic_divergence(model, tiny_test) == {}


class TestBNPDefense:
    def test_runs_and_reports(self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        report = BNPDefense(u=2.0).apply(model, defender_data)
        assert report.name == "bnp"
        assert report.details["num_pruned"] >= 0
        metrics = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert 0 <= metrics.acc <= 1

    def test_smaller_u_prunes_more(self, backdoored_tiny_model, defender_data):
        strict = copy.deepcopy(backdoored_tiny_model)
        lax = copy.deepcopy(backdoored_tiny_model)
        n_strict = BNPDefense(u=0.5).apply(strict, defender_data).details["num_pruned"]
        n_lax = BNPDefense(u=10.0).apply(lax, defender_data).details["num_pruned"]
        assert n_strict >= n_lax

    def test_invalid_u_raises(self):
        with pytest.raises(ValueError):
            BNPDefense(u=-1.0)

    def test_registered_in_registry(self):
        from repro.defenses import build_defense

        assert build_defense("bnp", u=2.5).u == 2.5
