"""Baseline-defense tests: each runs end-to-end and behaves sanely."""

import copy

import numpy as np
import pytest

from repro.data.splits import defender_split
from repro.defenses import (
    ANPDefense,
    CLPDefense,
    DEFENSE_REGISTRY,
    FinePruningDefense,
    FineTuningDefense,
    FTSAMDefense,
    NADDefense,
    build_defense,
    channel_lipschitz_bounds,
    mean_channel_activations,
)
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics


@pytest.fixture()
def defender_data(tiny_reservoir, tiny_attack):
    clean_train, clean_val = defender_split(
        tiny_reservoir, spc=20, rng=np.random.default_rng(4)
    )
    return DefenderData(clean_train=clean_train, clean_val=clean_val, attack=tiny_attack)


class TestRegistry:
    def test_all_expected_defenses_registered(self):
        expected = {"ft", "fp", "nad", "nc", "clp", "bnp", "ft_sam", "anp", "grad_prune", "fed_unlearn"}
        assert set(DEFENSE_REGISTRY) == expected

    def test_build_each(self):
        for name in DEFENSE_REGISTRY:
            assert build_defense(name) is not None

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_defense("neural_cleanse")

    def test_grad_prune_kwargs_forwarded(self):
        defense = build_defense("grad_prune", prune_patience=3)
        assert defense.config.prune_patience == 3


class TestFineTuning:
    def test_keeps_model_usable(self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        report = FineTuningDefense(epochs=6, lr=0.02, seed=0).apply(model, defender_data)
        metrics = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert metrics.acc > 0.5
        assert report.details["epochs_run"] >= 1


class TestFinePruning:
    def test_activations_collector(self, backdoored_tiny_model, tiny_test):
        acts = mean_channel_activations(backdoored_tiny_model, tiny_test)
        assert len(acts) >= 2
        for values in acts.values():
            assert (values >= 0).all()

    def test_prunes_last_layer_and_tunes(self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        report = FinePruningDefense(epochs=4, seed=0).apply(model, defender_data)
        metrics = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert metrics.acc > 0.4
        assert report.details["num_pruned"] >= 0
        assert "target_layer" in report.details

    def test_accuracy_floor_limits_pruning(self, backdoored_tiny_model, defender_data):
        model = copy.deepcopy(backdoored_tiny_model)
        report = FinePruningDefense(max_acc_drop=0.0, epochs=1, seed=0).apply(model, defender_data)
        # With no accuracy budget, pruning stops as soon as val acc dips.
        assert report.details["num_pruned"] <= 16


class TestNAD:
    def test_runs_and_reports_layers(self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        report = NADDefense(
            beta=100.0, teacher_epochs=2, epochs=2, num_attention_layers=2, seed=0
        ).apply(model, defender_data)
        assert len(report.details["attention_layers"]) == 2
        metrics = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert metrics.acc > 0.3

    def test_hooks_removed_after_apply(self, backdoored_tiny_model, defender_data):
        model = copy.deepcopy(backdoored_tiny_model)
        NADDefense(teacher_epochs=1, epochs=1, seed=0).apply(model, defender_data)
        for module in model.modules():
            assert not module._forward_hooks


class TestCLP:
    def test_bounds_per_layer(self, backdoored_tiny_model):
        bounds = channel_lipschitz_bounds(backdoored_tiny_model)
        assert len(bounds) >= 2
        for values in bounds.values():
            assert (values >= 0).all()

    def test_data_free_determinism(self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack):
        m1 = copy.deepcopy(backdoored_tiny_model)
        m2 = copy.deepcopy(backdoored_tiny_model)
        CLPDefense(u=3.0).apply(m1, defender_data)
        CLPDefense(u=3.0).apply(m2, defender_data)
        a = evaluate_backdoor_metrics(m1, tiny_test, tiny_attack)
        b = evaluate_backdoor_metrics(m2, tiny_test, tiny_attack)
        assert a.acc == b.acc and a.asr == b.asr

    def test_smaller_u_prunes_more(self, backdoored_tiny_model, defender_data):
        strict = copy.deepcopy(backdoored_tiny_model)
        lax = copy.deepcopy(backdoored_tiny_model)
        n_strict = CLPDefense(u=0.5).apply(strict, defender_data).details["num_pruned"]
        n_lax = CLPDefense(u=5.0).apply(lax, defender_data).details["num_pruned"]
        assert n_strict >= n_lax

    def test_invalid_u_raises(self):
        with pytest.raises(ValueError):
            CLPDefense(u=0.0)


class TestFTSAM:
    def test_runs_and_keeps_accuracy(self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        report = FTSAMDefense(rho=0.05, epochs=5, lr=0.02, seed=0).apply(model, defender_data)
        metrics = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert metrics.acc > 0.5
        assert report.details["epochs_run"] >= 1

    def test_reduces_asr_more_than_nothing(self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        before = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        FTSAMDefense(rho=0.1, epochs=8, lr=0.05, seed=0).apply(model, defender_data)
        after = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert after.asr <= before.asr


class TestANP:
    def test_masks_learned_and_convs_restored(self, backdoored_tiny_model, defender_data):
        model = copy.deepcopy(backdoored_tiny_model)
        report = ANPDefense(steps=20, seed=0).apply(model, defender_data)
        # Wrappers must be swapped back out.
        from repro.defenses import MaskedConv2d

        assert not any(isinstance(m, MaskedConv2d) for m in model.modules())
        assert "mask_summary" in report.details

    def test_model_still_classifies(self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        ANPDefense(steps=20, threshold=0.1, seed=0).apply(model, defender_data)
        metrics = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert metrics.acc > 0.3

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            ANPDefense(alpha=2.0)
