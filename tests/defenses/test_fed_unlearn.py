"""Clean-loss + backdoor-penalty unlearning defense."""

import copy

import numpy as np
import pytest

from repro.data.splits import defender_split
from repro.defenses import FederatedUnlearningDefense, build_defense
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics


@pytest.fixture()
def defender_data(tiny_reservoir, tiny_attack):
    clean_train, clean_val = defender_split(
        tiny_reservoir, spc=20, rng=np.random.default_rng(4)
    )
    return DefenderData(clean_train=clean_train, clean_val=clean_val, attack=tiny_attack)


class TestConfig:
    def test_registered_and_kwargs_forwarded(self):
        defense = build_defense("fed_unlearn", penalty=0.25, epochs=3)
        assert isinstance(defense, FederatedUnlearningDefense)
        assert defense.penalty == 0.25
        assert defense.epochs == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            FederatedUnlearningDefense(lr=0.0)
        with pytest.raises(ValueError):
            FederatedUnlearningDefense(epochs=0)
        with pytest.raises(ValueError):
            FederatedUnlearningDefense(penalty=-0.1)
        with pytest.raises(ValueError):
            FederatedUnlearningDefense(unlearn_count=-1)

    def test_effective_lr_anneals(self):
        base = FederatedUnlearningDefense(lr=0.02)
        assert base.effective_lr() == pytest.approx(0.02)
        # Snippet schedule: base / 2**(count/10) — halves every 10 rounds.
        later = FederatedUnlearningDefense(lr=0.02, unlearn_count=10)
        assert later.effective_lr() == pytest.approx(0.01)


class TestApply:
    def test_reduces_asr_keeps_model_usable(
        self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack
    ):
        model = copy.deepcopy(backdoored_tiny_model)
        before = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        report = FederatedUnlearningDefense(epochs=6, lr=0.02, seed=0).apply(
            model, defender_data
        )
        after = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert after.asr < before.asr
        assert after.acc > 0.4
        assert report.details["penalized_batches"] >= 1
        assert report.details["backdoor_loss"] > report.details["clean_loss"]

    def test_zero_penalty_degenerates_to_finetuning(
        self, backdoored_tiny_model, defender_data
    ):
        model = copy.deepcopy(backdoored_tiny_model)
        report = FederatedUnlearningDefense(penalty=0.0, epochs=1, seed=0).apply(
            model, defender_data
        )
        assert report.details["penalized_batches"] == 0

    def test_missing_attack_raises(self, backdoored_tiny_model, defender_data):
        data = DefenderData(
            clean_train=defender_data.clean_train,
            clean_val=defender_data.clean_val,
            attack=None,
        )
        with pytest.raises(ValueError, match="attack"):
            FederatedUnlearningDefense().apply(backdoored_tiny_model, data)

    def test_deterministic_given_seed(
        self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack
    ):
        m1 = copy.deepcopy(backdoored_tiny_model)
        m2 = copy.deepcopy(backdoored_tiny_model)
        FederatedUnlearningDefense(epochs=2, seed=7).apply(m1, defender_data)
        FederatedUnlearningDefense(epochs=2, seed=7).apply(m2, defender_data)
        a = evaluate_backdoor_metrics(m1, tiny_test, tiny_attack)
        b = evaluate_backdoor_metrics(m2, tiny_test, tiny_attack)
        assert (a.acc, a.asr, a.ra) == (b.acc, b.asr, b.ra)
