"""Neural Cleanse defense tests."""

import copy

import numpy as np
import pytest

from repro.data.splits import defender_split
from repro.defenses import NeuralCleanseDefense, build_defense
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics


@pytest.fixture()
def defender_data(tiny_reservoir, tiny_attack):
    clean_train, clean_val = defender_split(
        tiny_reservoir, spc=20, rng=np.random.default_rng(6)
    )
    # NC does not use the attack handle (it inverts its own trigger).
    return DefenderData(clean_train=clean_train, clean_val=clean_val, attack=None)


class TestNeuralCleanse:
    def test_runs_end_to_end(self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        defense = NeuralCleanseDefense(
            num_classes=3, inversion_steps=50, epochs=5, seed=0
        )
        report = defense.apply(model, defender_data)
        assert report.name == "nc"
        assert 0 <= report.details["detected_target"] < 3
        assert len(report.details["mask_l1"]) == 3
        metrics = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert metrics.acc > 0.4  # fine-tune must not destroy the main task

    def test_does_not_need_attack_handle(self, backdoored_tiny_model, defender_data):
        model = copy.deepcopy(backdoored_tiny_model)
        report = NeuralCleanseDefense(num_classes=3, inversion_steps=30, epochs=2).apply(
            model, defender_data
        )
        assert "detected_target" in report.details

    def test_num_classes_inferred(self, backdoored_tiny_model, defender_data):
        model = copy.deepcopy(backdoored_tiny_model)
        report = NeuralCleanseDefense(inversion_steps=30, epochs=2).apply(model, defender_data)
        assert len(report.details["mask_l1"]) == 3

    def test_invalid_trigger_fraction(self):
        with pytest.raises(ValueError):
            NeuralCleanseDefense(trigger_fraction=0.0)

    def test_registered(self):
        defense = build_defense("nc", inversion_steps=10)
        assert defense.inversion_steps == 10
