"""Krum aggregation tests."""

import numpy as np
import pytest

from repro.federated import FederatedClient, FederatedServer, krum
from tests.conftest import TinyConvNet, make_tiny_dataset


def states(values):
    return [{"w": np.array([v, v], dtype=np.float32)} for v in values]


class TestKrum:
    def test_picks_central_update(self):
        # Three clustered honest updates + one far outlier.
        result = krum(states([1.0, 1.1, 0.9, 50.0]), num_malicious=1)
        assert abs(result["w"][0] - 1.0) < 0.2

    def test_outlier_never_selected(self):
        for outlier in (100.0, -100.0):
            result = krum(states([0.0, 0.1, -0.1, outlier]), num_malicious=1)
            assert abs(result["w"][0]) < 1.0

    def test_returns_copy(self):
        updates = states([1.0, 1.0, 1.0, 1.0])
        result = krum(updates, num_malicious=1)
        result["w"][0] = 99.0
        assert updates[0]["w"][0] == 1.0

    def test_too_few_updates_raises(self):
        with pytest.raises(ValueError, match="Krum"):
            krum(states([1.0, 2.0, 3.0]), num_malicious=1)

    def test_selected_is_an_actual_update(self):
        updates = states([3.0, 3.2, 2.8, -7.0])
        result = krum(updates, num_malicious=1)
        candidates = [u["w"][0] for u in updates]
        assert result["w"][0] in candidates

    def test_server_krum_round(self):
        clients = [
            FederatedClient(i, make_tiny_dataset(30, seed=i), epochs=1) for i in range(4)
        ]
        server = FederatedServer(
            TinyConvNet(seed=0), clients, aggregation="krum", trim=1, seed=0
        )
        participants = server.run_round()
        assert len(participants) == 4
