"""Federated-learning substrate tests."""

import numpy as np
import pytest

from repro.federated import (
    FederatedClient,
    FederatedServer,
    MaliciousClient,
    fedavg,
    run_federated_backdoor,
    split_dataset,
    split_dataset_dirichlet,
    split_dataset_iid,
    trimmed_mean,
)
from repro.telemetry import MemorySink, bus
from tests.conftest import TinyConvNet, make_tiny_dataset


class TestPartitioning:
    def test_iid_covers_everything_once(self):
        ds = make_tiny_dataset(90, seed=0)
        shards = split_dataset_iid(ds, 5, np.random.default_rng(0))
        assert len(shards) == 5
        assert sum(len(s) for s in shards) == 90

    def test_iid_too_many_clients_raises(self):
        with pytest.raises(ValueError):
            split_dataset_iid(make_tiny_dataset(3), 10)

    def test_dirichlet_partitions_everything_exactly_once(self):
        ds = make_tiny_dataset(120, seed=1)
        shards = split_dataset_dirichlet(ds, 4, alpha=0.5, rng=np.random.default_rng(0))
        # Exact partition: empty clients are rescued by moving samples, never
        # duplicating them.
        assert sum(len(s) for s in shards) == 120
        assert all(len(s) >= 1 for s in shards)

    def test_split_dataset_dispatch(self):
        ds = make_tiny_dataset(60, seed=3)
        assert len(split_dataset(ds, 3, "iid", rng=np.random.default_rng(0))) == 3
        assert len(split_dataset(ds, 3, "dirichlet", rng=np.random.default_rng(0))) == 3
        with pytest.raises(ValueError):
            split_dataset(ds, 3, "stratified")

    def test_dirichlet_small_alpha_is_skewed(self):
        ds = make_tiny_dataset(300, seed=2)
        shards = split_dataset_dirichlet(ds, 3, alpha=0.05, rng=np.random.default_rng(3))
        # With a tiny alpha, at least one client should be class-dominated.
        dominances = []
        for shard in shards:
            counts = shard.class_counts()
            dominances.append(counts.max() / max(counts.sum(), 1))
        assert max(dominances) > 0.6

    def test_dirichlet_invalid_alpha(self):
        with pytest.raises(ValueError):
            split_dataset_dirichlet(make_tiny_dataset(30), 2, alpha=0.0)


class TestAggregation:
    def _states(self, values):
        return [{"w": np.array([v], dtype=np.float32)} for v in values]

    def test_fedavg_weighted(self):
        result = fedavg(self._states([0.0, 1.0]), weights=[1, 3])
        assert result["w"][0] == pytest.approx(0.75)

    def test_fedavg_validation(self):
        with pytest.raises(ValueError):
            fedavg([], [])
        with pytest.raises(ValueError):
            fedavg(self._states([1.0]), [1, 2])
        with pytest.raises(ValueError):
            fedavg(self._states([1.0]), [0])

    def test_trimmed_mean_drops_extremes(self):
        result = trimmed_mean(self._states([0.0, 1.0, 2.0, 100.0]), trim=1)
        assert result["w"][0] == pytest.approx(1.5)

    def test_trimmed_mean_needs_enough_updates(self):
        with pytest.raises(ValueError):
            trimmed_mean(self._states([1.0, 2.0]), trim=1)


class TestClients:
    def test_honest_update_changes_weights(self):
        client = FederatedClient(0, make_tiny_dataset(30, seed=0), epochs=1, lr=0.05)
        model = TinyConvNet(seed=0)
        state = model.state_dict()
        update = client.local_update(model, state)
        assert any(not np.array_equal(update[k], state[k]) for k in state)
        # Global model untouched by the client's local training.
        assert all(np.array_equal(model.state_dict()[k], state[k]) for k in state)

    def test_empty_client_raises(self):
        from repro.data import ImageDataset

        empty = ImageDataset(np.zeros((0, 3, 8, 8), dtype=np.float32), np.zeros(0))
        with pytest.raises(ValueError):
            FederatedClient(0, empty)

    def test_malicious_boost_amplifies(self, tiny_attack):
        ds = make_tiny_dataset(30, seed=1)
        model = TinyConvNet(seed=0)
        state = model.state_dict()
        plain = MaliciousClient(0, ds, tiny_attack, boost=1.0, seed=0)
        boosted = MaliciousClient(0, ds, tiny_attack, boost=3.0, seed=0)
        u1 = plain.local_update(model, state)
        u2 = boosted.local_update(model, state)
        key = next(iter(state))
        d1 = np.abs(u1[key] - state[key]).sum()
        d2 = np.abs(u2[key] - state[key]).sum()
        assert d2 == pytest.approx(3.0 * d1, rel=0.01)

    def test_invalid_boost_raises(self, tiny_attack):
        with pytest.raises(ValueError):
            MaliciousClient(0, make_tiny_dataset(10), tiny_attack, boost=0.0)


class TestServer:
    def test_round_updates_global_model(self):
        clients = [
            FederatedClient(i, make_tiny_dataset(30, seed=i), epochs=1) for i in range(3)
        ]
        model = TinyConvNet(seed=0)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        server = FederatedServer(model, clients, seed=0)
        participants = server.run_round()
        assert len(participants) == 3
        after = model.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)

    def test_client_fraction_sampling(self):
        clients = [FederatedClient(i, make_tiny_dataset(20, seed=i)) for i in range(4)]
        server = FederatedServer(TinyConvNet(seed=0), clients, client_fraction=0.5, seed=1)
        assert len(server.sample_clients()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FederatedServer(TinyConvNet(), [])
        clients = [FederatedClient(0, make_tiny_dataset(10))]
        with pytest.raises(ValueError):
            FederatedServer(TinyConvNet(), clients, client_fraction=0.0)
        with pytest.raises(ValueError):
            FederatedServer(TinyConvNet(), clients, aggregation="median_of_means")


class TestEndToEnd:
    def test_federated_backdoor_embeds_and_learns(self, tiny_train, tiny_test, tiny_attack):
        model = TinyConvNet(seed=0)
        server, log = run_federated_backdoor(
            model, tiny_train, tiny_test, tiny_attack,
            num_clients=4, num_malicious=1, rounds=6,
            local_epochs=2, boost=4.0, lr=0.08, seed=0,
        )
        final = log.final
        assert final.acc > 0.6  # honest majority still learns the task
        assert final.asr > 0.4  # one boosted client embeds the backdoor

    def test_no_malicious_no_backdoor(self, tiny_train, tiny_test, tiny_attack):
        model = TinyConvNet(seed=0)
        _server, log = run_federated_backdoor(
            model, tiny_train, tiny_test, tiny_attack,
            num_clients=4, num_malicious=0, rounds=4, local_epochs=2, lr=0.08, seed=0,
        )
        assert log.final.asr < 0.3

    def test_invalid_malicious_count(self, tiny_train, tiny_test, tiny_attack):
        with pytest.raises(ValueError):
            run_federated_backdoor(
                TinyConvNet(), tiny_train, tiny_test, tiny_attack,
                num_clients=3, num_malicious=3,
            )

    def test_empty_log_final_is_descriptive(self):
        from repro.federated import FederatedRunLog

        with pytest.raises(ValueError, match="no federated rounds recorded"):
            FederatedRunLog().final

    def test_dirichlet_partition_and_poison_ratio_params(
        self, tiny_train, tiny_test, tiny_attack
    ):
        model = TinyConvNet(seed=0)
        _server, log = run_federated_backdoor(
            model, tiny_train, tiny_test, tiny_attack,
            num_clients=3, num_malicious=1, rounds=2, local_epochs=1,
            partition="dirichlet", alpha=0.3, poison_ratio=0.5, lr=0.05, seed=1,
        )
        assert len(log.rounds) == 2
        with pytest.raises(ValueError, match="partition"):
            run_federated_backdoor(
                TinyConvNet(), tiny_train, tiny_test, tiny_attack,
                num_clients=3, num_malicious=1, rounds=1, partition="sorted",
            )

    def test_round_telemetry_emitted(self, tiny_train, tiny_test, tiny_attack):
        sink = MemorySink()
        bus().attach(sink)
        try:
            run_federated_backdoor(
                TinyConvNet(seed=0), tiny_train, tiny_test, tiny_attack,
                num_clients=3, num_malicious=1, rounds=2, local_epochs=1, seed=0,
            )
        finally:
            bus().detach(sink)
        events = {e.event: e for e in sink.events}
        assert "federated.run_started" in events
        assert "federated.run_finished" in events
        rounds = [e for e in sink.events if e.event == "federated.round"]
        assert [e.fields["round"] for e in rounds] == [0, 1]
        for e in rounds:
            assert {"acc", "asr", "ra", "participants", "agg_norm"} <= set(e.fields)
