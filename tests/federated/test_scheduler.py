"""Sharded federated scheduler: DAG shape, orchestrated runs, kill+resume.

Uses a deliberately tiny grid (4 clients, 2 rounds, 120 train samples,
3 classes) so a full client-fan-out -> aggregate -> defend cycle stays in
the seconds range.
"""

import json
import os

import numpy as np
import pytest

from repro.federated import (
    FederatedOrchestrator,
    FederatedScenario,
    build_federated_dag,
    federated_spec,
)
from repro.federated.scheduler import state_key, update_key
from repro.orchestrator import FAULT_RATE_ENV
from repro.orchestrator.artifacts import ArtifactStore
from repro.orchestrator.orchestrator import OrchestratorConfig

TINY = dict(
    client_counts=(4,),
    malicious_fractions=(0.25,),
    rounds=2,
    n_train=120,
    n_test=60,
    n_reservoir=120,
    num_classes=3,
    defenses=("fed_unlearn",),
    defense_kwargs={"fed_unlearn": {"epochs": 2}},
    spc=2,
)


def tiny_spec(**overrides):
    kwargs = dict(TINY)
    kwargs.update(overrides)
    return federated_spec("quick", **kwargs)


def orchestrator_for(tmp_path, **overrides):
    kwargs = dict(
        workers=0,
        run_dir=str(tmp_path / "run"),
        retry_backoff=0.01,
        verbose=False,
    )
    kwargs.update(overrides)
    return FederatedOrchestrator(OrchestratorConfig(**kwargs))


def ledger_events(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle]


class TestSpec:
    def test_quick_grid_defaults(self):
        spec = federated_spec("quick")
        assert spec.client_counts == (8, 64)
        assert spec.malicious_fractions == (0.125, 0.25)
        assert spec.base.rounds == 3
        assert spec.defenses == ("grad_prune", "fed_unlearn")
        assert len(spec.scenarios()) == 4

    def test_overrides_route_to_spec_or_scenario(self):
        spec = tiny_spec(alpha=0.1, partition="iid")
        assert spec.client_counts == (4,)
        assert spec.base.alpha == 0.1
        assert spec.base.partition == "iid"
        with pytest.raises(TypeError):
            federated_spec("quick", gradient_clipping=True)

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            FederatedScenario(num_clients=0)
        with pytest.raises(ValueError):
            FederatedScenario(partition="sorted")
        with pytest.raises(ValueError):
            FederatedScenario(client_fraction=0.0)

    def test_fingerprint_sensitivity(self):
        a = FederatedScenario()
        assert a.fingerprint() == FederatedScenario().fingerprint()
        assert a.fingerprint() != FederatedScenario(alpha=0.1).fingerprint()

    def test_participants_deterministic_and_sorted(self):
        scenario = FederatedScenario(num_clients=10, client_fraction=0.4)
        first = scenario.participants(1)
        assert first == scenario.participants(1)
        assert first == sorted(first)
        assert len(first) == 4
        assert first != scenario.participants(2) or len(set(first)) == 10
        full = FederatedScenario(num_clients=5)
        assert full.participants(0) == [0, 1, 2, 3, 4]


class TestDagBuilder:
    def test_structure(self):
        spec = tiny_spec(defenses=("grad_prune", "fed_unlearn"))
        tasks = build_federated_dag(spec)
        kinds = {}
        for task in tasks:
            kinds.setdefault(task.kind, []).append(task)
        # 1 cell: 2 rounds x 4 clients, 2 aggregations, 2 defense arms.
        assert len(kinds["fed_client"]) == 8
        assert len(kinds["fed_round"]) == 2
        assert len(kinds["fed_defense"]) == 2

    def test_dependencies_wired(self):
        spec = tiny_spec()
        fp = spec.scenarios()[0].fingerprint()
        tasks = {task.task_id: task for task in build_federated_dag(spec)}
        for task in tasks.values():
            assert task.scenario == fp
        # Round 0 clients are roots; round 1 clients wait on the round-0 barrier.
        assert tasks[f"fedc:{fp}:0:0"].deps == ()
        assert tasks[f"fedc:{fp}:1:0"].deps == (f"feda:{fp}:0",)
        # Each barrier waits on exactly its round's client tasks.
        assert set(tasks[f"feda:{fp}:1"].deps) == {
            f"fedc:{fp}:1:{cid}" for cid in range(4)
        }
        # Defense hangs off the final aggregate only.
        assert tasks[f"fedd:{fp}:1:fed_unlearn"].deps == (f"feda:{fp}:1",)


class TestOrchestratedRun:
    def test_runs_and_defense_cuts_asr(self, tmp_path):
        """Acceptance core: tableF cell through the pool; the no-defense arm
        keeps a high ASR while the unlearning arm cuts it."""
        result = orchestrator_for(tmp_path).run(tiny_spec())
        assert result.ok
        assert result.counts == {"done": 11}
        (cell,) = result.cells
        assert len(cell.rounds) == 2
        none_arm = cell.arms["none"]
        defended = cell.arms["fed_unlearn"]
        assert none_arm.asr > 0.6
        assert defended.asr < none_arm.asr
        assert "fed_unlearn" in result.table_text()
        assert "done=11" in result.summary()

    def test_workers_match_serial_bitwise(self, tmp_path):
        spec = tiny_spec()
        fp = spec.scenarios()[0].fingerprint()
        serial = orchestrator_for(tmp_path / "serial").run(spec)
        pooled = orchestrator_for(tmp_path / "pooled", workers=2).run(spec)
        assert serial.ok and pooled.ok
        a = ArtifactStore(os.path.join(serial.run_dir, "artifacts"))
        b = ArtifactStore(os.path.join(pooled.run_dir, "artifacts"))
        sa = a.get_state(state_key(fp, 1))
        sb = b.get_state(state_key(fp, 1))
        assert sa is not None and sb is not None
        assert sa.keys() == sb.keys()
        assert all(np.array_equal(sa[k], sb[k]) for k in sa)


class TestKillAndResume:
    def test_faulted_run_resumes_bitwise_identical(self, tmp_path, monkeypatch):
        """Acceptance: kill mid-run (fault injection), resume, and the final
        aggregate is bitwise identical to an uninterrupted run."""
        spec = tiny_spec()
        fp = spec.scenarios()[0].fingerprint()
        reference = orchestrator_for(tmp_path / "ref").run(spec)
        assert reference.ok

        monkeypatch.setenv(FAULT_RATE_ENV, "0.4")
        first = orchestrator_for(tmp_path, max_retries=0).run(spec)
        assert not first.ok  # at least one task died with retries disabled
        events = ledger_events(first.ledger_path)
        done_after_first = {
            event["task"] for event in events if event["event"] == "finished"
        }
        lines_after_first = len(events)

        monkeypatch.setenv(FAULT_RATE_ENV, "0")
        second = orchestrator_for(tmp_path, resume=True).run(spec)
        assert second.ok
        appended = ledger_events(second.ledger_path)[lines_after_first:]
        restarted = {
            event["task"] for event in appended if event["event"] == "started"
        }
        assert not (restarted & done_after_first), "resume re-ran finished tasks"

        ref_store = ArtifactStore(os.path.join(reference.run_dir, "artifacts"))
        res_store = ArtifactStore(os.path.join(second.run_dir, "artifacts"))
        ref_state = ref_store.get_state(state_key(fp, 1))
        res_state = res_store.get_state(state_key(fp, 1))
        assert ref_state is not None and res_state is not None
        assert all(np.array_equal(ref_state[k], res_state[k]) for k in ref_state)
        (ref_cell,) = reference.cells
        (res_cell,) = second.cells
        assert [(m.acc, m.asr, m.ra) for m in res_cell.rounds] == [
            (m.acc, m.asr, m.ra) for m in ref_cell.rounds
        ]

    def test_resume_distrusts_missing_artifacts(self, tmp_path):
        """A ledger 'done' without its artifact re-executes instead of
        poisoning the resumed run."""
        spec = tiny_spec()
        fp = spec.scenarios()[0].fingerprint()
        first = orchestrator_for(tmp_path).run(spec)
        assert first.ok
        store = ArtifactStore(os.path.join(first.run_dir, "artifacts"))
        os.remove(store.path(state_key(fp, 1), ".npz"))
        second = orchestrator_for(tmp_path, resume=True).run(spec)
        assert second.ok
        # The final aggregation (and its dependants are preloaded) re-ran.
        assert second.reused < len(build_federated_dag(spec))
        assert store.get_state(state_key(fp, 1)) is not None

    def test_client_update_artifacts_written(self, tmp_path):
        spec = tiny_spec()
        fp = spec.scenarios()[0].fingerprint()
        result = orchestrator_for(tmp_path).run(spec)
        assert result.ok
        store = ArtifactStore(os.path.join(result.run_dir, "artifacts"))
        for round_index in range(2):
            for client_id in range(4):
                assert store.get_state(update_key(fp, round_index, client_id)) is not None
