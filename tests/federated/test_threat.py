"""Threat-model layer: population sizing, boost resolution, determinism."""

import numpy as np
import pytest

from repro.federated import ThreatModel, build_clients, split_dataset_iid
from repro.federated.client import FederatedClient, MaliciousClient
from tests.conftest import make_tiny_dataset


class TestValidation:
    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            ThreatModel(malicious_fraction=1.0)
        with pytest.raises(ValueError):
            ThreatModel(malicious_fraction=-0.1)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            ThreatModel(attack_mode="sybil")

    def test_bad_boost_and_poison(self):
        with pytest.raises(ValueError):
            ThreatModel(boost=0.0)
        with pytest.raises(ValueError):
            ThreatModel(poison_ratio=0.0)


class TestNumMalicious:
    def test_rounds_but_never_zero_for_positive_fraction(self):
        assert ThreatModel(malicious_fraction=0.125).num_malicious(64) == 8
        assert ThreatModel(malicious_fraction=0.01).num_malicious(8) == 1

    def test_never_the_whole_population(self):
        assert ThreatModel(malicious_fraction=0.9).num_malicious(2) == 1

    def test_zero_for_none_mode_or_zero_fraction(self):
        assert ThreatModel(attack_mode="none").num_malicious(64) == 0
        assert ThreatModel(malicious_fraction=0.0).num_malicious(64) == 0


class TestBoost:
    def test_boost_mode_uses_configured_factor(self):
        assert ThreatModel(attack_mode="boost", boost=4.0).resolve_boost(64) == 4.0

    def test_replacement_scales_with_population(self):
        threat = ThreatModel(attack_mode="replacement")
        assert threat.resolve_boost(64) == pytest.approx(64.0)
        assert threat.resolve_boost(64, client_fraction=0.5) == pytest.approx(128.0)


class TestMaliciousIds:
    def test_deterministic_per_seed(self):
        threat = ThreatModel(malicious_fraction=0.25)
        assert threat.malicious_ids(16, seed=3) == threat.malicious_ids(16, seed=3)
        assert threat.malicious_ids(16, seed=3) != threat.malicious_ids(16, seed=4)

    def test_count_and_range(self):
        ids = ThreatModel(malicious_fraction=0.25).malicious_ids(16, seed=0)
        assert len(ids) == 4
        assert all(0 <= i < 16 for i in ids)

    def test_empty_for_clean_arm(self):
        assert ThreatModel(attack_mode="none").malicious_ids(16) == frozenset()


class TestBuildClients:
    def test_population_matches_threat(self, tiny_attack):
        shards = split_dataset_iid(make_tiny_dataset(80, seed=0), 8, np.random.default_rng(0))
        threat = ThreatModel(malicious_fraction=0.25, boost=3.0)
        clients = build_clients(shards, threat, tiny_attack, seed=5)
        assert len(clients) == 8
        assert [c.client_id for c in clients] == list(range(8))
        malicious = {c.client_id for c in clients if isinstance(c, MaliciousClient)}
        assert malicious == set(threat.malicious_ids(8, seed=5))
        assert all(
            c.boost == 3.0 for c in clients if isinstance(c, MaliciousClient)
        )

    def test_clean_arm_builds_only_honest_clients(self):
        shards = split_dataset_iid(make_tiny_dataset(40, seed=1), 4, np.random.default_rng(0))
        clients = build_clients(shards, ThreatModel(attack_mode="none"), None)
        assert all(type(c) is FederatedClient for c in clients)

    def test_missing_attack_raises(self):
        shards = split_dataset_iid(make_tiny_dataset(40, seed=1), 4, np.random.default_rng(0))
        with pytest.raises(ValueError, match="no attack"):
            build_clients(shards, ThreatModel(malicious_fraction=0.25), None)
