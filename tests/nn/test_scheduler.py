"""Learning-rate scheduler tests."""

import numpy as np
import pytest

from repro.nn import SGD, CosineAnnealingLR, MultiStepLR, Parameter, StepLR


def make_opt(lr=1.0):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestStepLR:
    def test_decays_every_step_size(self):
        opt = make_opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        # After k steps the epoch counter is k: decay applies at epochs 2, 4.
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])


class TestMultiStepLR:
    def test_milestones(self):
        opt = make_opt()
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25])


class TestCosine:
    def test_endpoints(self):
        opt = make_opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        assert sched.get_lr() == pytest.approx(1.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-9)

    def test_midpoint_half(self):
        opt = make_opt()
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5, abs=1e-6)

    def test_clamps_past_t_max(self):
        opt = make_opt()
        sched = CosineAnnealingLR(opt, t_max=4, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        opt = make_opt()
        sched = CosineAnnealingLR(opt, t_max=20)
        previous = opt.lr
        for _ in range(20):
            sched.step()
            assert opt.lr <= previous + 1e-12
            previous = opt.lr
