"""Layer behavior tests: shapes, modes, parameter wiring."""

import numpy as np
import pytest

from repro.nn import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tensor,
)

RNG = np.random.default_rng(0)


def batch(shape):
    return Tensor(RNG.normal(size=shape).astype(np.float32))


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1)
        assert conv(batch((2, 3, 8, 8))).shape == (2, 8, 4, 4)

    def test_no_bias(self):
        conv = Conv2d(3, 4, 3, bias=False)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_depthwise_groups(self):
        conv = Conv2d(4, 4, 3, padding=1, groups=4)
        assert conv.weight.shape == (4, 1, 3, 3)
        assert conv(batch((1, 4, 5, 5))).shape == (1, 4, 5, 5)

    def test_channel_mismatch_raises(self):
        conv = Conv2d(3, 4, 3)
        with pytest.raises(ValueError, match="channel"):
            conv(batch((1, 5, 8, 8)))

    def test_groups_not_dividing_raises(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, groups=2)

    def test_deterministic_init_with_rng(self):
        a = Conv2d(3, 4, 3, rng=np.random.default_rng(5))
        b = Conv2d(3, 4, 3, rng=np.random.default_rng(5))
        assert np.array_equal(a.weight.data, b.weight.data)

    def test_rect_kernel(self):
        conv = Conv2d(1, 1, (1, 3), padding=(0, 1))
        assert conv(batch((1, 1, 4, 4))).shape == (1, 1, 4, 4)


class TestLinear:
    def test_shape_and_bias(self):
        linear = Linear(5, 3)
        out = linear(batch((4, 5)))
        assert out.shape == (4, 3)

    def test_known_values(self):
        linear = Linear(2, 1)
        linear.weight.data[...] = np.array([[2.0, 3.0]], dtype=np.float32)
        linear.bias.data[...] = np.array([1.0], dtype=np.float32)
        out = linear(Tensor(np.array([[1.0, 1.0]], dtype=np.float32)))
        assert out.data[0, 0] == pytest.approx(6.0)


class TestBatchNorm2d:
    def test_train_normalizes_batch(self):
        bn = BatchNorm2d(3)
        bn.train()
        x = batch((8, 3, 4, 4))
        out = bn(x)
        assert abs(float(out.data.mean())) < 1e-5
        assert float(out.data.std()) == pytest.approx(1.0, abs=0.01)

    def test_running_stats_update(self):
        bn = BatchNorm2d(2)
        bn.train()
        x = Tensor(np.full((4, 2, 3, 3), 5.0, dtype=np.float32))
        bn(x)
        assert np.allclose(bn.running_mean, 0.5, atol=1e-6)  # 0.9*0 + 0.1*5

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        bn._update_buffer("running_mean", np.array([1.0, 2.0], dtype=np.float32))
        bn._update_buffer("running_var", np.array([4.0, 9.0], dtype=np.float32))
        bn.eval()
        x = Tensor(np.ones((1, 2, 1, 1), dtype=np.float32))
        out = bn(x)
        assert out.data[0, 0, 0, 0] == pytest.approx((1 - 1) / 2, abs=1e-4)
        assert out.data[0, 1, 0, 0] == pytest.approx((1 - 2) / 3, abs=1e-4)

    def test_eval_no_stat_update(self):
        bn = BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(batch((4, 2, 3, 3)))
        assert np.array_equal(bn.running_mean, before)


class TestPooling:
    def test_max_pool_shape(self):
        assert MaxPool2d(2)(batch((1, 2, 8, 8))).shape == (1, 2, 4, 4)

    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = MaxPool2d(2)(x)
        assert out.data.reshape(-1).tolist() == [5.0, 7.0, 13.0, 15.0]

    def test_avg_pool_values(self):
        x = Tensor(np.ones((1, 1, 4, 4), dtype=np.float32))
        assert np.allclose(AvgPool2d(2)(x).data, 1.0)

    def test_adaptive_avg_pool_global(self):
        x = Tensor(np.arange(32, dtype=np.float32).reshape(1, 2, 4, 4))
        out = AdaptiveAvgPool2d(1)(x)
        assert out.shape == (1, 2, 1, 1)
        assert out.data[0, 0, 0, 0] == pytest.approx(7.5)

    def test_adaptive_avg_pool_indivisible_raises(self):
        with pytest.raises(ValueError):
            AdaptiveAvgPool2d(3)(batch((1, 1, 8, 8)))


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = batch((4, 10))
        assert np.array_equal(drop(x).data, x.data)

    def test_train_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = drop(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted scaling

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestMisc:
    def test_flatten(self):
        assert Flatten()(batch((2, 3, 4, 4))).shape == (2, 48)

    def test_identity(self):
        x = batch((2, 2))
        assert Identity()(x) is x

    def test_activation_modules(self):
        x = Tensor(np.array([-1.0, 1.0], dtype=np.float32))
        assert ReLU()(x).data.tolist() == [0.0, 1.0]
        assert LeakyReLU(0.5)(x).data.tolist() == [-0.5, 1.0]
        assert Sigmoid()(x).data[1] == pytest.approx(1 / (1 + np.exp(-1)), rel=1e-5)

    def test_sequential_of_everything(self):
        model = Sequential(
            Conv2d(3, 4, 3, padding=1), BatchNorm2d(4), ReLU(), MaxPool2d(2),
            Flatten(), Linear(4 * 4 * 4, 2),
        )
        assert model(batch((2, 3, 8, 8))).shape == (2, 2)
