"""Forward-value tests for functional ops (gradients in test_gradcheck)."""

import numpy as np
import pytest
from scipy.signal import correlate2d

from repro.nn import Tensor
from repro.nn import functional as F


class TestIm2Col:
    def test_round_trip_identity_on_ones_count(self):
        # col2im(im2col(x)) counts each pixel once per covering window.
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        cols = F.im2col(x, (2, 2), (1, 1), (0, 0))
        folded = F.col2im(cols, x.shape, (2, 2), (1, 1), (0, 0))
        # Corner pixels covered once, edges twice, center four times.
        assert folded[0, 0, 0, 0] == 1.0
        assert folded[0, 0, 0, 1] == 2.0
        assert folded[0, 0, 1, 1] == 4.0

    def test_shapes(self):
        x = np.zeros((2, 3, 8, 8), dtype=np.float32)
        cols = F.im2col(x, (3, 3), (2, 2), (1, 1))
        assert cols.shape == (2, 27, 16)


class TestConvForward:
    def test_matches_scipy_correlate(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 1, 8, 8)).astype(np.float32)
        w = rng.normal(size=(1, 1, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), None, stride=1, padding=0)
        expected = correlate2d(x[0, 0], w[0, 0], mode="valid")
        assert np.allclose(out.data[0, 0], expected, atol=1e-4)

    def test_multi_channel_sums_inputs(self):
        x = np.ones((1, 3, 4, 4), dtype=np.float32)
        w = np.ones((1, 3, 1, 1), dtype=np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), None)
        assert np.allclose(out.data, 3.0)

    def test_bias_added_per_channel(self):
        x = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w = np.zeros((2, 1, 1, 1), dtype=np.float32)
        b = np.array([1.0, -2.0], dtype=np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b))
        assert np.allclose(out.data[0, 0], 1.0)
        assert np.allclose(out.data[0, 1], -2.0)

    def test_stride_and_padding_shape(self):
        x = Tensor(np.zeros((1, 1, 7, 7), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        assert F.conv2d(x, w, None, stride=2, padding=1).shape == (1, 1, 4, 4)

    def test_depthwise_independence(self):
        # With identity-like depthwise weights, each channel passes through alone.
        x = np.stack([np.full((4, 4), 1.0), np.full((4, 4), 2.0)])[None].astype(np.float32)
        w = np.ones((2, 1, 1, 1), dtype=np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), None, groups=2)
        assert np.allclose(out.data[0, 0], 1.0)
        assert np.allclose(out.data[0, 1], 2.0)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            F.conv2d(
                Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((2, 2, 3, 3))), None
            )

    def test_groups_not_dividing_cout_raises(self):
        with pytest.raises(ValueError, match="divisible"):
            F.conv2d(
                Tensor(np.zeros((1, 4, 4, 4))), Tensor(np.zeros((3, 2, 3, 3))), None, groups=2
            )


class TestPooling:
    def test_max_pool_padding_uses_neg_inf(self):
        # Padding must never win the max.
        x = Tensor(np.full((1, 1, 2, 2), -5.0, dtype=np.float32))
        out = F.max_pool2d(x, 2, 2, padding=1)
        assert out.data.max() == -5.0

    def test_avg_pool_includes_zero_padding(self):
        x = Tensor(np.full((1, 1, 2, 2), 4.0, dtype=np.float32))
        out = F.avg_pool2d(x, 2, 2, padding=1)
        # Corner windows: one real pixel + three zeros.
        assert out.data[0, 0, 0, 0] == pytest.approx(1.0)

    def test_adaptive_divisible(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.adaptive_avg_pool2d(x, 2)
        assert out.shape == (1, 1, 2, 2)
        assert out.data[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)


class TestPad:
    def test_pad_values_and_shape(self):
        x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32))
        out = F.pad2d(x, 1)
        assert out.shape == (1, 1, 4, 4)
        assert out.data[0, 0, 0, 0] == 0.0
        assert out.data[0, 0, 1, 1] == 1.0


class TestBatchNormForward:
    def test_train_uses_batch_stats(self):
        x = Tensor(np.random.default_rng(0).normal(5.0, 3.0, (16, 2, 4, 4)).astype(np.float32))
        w = Tensor(np.ones(2, dtype=np.float32))
        b = Tensor(np.zeros(2, dtype=np.float32))
        out, mean, var = F.batch_norm2d_train(x, w, b, 1e-5)
        assert abs(float(out.data.mean())) < 1e-5
        assert mean.shape == (2,)
        assert var.shape == (2,)

    def test_eval_affine(self):
        x = Tensor(np.zeros((1, 1, 1, 1), dtype=np.float32))
        w = Tensor(np.array([2.0], dtype=np.float32))
        b = Tensor(np.array([1.0], dtype=np.float32))
        out = F.batch_norm2d_eval(x, w, b, np.array([0.0]), np.array([1.0]), 0.0)
        assert out.data[0, 0, 0, 0] == pytest.approx(1.0)
