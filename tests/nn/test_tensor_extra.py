"""Additional Tensor coverage: batched matmul, slicing, axis variants."""

import numpy as np
import pytest

from repro.nn import Tensor


class TestBatchedMatmul:
    def test_3d_batched_forward(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(4, 2, 3)).astype(np.float32))
        b = Tensor(rng.normal(size=(4, 3, 5)).astype(np.float32))
        out = a @ b
        assert out.shape == (4, 2, 5)
        assert np.allclose(out.data, a.data @ b.data, atol=1e-5)

    def test_3d_batched_backward_shapes(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(4, 2, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3, 5)).astype(np.float32), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (4, 2, 3)
        assert b.grad.shape == (4, 3, 5)

    def test_broadcast_matmul_backward(self):
        # (1, K, N) weight broadcast against (B, M, K) batch.
        rng = np.random.default_rng(2)
        w = Tensor(rng.normal(size=(1, 3, 4)).astype(np.float32), requires_grad=True)
        x = Tensor(rng.normal(size=(5, 2, 3)).astype(np.float32), requires_grad=True)
        (x @ w).sum().backward()
        assert w.grad.shape == (1, 3, 4)  # broadcast dim summed back
        assert x.grad.shape == (5, 2, 3)

    def test_batched_matmul_gradcheck(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(2, 2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3, 2)), requires_grad=True)
        ((a @ b) ** 2.0).sum().backward()

        def f():
            return float(((a.data @ b.data) ** 2).sum())

        def numgrad(x, eps=1e-5):
            g = np.zeros_like(x)
            it = np.nditer(x, flags=["multi_index"])
            while not it.finished:
                i = it.multi_index
                orig = x[i]
                x[i] = orig + eps
                fp = f()
                x[i] = orig - eps
                fm = f()
                x[i] = orig
                g[i] = (fp - fm) / (2 * eps)
                it.iternext()
            return g

        assert np.abs(numgrad(a.data) - a.grad).max() < 1e-4
        assert np.abs(numgrad(b.data) - b.grad).max() < 1e-4


class TestSlicing:
    def test_slice_rows_backward(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((4, 3), dtype=np.float32)
        expected[1:3] = 1.0
        assert np.array_equal(x.grad, expected)

    def test_boolean_mask_indexing(self):
        x = Tensor(np.arange(5, dtype=np.float32), requires_grad=True)
        mask = np.array([True, False, True, False, True])
        out = x[mask]
        assert out.shape == (3,)
        out.sum().backward()
        assert np.array_equal(x.grad, mask.astype(np.float32))

    def test_single_element_slice(self):
        # Note: scalar indexing (x[2]) is unsupported — use a length-1 slice.
        x = Tensor(np.arange(4, dtype=np.float32), requires_grad=True)
        x[2:3].sum().backward()
        assert x.grad.tolist() == [0.0, 0.0, 1.0, 0.0]


class TestConcatenateAxes:
    def test_axis_1(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.full((2, 2), 2.0), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 3.0).sum().backward()
        assert np.allclose(a.grad, 3.0)
        assert np.allclose(b.grad, 3.0)

    def test_raw_arrays_accepted(self):
        out = Tensor.concatenate([np.ones((1, 2)), np.zeros((1, 2))])
        assert out.shape == (2, 2)

    def test_mixed_grad_flags(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 2)))  # no grad
        out = Tensor.concatenate([a, b], axis=0)
        out.sum().backward()
        assert a.grad is not None
        assert b.grad is None


class TestReductionAxes:
    def test_sum_negative_axis(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = x.sum(axis=-1)
        assert out.shape == (2,)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_var_keepdims(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32))
        assert x.var(axis=1, keepdims=True).shape == (3, 1)

    def test_max_keepdims(self):
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)).astype(np.float32))
        assert x.max(axis=0, keepdims=True).shape == (1, 4)


class TestClampVariants:
    def test_min_only(self):
        x = Tensor(np.array([-2.0, 0.5], dtype=np.float32), requires_grad=True)
        out = x.clamp(min_value=0.0)
        assert out.data.tolist() == [0.0, 0.5]
        out.sum().backward()
        assert x.grad.tolist() == [0.0, 1.0]

    def test_max_only(self):
        x = Tensor(np.array([0.5, 2.0], dtype=np.float32))
        assert x.clamp(max_value=1.0).data.tolist() == [0.5, 1.0]
