"""Optimizer tests against hand-computed update steps."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, AdamW, Parameter, Tensor


def quadratic_step(param):
    """loss = 0.5 * ||p||^2 -> grad = p."""
    param.zero_grad()
    (Tensor(np.array(0.5, dtype=np.float32)) * (param * param).sum()).backward()


class TestSGD:
    def test_vanilla_step(self):
        p = Parameter(np.array([2.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        quadratic_step(p)
        opt.step()
        assert p.data[0] == pytest.approx(2.0 - 0.1 * 2.0)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.9)
        # step 1: v = g = 1 -> p = 1 - 0.1
        quadratic_step(p)
        opt.step()
        assert p.data[0] == pytest.approx(0.9)
        # step 2: g = 0.9, v = 0.9*1 + 0.9 = 1.8 -> p = 0.9 - 0.18
        quadratic_step(p)
        opt.step()
        assert p.data[0] == pytest.approx(0.72)

    def test_weight_decay_added_to_grad(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        quadratic_step(p)  # grad = 1, +wd -> 2
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 2.0)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        SGD([p], lr=0.1).step()  # no backward ran
        assert p.data[0] == 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = SGD([p], lr=0.3, momentum=0.5)
        for _ in range(50):
            quadratic_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-3


class TestAdam:
    def test_first_step_magnitude(self):
        # With bias correction, the first Adam step is ~lr regardless of grad scale.
        p = Parameter(np.array([10.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        quadratic_step(p)
        opt.step()
        assert p.data[0] == pytest.approx(10.0 - 0.01, abs=1e-5)

    def test_converges(self):
        p = Parameter(np.array([3.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            quadratic_step(p)
            opt.step()
        assert abs(p.data[0]) < 0.01

    def test_coupled_weight_decay_enters_moments(self):
        # Adam is invariant to rescaling the gradient, so a quadratic loss
        # (grad proportional to p) cannot expose coupled decay; a linear loss
        # (constant grad) makes the decay term change the update direction.
        def linear_step(param):
            param.zero_grad()
            param.sum().backward()

        p1 = Parameter(np.array([1.0], dtype=np.float32))
        p2 = Parameter(np.array([1.0], dtype=np.float32))
        coupled = Adam([p1], lr=0.01, weight_decay=5.0)
        plain = Adam([p2], lr=0.01)
        for _ in range(20):
            linear_step(p1)
            coupled.step()
            linear_step(p2)
            plain.step()
        assert p1.data[0] != p2.data[0]


class TestAdamW:
    def test_decoupled_decay_applied_after(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = AdamW([p], lr=0.1, weight_decay=0.1)
        quadratic_step(p)
        opt.step()
        # update = normalized grad (~1) + wd*param (0.1) -> 1 - 0.1*1.1
        assert p.data[0] == pytest.approx(1.0 - 0.1 * (1.0 + 0.1), abs=1e-4)
