"""Unit tests for the autograd Tensor: semantics, shapes, graph behavior."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, is_grad_enabled


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float32

    def test_from_int_array_casts_to_float32(self):
        t = Tensor(np.arange(4))
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_detach_shares_data_but_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_copy_is_deep(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 9.0
        assert t.data[0] == 1.0

    def test_item_scalar(self):
        assert Tensor([[2.5]]).item() == pytest.approx(2.5)

    def test_len_and_repr(self):
        t = Tensor(np.zeros((4, 2)), requires_grad=True)
        assert len(t) == 4
        assert "requires_grad=True" in repr(t)


class TestArithmetic:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones((3,)))
        assert (a + b).data.tolist() == [[2, 2, 2], [2, 2, 2]]

    def test_radd_scalar(self):
        t = 1.0 + Tensor([1.0])
        assert t.data[0] == 2.0

    def test_sub_and_rsub(self):
        a = Tensor([3.0])
        assert (a - 1.0).data[0] == 2.0
        assert (5.0 - a).data[0] == 2.0

    def test_mul_div(self):
        a = Tensor([6.0])
        assert (a * 2.0).data[0] == 12.0
        assert (a / 2.0).data[0] == pytest.approx(3.0)
        assert (12.0 / a).data[0] == pytest.approx(2.0)

    def test_neg(self):
        assert (-Tensor([2.0])).data[0] == -2.0

    def test_pow(self):
        assert Tensor([3.0]).pow(2).data[0] == pytest.approx(9.0)

    def test_matmul(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose((a @ b).data, b.data)


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + 1.0
        y.backward(np.array([1.0], dtype=np.float32))
        assert x.grad[0] == pytest.approx(3.0)

    def test_scalar_backward_no_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 2.0).sum().backward()
        assert np.allclose(x.grad, 2.0)

    def test_nonscalar_backward_without_grad_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (x * 2.0).backward()

    def test_grad_shape_mismatch_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 1.0
        with pytest.raises(ValueError, match="shape"):
            y.backward(np.ones(4, dtype=np.float32))

    def test_gradient_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        assert x.grad[0] == pytest.approx(5.0)

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # x used twice: gradients from both paths must sum.
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.sum().backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_broadcast_backward_unbroadcasts(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, 2.0)  # summed over broadcast rows

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y * 1.0
        y.sum().backward()
        assert x.grad[0] == pytest.approx(1.0)


class TestNoGrad:
    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            x = Tensor([1.0], requires_grad=True)
            y = x * 2.0
            assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestShapes:
    def test_reshape_and_backward(self):
        x = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        y = x.reshape(2, 3)
        y.sum().backward()
        assert x.grad.shape == (6,)

    def test_reshape_tuple_arg(self):
        x = Tensor(np.zeros(6))
        assert x.reshape((3, 2)).shape == (3, 2)

    def test_transpose_default_reverses(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)

    def test_transpose_axes_backward(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)).astype(np.float32), requires_grad=True)
        x.transpose(1, 0, 2).sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_T_property(self):
        x = Tensor(np.zeros((2, 5)))
        assert x.T.shape == (5, 2)

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.flatten(start_dim=1).shape == (2, 12)

    def test_getitem_backward_scatter(self):
        x = Tensor(np.arange(5, dtype=np.float32), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        assert x.grad.tolist() == [2.0, 0.0, 1.0, 0.0, 0.0]

    def test_concatenate_and_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2.0).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)))
        assert x.sum(axis=0).shape == (3,)
        assert x.sum(axis=0, keepdims=True).shape == (1, 3)

    def test_mean_value(self):
        assert Tensor(np.arange(4, dtype=np.float32)).mean().item() == pytest.approx(1.5)

    def test_mean_axis_tuple(self):
        x = Tensor(np.ones((2, 3, 4)))
        assert x.mean(axis=(1, 2)).shape == (2,)

    def test_var_matches_numpy(self):
        data = np.random.default_rng(0).normal(size=(4, 5)).astype(np.float32)
        assert Tensor(data).var().item() == pytest.approx(float(data.var()), rel=1e-5)

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([1.0, 1.0, 0.0], dtype=np.float32), requires_grad=True)
        x.max().backward()
        assert x.grad.tolist() == [0.5, 0.5, 0.0]

    def test_argmax(self):
        assert Tensor([0.0, 5.0, 2.0]).argmax() == 1


class TestActivationValues:
    def test_relu(self):
        assert Tensor([-1.0, 2.0]).relu().data.tolist() == [0.0, 2.0]

    def test_leaky_relu(self):
        out = Tensor([-2.0, 2.0]).leaky_relu(0.1)
        assert out.data.tolist() == pytest.approx([-0.2, 2.0])

    def test_sigmoid_midpoint(self):
        assert Tensor([0.0]).sigmoid().data[0] == pytest.approx(0.5)

    def test_tanh_range(self):
        out = Tensor([-10.0, 10.0]).tanh().data
        assert out[0] == pytest.approx(-1.0, abs=1e-4)
        assert out[1] == pytest.approx(1.0, abs=1e-4)

    def test_hard_sigmoid_saturation(self):
        out = Tensor([-4.0, 0.0, 4.0]).hard_sigmoid().data
        assert out.tolist() == pytest.approx([0.0, 0.5, 1.0])

    def test_hard_swish_values(self):
        out = Tensor([-4.0, 0.0, 4.0]).hard_swish().data
        assert out.tolist() == pytest.approx([0.0, 0.0, 4.0])

    def test_silu(self):
        assert Tensor([0.0]).silu().data[0] == pytest.approx(0.0)

    def test_softmax_sums_to_one(self):
        probs = Tensor(np.random.default_rng(0).normal(size=(4, 7)).astype(np.float32)).softmax()
        assert np.allclose(probs.data.sum(axis=-1), 1.0, atol=1e-5)

    def test_log_softmax_stable_with_large_logits(self):
        out = Tensor([[1000.0, 0.0]]).log_softmax().data
        assert np.isfinite(out).all()

    def test_clamp(self):
        out = Tensor([-2.0, 0.5, 2.0]).clamp(0.0, 1.0).data
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_abs_backward_sign(self):
        x = Tensor([-3.0, 4.0], requires_grad=True)
        x.abs().sum().backward()
        assert x.grad.tolist() == [-1.0, 1.0]
