"""Checkpoint save/load tests."""

import os

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, Linear, ReLU, Sequential
from repro.nn.serialization import load_module, load_state, save_module, save_state


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 4, 3, padding=1, rng=rng), BatchNorm2d(4), ReLU(),
    )


class TestStateIO:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        state = {"a": np.arange(3, dtype=np.float32), "b": np.ones((2, 2))}
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b"}
        assert np.array_equal(loaded["a"], state["a"])

    def test_save_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "ckpt.npz")
        save_state({"x": np.zeros(1)}, path)
        assert os.path.exists(path)


class TestModuleIO:
    def test_module_round_trip(self, tmp_path):
        path = str(tmp_path / "model.npz")
        a = make_model(seed=1)
        a[1]._update_buffer("running_mean", np.full(4, 3.0, dtype=np.float32))
        save_module(a, path)
        b = make_model(seed=2)
        load_module(b, path)
        assert np.array_equal(a[0].weight.data, b[0].weight.data)
        assert np.allclose(b[1].running_mean, 3.0)

    def test_load_returns_module(self, tmp_path):
        path = str(tmp_path / "model.npz")
        a = make_model()
        save_module(a, path)
        assert load_module(make_model(), path) is not None


class TestCheckpointErrors:
    def test_missing_file_raises_named_error(self, tmp_path):
        from repro.nn.serialization import CheckpointError

        path = str(tmp_path / "missing.npz")
        with pytest.raises(CheckpointError, match="missing.npz"):
            load_state(path)

    def test_truncated_archive_raises(self, tmp_path):
        from repro.nn.serialization import CheckpointError

        path = str(tmp_path / "ckpt.npz")
        save_state({"x": np.arange(200, dtype=np.float32)}, path)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="ckpt.npz"):
            load_state(path)

    def test_non_npz_junk_raises(self, tmp_path):
        from repro.nn.serialization import CheckpointError

        path = str(tmp_path / "junk.npz")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a zip archive")
        with pytest.raises(CheckpointError, match="junk.npz"):
            load_state(path)

    def test_load_module_wraps_bad_file(self, tmp_path):
        from repro.nn.serialization import CheckpointError

        path = str(tmp_path / "bad.npz")
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 16)
        with pytest.raises(CheckpointError):
            load_module(make_model(), path)


class TestAtomicWrites:
    def test_no_tmp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_state({"x": np.ones(4)}, path)
        assert sorted(os.listdir(tmp_path)) == ["ckpt.npz"]

    def test_overwrite_replaces_content(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_state({"x": np.zeros(4)}, path)
        save_state({"x": np.ones(4)}, path)
        assert np.array_equal(load_state(path)["x"], np.ones(4))

    def test_suffix_appended_like_np_savez(self, tmp_path):
        # np.savez appends .npz to suffix-less paths; save_state must match.
        path = str(tmp_path / "ckpt")
        save_state({"x": np.ones(2)}, path)
        assert os.path.exists(path + ".npz")
