"""Tests for the SAM optimizer wrapper (used by the FT-SAM baseline)."""

import numpy as np
import pytest

from repro.nn import SAM, SGD, Parameter, Tensor


def loss_backward(param):
    param.zero_grad()
    ((param * param) * 0.5).sum().backward()


class TestSAMSteps:
    def test_first_step_moves_up_gradient(self):
        p = Parameter(np.array([3.0, 4.0], dtype=np.float32))
        sam = SAM([p], SGD([p], lr=0.1), rho=0.5)
        loss_backward(p)  # grad = p = (3, 4), norm 5
        sam.first_step(zero_grad=False)
        # perturbation = rho * g / ||g|| = 0.5 * (0.6, 0.8)
        assert p.data[0] == pytest.approx(3.3)
        assert p.data[1] == pytest.approx(4.4)

    def test_second_step_restores_then_updates(self):
        p = Parameter(np.array([3.0, 4.0], dtype=np.float32))
        base = SGD([p], lr=0.1)
        sam = SAM([p], base, rho=0.5)
        loss_backward(p)
        sam.first_step()
        loss_backward(p)  # grad at perturbed point = (3.3, 4.4)
        sam.second_step()
        # restored to (3,4) then SGD step with perturbed grad
        assert p.data[0] == pytest.approx(3.0 - 0.1 * 3.3)
        assert p.data[1] == pytest.approx(4.0 - 0.1 * 4.4)

    def test_first_step_zeroes_grads_by_default(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        sam = SAM([p], SGD([p], lr=0.1), rho=0.1)
        loss_backward(p)
        sam.first_step()
        # Zeroed in place so the second backward reuses the hot buffer.
        assert p.grad is not None and not p.grad.any()

    def test_step_closure_api(self):
        p = Parameter(np.array([2.0], dtype=np.float32))
        sam = SAM([p], SGD([p], lr=0.1), rho=0.05)
        loss_backward(p)
        sam.step(lambda: loss_backward(p))
        assert p.data[0] < 2.0

    def test_zero_rho_equals_base_sgd(self):
        p1 = Parameter(np.array([2.0], dtype=np.float32))
        p2 = Parameter(np.array([2.0], dtype=np.float32))
        sam = SAM([p1], SGD([p1], lr=0.1), rho=0.0)
        sgd = SGD([p2], lr=0.1)
        loss_backward(p1)
        sam.first_step()
        loss_backward(p1)
        sam.second_step()
        loss_backward(p2)
        sgd.step()
        assert p1.data[0] == pytest.approx(p2.data[0])

    def test_negative_rho_raises(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SAM([p], SGD([p], lr=0.1), rho=-0.1)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        sam = SAM([p], SGD([p], lr=0.2), rho=0.05)
        for _ in range(60):
            loss_backward(p)
            sam.first_step()
            loss_backward(p)
            sam.second_step()
        assert abs(p.data[0]) < 0.01

    def test_adaptive_scales_by_weight(self):
        p = Parameter(np.array([2.0], dtype=np.float32))
        sam = SAM([p], SGD([p], lr=0.1), rho=0.5, adaptive=True)
        loss_backward(p)
        sam.first_step(zero_grad=False)
        # adaptive: e = rho * w^2 * g / ||w*g|| = 0.5 * 4 * 2 / 4 = 1.0
        assert p.data[0] == pytest.approx(3.0)
