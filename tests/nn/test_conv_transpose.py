"""conv_transpose2d tests: shapes, values, gradients."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

RNG = np.random.default_rng(7)


def numgrad(f, x, eps=1e-5):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


class TestShapes:
    @pytest.mark.parametrize(
        "h,stride,padding,kernel,expected",
        [(4, 1, 0, 3, 6), (4, 2, 1, 3, 7), (4, 2, 0, 3, 9), (3, 1, 1, 3, 3)],
    )
    def test_output_size_formula(self, h, stride, padding, kernel, expected):
        x = Tensor(np.zeros((1, 2, h, h), dtype=np.float32))
        w = Tensor(np.zeros((2, 3, kernel, kernel), dtype=np.float32))
        out = F.conv_transpose2d(x, w, None, stride, padding)
        assert out.shape == (1, 3, expected, expected)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 2, 4, 4)))
        w = Tensor(np.zeros((3, 3, 3, 3)))
        with pytest.raises(ValueError, match="mismatch"):
            F.conv_transpose2d(x, w, None)

    def test_degenerate_output_raises(self):
        x = Tensor(np.zeros((1, 1, 1, 1)))
        w = Tensor(np.zeros((1, 1, 1, 1)))
        with pytest.raises(ValueError, match="non-positive"):
            F.conv_transpose2d(x, w, None, stride=1, padding=2)


class TestValues:
    def test_single_pixel_stamps_kernel(self):
        # A 1x1 input with value v produces v * kernel.
        x = Tensor(np.array([[[[2.0]]]], dtype=np.float32))
        kernel = RNG.normal(size=(1, 1, 3, 3)).astype(np.float32)
        out = F.conv_transpose2d(x, Tensor(kernel), None)
        assert np.allclose(out.data[0, 0], 2.0 * kernel[0, 0], atol=1e-6)

    def test_stride_spreads_contributions(self):
        x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32))
        w = Tensor(np.ones((1, 1, 1, 1), dtype=np.float32))
        out = F.conv_transpose2d(x, w, None, stride=2)
        # 1x1 kernel, stride 2: inputs land on a dilated grid.
        assert out.shape == (1, 1, 3, 3)
        assert out.data[0, 0].sum() == pytest.approx(4.0)
        assert out.data[0, 0, 0, 1] == 0.0

    def test_bias_added(self):
        x = Tensor(np.zeros((1, 1, 2, 2), dtype=np.float32))
        w = Tensor(np.zeros((1, 2, 3, 3), dtype=np.float32))
        b = Tensor(np.array([1.5, -0.5], dtype=np.float32))
        out = F.conv_transpose2d(x, w, b)
        assert np.allclose(out.data[0, 0], 1.5)
        assert np.allclose(out.data[0, 1], -0.5)


class TestGradients:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (2, 0)])
    def test_gradcheck(self, stride, padding):
        x = Tensor(RNG.normal(size=(2, 3, 4, 4)), requires_grad=True)
        w = Tensor(RNG.normal(size=(3, 4, 3, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        out = F.conv_transpose2d(x, w, b, stride, padding)
        (out * out).sum().backward()

        def f():
            o = F.conv_transpose2d(Tensor(x.data), Tensor(w.data), Tensor(b.data), stride, padding)
            return float((o.data ** 2).sum())

        assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-4
        assert np.abs(numgrad(f, w.data) - w.grad).max() < 1e-4
        assert np.abs(numgrad(f, b.data) - b.grad).max() < 1e-4

    def test_adjoint_of_conv_unit_stride(self):
        # <conv(x), y> == <x, conv_transpose(y)> for stride 1 (exact adjoint).
        x = Tensor(RNG.normal(size=(1, 2, 6, 6)))
        w = RNG.normal(size=(3, 2, 3, 3))  # conv layout (C_out, C_in, k, k)
        y_shape_probe = F.conv2d(x, Tensor(w), None, 1, 1)
        y = Tensor(RNG.normal(size=y_shape_probe.shape))
        lhs = float((y_shape_probe.data * y.data).sum())
        # Transposed layout: (C_in_of_transpose = C_out_of_conv, C_out = C_in).
        xt = F.conv_transpose2d(y, Tensor(w), None, 1, 1)
        rhs = float((x.data * xt.data).sum())
        assert lhs == pytest.approx(rhs, rel=1e-4)
