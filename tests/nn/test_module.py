"""Tests for the Module system: registration, traversal, state dicts, hooks."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Linear,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Tensor,
)
from repro.nn.module import replace_module


class Branchy(Module):
    def __init__(self):
        super().__init__()
        self.conv = Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0))
        self.bn = BatchNorm2d(4)
        self.head = Sequential(Linear(4, 4), ReLU(), Linear(4, 2))

    def forward(self, x):
        out = self.bn(self.conv(x)).relu()
        return self.head(out.mean(axis=(2, 3)))


class TestRegistration:
    def test_parameters_found_recursively(self):
        model = Branchy()
        names = [n for n, _ in model.named_parameters()]
        assert "conv.weight" in names
        assert "bn.weight" in names
        assert "head.0.weight" in names
        assert "head.2.bias" in names

    def test_named_modules_paths(self):
        model = Branchy()
        paths = dict(model.named_modules())
        assert "" in paths  # root
        assert "conv" in paths
        assert "head.1" in paths

    def test_buffers_registered(self):
        model = Branchy()
        buffer_names = [n for n, _ in model.named_buffers()]
        assert "bn.running_mean" in buffer_names
        assert "bn.running_var" in buffer_names

    def test_num_parameters_counts_scalars(self):
        linear = Linear(3, 2)
        assert linear.num_parameters() == 3 * 2 + 2

    def test_update_buffer_unknown_name_raises(self):
        bn = BatchNorm2d(2)
        with pytest.raises(KeyError):
            bn._update_buffer("nope", np.zeros(2))


class TestTrainEval:
    def test_mode_propagates(self):
        model = Branchy()
        model.eval()
        assert not model.bn.training
        assert not model.head.training
        model.train()
        assert model.bn.training

    def test_zero_grad_clears_all(self):
        model = Branchy()
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4, 4)).astype(np.float32))
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_round_trip(self):
        a = Branchy()
        b = Branchy()
        for p in a.parameters():
            p.data += 1.0
        b.load_state_dict(a.state_dict())
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_state_dict_copies(self):
        model = Branchy()
        state = model.state_dict()
        state["conv.weight"][...] = 99.0
        assert not np.allclose(model.conv.weight.data, 99.0)

    def test_buffers_round_trip(self):
        a = Branchy()
        a.bn._update_buffer("running_mean", np.full(4, 7.0, dtype=np.float32))
        b = Branchy()
        b.load_state_dict(a.state_dict())
        assert np.allclose(b.bn.running_mean, 7.0)

    def test_strict_missing_raises(self):
        model = Branchy()
        state = model.state_dict()
        del state["conv.weight"]
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict(state)

    def test_strict_unexpected_raises(self):
        model = Branchy()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(state)

    def test_non_strict_tolerates(self):
        model = Branchy()
        state = model.state_dict()
        del state["conv.weight"]
        state["bogus"] = np.zeros(1)
        model.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        model = Branchy()
        state = model.state_dict()
        state["conv.weight"] = np.zeros((1, 1, 1, 1), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)


class TestHooks:
    def test_forward_hook_fires(self):
        model = Branchy()
        captured = []
        handle = model.conv.register_forward_hook(lambda m, out: captured.append(out))
        model(Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32)))
        assert len(captured) == 1
        assert captured[0].shape == (1, 4, 4, 4)

    def test_hook_removal(self):
        model = Branchy()
        captured = []
        handle = model.conv.register_forward_hook(lambda m, out: captured.append(out))
        handle.remove()
        model(Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32)))
        assert not captured

    def test_hook_output_is_graph_connected(self):
        model = Branchy()
        captured = []
        model.conv.register_forward_hook(lambda m, out: captured.append(out))
        model(Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32)))
        loss = (captured[0] * captured[0]).sum()
        loss.backward()
        assert model.conv.weight.grad is not None


class TestReplaceModule:
    def test_replace_and_restore(self):
        model = Branchy()
        original = model.conv
        stub = Conv2d(3, 4, 3, padding=1)
        old = replace_module(model, "conv", stub)
        assert old is original
        assert model.conv is stub
        replace_module(model, "conv", original)
        assert model.conv is original

    def test_replace_nested(self):
        model = Branchy()
        new_linear = Linear(4, 4)
        replace_module(model, "head.0", new_linear)
        assert model.head[0] is new_linear

    def test_replace_bad_path_raises(self):
        with pytest.raises(KeyError):
            replace_module(Branchy(), "nonexistent.conv", Linear(1, 1))


class TestContainers:
    def test_sequential_iteration_and_index(self):
        seq = Sequential(Linear(2, 3), ReLU(), Linear(3, 1))
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
        assert len(list(iter(seq))) == 3

    def test_sequential_forward_chains(self):
        seq = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), ReLU())
        out = seq(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert out.shape == (1, 2)
        assert (out.data >= 0).all()

    def test_module_list_append_and_params(self):
        ml = ModuleList([Linear(2, 2)])
        ml.append(Linear(2, 2))
        assert len(ml) == 2
        assert len(list(ml[1].parameters())) == 2
