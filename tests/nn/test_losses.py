"""Loss-function value tests (gradients are covered in test_gradcheck)."""

import numpy as np
import pytest

from repro.nn import Tensor, cross_entropy, kl_div_loss, mse_loss, nll_loss, soft_cross_entropy


class TestCrossEntropy:
    def test_uniform_logits(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32))
        loss = cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4), rel=1e-5)

    def test_confident_correct_is_small(self):
        logits = Tensor(np.array([[10.0, 0.0, 0.0]], dtype=np.float32))
        assert cross_entropy(logits, np.array([0])).item() < 1e-3

    def test_confident_wrong_is_large(self):
        logits = Tensor(np.array([[10.0, 0.0, 0.0]], dtype=np.float32))
        assert cross_entropy(logits, np.array([1])).item() > 5.0

    def test_sum_vs_mean(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 3)).astype(np.float32))
        labels = np.array([0, 1, 2, 0])
        total = cross_entropy(logits, labels, reduction="sum").item()
        mean = cross_entropy(logits, labels, reduction="mean").item()
        assert total == pytest.approx(mean * 4, rel=1e-5)

    def test_none_reduction_shape(self):
        logits = Tensor(np.zeros((5, 3), dtype=np.float32))
        loss = cross_entropy(logits, np.zeros(5, dtype=int), reduction="none")
        assert loss.shape == (5,)

    def test_tensor_labels_accepted(self):
        logits = Tensor(np.zeros((2, 3), dtype=np.float32))
        labels = Tensor(np.array([0.0, 1.0]))
        assert cross_entropy(logits, labels).item() == pytest.approx(np.log(3), rel=1e-5)

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((1, 2))), np.array([0]), reduction="bogus")


class TestOtherLosses:
    def test_nll_picks_label_entries(self):
        log_probs = Tensor(np.log(np.array([[0.7, 0.3]], dtype=np.float32)))
        assert nll_loss(log_probs, np.array([0])).item() == pytest.approx(-np.log(0.7), rel=1e-5)

    def test_mse_known_value(self):
        pred = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_mse_sum(self):
        pred = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        assert mse_loss(pred, np.array([0.0, 0.0]), reduction="sum").item() == pytest.approx(5.0)

    def test_soft_ce_matches_hard_ce_on_onehot(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(3, 4)).astype(np.float32))
        labels = np.array([1, 0, 3])
        onehot = np.eye(4, dtype=np.float32)[labels]
        assert soft_cross_entropy(logits, onehot).item() == pytest.approx(
            cross_entropy(logits, labels).item(), rel=1e-5
        )

    def test_kl_zero_when_matching(self):
        probs = np.array([[0.2, 0.8]], dtype=np.float32)
        student = Tensor(np.log(probs))
        assert kl_div_loss(student, probs).item() == pytest.approx(0.0, abs=1e-5)

    def test_kl_positive_when_different(self):
        student = Tensor(np.log(np.array([[0.5, 0.5]], dtype=np.float32)))
        teacher = np.array([[0.9, 0.1]], dtype=np.float32)
        assert kl_div_loss(student, teacher).item() > 0.0
