"""Weight-initializer tests."""

import numpy as np
import pytest

from repro.nn import init


class TestKaiming:
    def test_normal_std_matches_fan_in(self):
        rng = np.random.default_rng(0)
        shape = (256, 64, 3, 3)  # fan_in = 64*9 = 576
        weights = init.kaiming_normal(shape, rng)
        expected_std = np.sqrt(2.0) / np.sqrt(576)
        assert weights.std() == pytest.approx(expected_std, rel=0.05)
        assert weights.dtype == np.float32

    def test_uniform_bound(self):
        rng = np.random.default_rng(1)
        shape = (64, 32, 3, 3)
        weights = init.kaiming_uniform(shape, rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / (32 * 9))
        assert np.abs(weights).max() <= bound + 1e-7

    def test_linear_fan_in(self):
        rng = np.random.default_rng(2)
        weights = init.kaiming_normal((128, 64), rng)  # (out, in): fan_in=64
        expected_std = np.sqrt(2.0) / np.sqrt(64)
        assert weights.std() == pytest.approx(expected_std, rel=0.1)

    def test_deterministic_per_rng(self):
        a = init.kaiming_normal((8, 4, 3, 3), np.random.default_rng(7))
        b = init.kaiming_normal((8, 4, 3, 3), np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestXavier:
    def test_bound_uses_both_fans(self):
        rng = np.random.default_rng(3)
        weights = init.xavier_uniform((100, 50), rng)  # fan_in 50, fan_out 100
        bound = np.sqrt(6.0 / 150)
        assert np.abs(weights).max() <= bound + 1e-7
        assert weights.std() > 0


class TestConstants:
    def test_zeros_and_ones(self):
        assert np.all(init.zeros((3, 3)) == 0.0)
        assert np.all(init.ones((2,)) == 1.0)
        assert init.zeros((1,)).dtype == np.float32
