"""Tests for the compile-for-inference pass (conv–BN folding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.preact_resnet import PreActResNet18
from repro.models.pruning_utils import FilterRef, PruningMask
from repro.models.vgg import vgg19_bn
from repro.nn import (
    BatchNorm2d,
    CompiledInference,
    Conv2d,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tensor,
    compile_for_inference,
    no_grad,
)
from repro.nn.inference import fold_conv_bn_arrays, trace_conv_bn_pairs


class ConvBNNet(Module):
    """conv→BN→relu twice, second conv grouped; every pair is foldable."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2d(3, 8, 3, padding=1, rng=rng)
        self.bn1 = BatchNorm2d(8)
        self.conv2 = Conv2d(8, 8, 3, padding=1, groups=2, rng=rng)
        self.bn2 = BatchNorm2d(8)
        self.relu = ReLU()
        self.fc = Linear(8 * 8 * 8, 5, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = self.relu(self.bn1(self.conv1(x)))
        h = self.relu(self.bn2(self.conv2(h)))
        return self.fc(h.reshape(h.shape[0], -1))


def _randomize_bn(model: Module, seed: int = 7) -> None:
    """Give BN layers non-trivial statistics so folding actually does work."""
    rng = np.random.default_rng(seed)
    for _, module in model.named_modules():
        if isinstance(module, BatchNorm2d):
            c = module.num_features
            module.running_mean[:] = rng.standard_normal(c).astype(np.float32)
            module.running_var[:] = (0.5 + rng.uniform(0.1, 2.0, c)).astype(np.float32)
            module.weight.data[:] = rng.standard_normal(c).astype(np.float32)
            module.bias.data[:] = rng.standard_normal(c).astype(np.float32)


@pytest.fixture()
def net():
    model = ConvBNNet()
    _randomize_bn(model)
    model.eval()
    return model


@pytest.fixture()
def batch():
    rng = np.random.default_rng(3)
    return rng.standard_normal((4, 3, 8, 8)).astype(np.float32)


def _reference(model, x):
    with no_grad():
        return model(Tensor(x)).data


class TestFoldArrays:
    def test_folded_arrays_match_bn_affine(self, net):
        weight, bias = fold_conv_bn_arrays(net.conv1, net.bn1)
        scale = net.bn1.weight.data / np.sqrt(net.bn1.running_var + net.bn1.eps)
        expected_w = net.conv1.weight.data * scale.reshape(-1, 1, 1, 1)
        expected_b = net.bn1.bias.data - net.bn1.running_mean * scale
        expected_b = expected_b + scale * net.conv1.bias.data
        np.testing.assert_allclose(weight, expected_w, rtol=1e-6)
        np.testing.assert_allclose(bias, expected_b, rtol=1e-5, atol=1e-6)
        assert weight.dtype == np.float32
        assert bias.dtype == np.float32


class TestTracing:
    def test_finds_all_pairs_in_conv_bn_net(self, net, batch):
        pairs = trace_conv_bn_pairs(net, Tensor(batch[:1]))
        assert [(id(c), id(b)) for c, b in pairs] == [
            (id(net.conv1), id(net.bn1)),
            (id(net.conv2), id(net.bn2)),
        ]

    def test_preact_resnet_folds_cross_block_pairs(self):
        # Pre-activation blocks run BN before conv, so no conv feeds "its own"
        # BN — but each block's conv1 output is consumed solely by bn2
        # (out = conv2(bn2(conv1(out)).relu())), which the tracer folds.
        model = PreActResNet18(num_classes=3, base_width=4)
        model.eval()
        x = np.zeros((1, 3, 32, 32), dtype=np.float32)
        pairs = trace_conv_bn_pairs(model, Tensor(x))
        assert len(pairs) == len(model.blocks)
        for conv, bn in pairs:
            assert conv.bias is None  # preact convs are bias-free
            assert bn.num_features == conv.out_channels

    def test_preact_resnet_compiled_matches_reference(self):
        model = PreActResNet18(num_classes=3, base_width=4)
        _randomize_bn(model)
        model.eval()
        rng = np.random.default_rng(5)
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        reference = _reference(model, x)
        compiled = compile_for_inference(model, Tensor(x[:1]))
        assert compiled.num_folded == len(model.blocks)
        np.testing.assert_allclose(
            compiled(Tensor(x)).data, reference, rtol=1e-4, atol=1e-5
        )

    def test_vgg19_bn_folds_every_conv(self):
        model = vgg19_bn(num_classes=3, width_mult=0.125)
        model.eval()
        x = np.zeros((1, 3, 32, 32), dtype=np.float32)
        pairs = trace_conv_bn_pairs(model, Tensor(x))
        num_convs = sum(
            1 for _, m in model.named_modules() if isinstance(m, Conv2d)
        )
        assert len(pairs) == num_convs

    def test_trace_restores_forward_methods(self, net, batch):
        trace_conv_bn_pairs(net, Tensor(batch[:1]))
        assert "forward" not in net.conv1.__dict__
        assert "forward" not in net.__dict__


class TestCompiledInference:
    def test_matches_reference_output(self, net, batch):
        reference = _reference(net, batch)
        compiled = compile_for_inference(net, Tensor(batch[:1]))
        assert compiled.num_folded == 2
        out = compiled(Tensor(batch)).data
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_model_parameters_untouched_after_call(self, net, batch):
        weight_before = net.conv1.weight.data.copy()
        bias_obj = net.conv1.bias
        compiled = compile_for_inference(net, Tensor(batch[:1]))
        compiled(Tensor(batch))
        np.testing.assert_array_equal(net.conv1.weight.data, weight_before)
        assert net.conv1.bias is bias_obj
        assert not net.bn1._folded_passthrough
        # plain forward still applies the (un-folded) BN
        np.testing.assert_array_equal(_reference(net, batch), _reference(net, batch))

    def test_swap_out_runs_on_error(self, net, batch):
        compiled = compile_for_inference(net, Tensor(batch[:1]))
        compiled(Tensor(batch))  # populate the fold cache
        with pytest.raises(Exception):
            compiled(Tensor(batch[:, :, :1, :1]))  # spatial size too small
        assert net.conv1.bias.requires_grad  # Parameter restored, not the fold Tensor
        assert not net.bn1._folded_passthrough

    def test_env_var_forces_reference_path(self, net, batch, monkeypatch):
        compiled = compile_for_inference(net, Tensor(batch[:1]))
        monkeypatch.setenv("REPRO_DISABLE_FAST_PATH", "1")
        out = compiled(Tensor(batch)).data
        np.testing.assert_array_equal(out, _reference(net, batch))

    def test_train_mode_is_rejected(self, net, batch):
        compiled = compile_for_inference(net, Tensor(batch[:1]))
        with pytest.raises(RuntimeError):
            compiled.train()
        assert compiled.eval() is compiled

    def test_module_convenience_method(self, net, batch):
        compiled = net.compile_for_inference(Tensor(batch[:1]))
        assert isinstance(compiled, CompiledInference)
        assert compiled.num_folded == 2

    def test_accepts_raw_arrays(self, net, batch):
        compiled = compile_for_inference(net, batch[:1])
        out = compiled(batch)
        np.testing.assert_allclose(out.data, _reference(net, batch), rtol=1e-4, atol=1e-5)


class TestInvalidation:
    def test_prune_unprune_roundtrip_invalidate(self, net, batch):
        compiled = compile_for_inference(net, Tensor(batch[:1]))
        baseline = compiled(Tensor(batch)).data

        mask = PruningMask(net)
        target = FilterRef("conv1", 2)
        saved = mask.prune(target)
        pruned_out = compiled(Tensor(batch)).data
        np.testing.assert_allclose(
            pruned_out, _reference(net, batch), rtol=1e-4, atol=1e-5
        )
        assert not np.allclose(pruned_out, baseline)

        mask.unprune(target, saved)
        restored_out = compiled(Tensor(batch)).data
        np.testing.assert_allclose(restored_out, baseline, rtol=1e-5, atol=1e-6)

    def test_mask_apply_invalidates(self, net, batch):
        compiled = compile_for_inference(net, Tensor(batch[:1]))
        compiled(Tensor(batch))
        assert compiled._folded is not None
        mask = PruningMask(net)
        mask.prune(FilterRef("conv2", 1))
        assert compiled._folded is None  # dropped before the mutation landed
        mask.apply()
        assert compiled._folded is None

    def test_direct_mutation_needs_manual_invalidate(self, net, batch):
        # Documented contract: out-of-band weight edits require invalidate().
        compiled = compile_for_inference(net, Tensor(batch[:1]))
        compiled(Tensor(batch))
        net.conv1.weight.data *= 2.0
        compiled.invalidate()
        out = compiled(Tensor(batch)).data
        np.testing.assert_allclose(out, _reference(net, batch), rtol=1e-4, atol=1e-5)


class TestSequentialModels:
    def test_sequential_conv_bn_folds(self, batch):
        rng = np.random.default_rng(11)
        model = Sequential(
            Conv2d(3, 6, 3, padding=1, rng=rng),
            BatchNorm2d(6),
            ReLU(),
        )
        _randomize_bn(model)
        model.eval()
        reference = _reference(model, batch)
        compiled = compile_for_inference(model, Tensor(batch[:1]))
        assert compiled.num_folded == 1
        np.testing.assert_allclose(
            compiled(Tensor(batch)).data, reference, rtol=1e-4, atol=1e-5
        )
