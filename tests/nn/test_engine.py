"""Tests for the tiled GEMM execution engine (repro.nn.engine).

Covers the tiler, the static memory planner, both pool backends (the
2-worker smoke tests double as the CI guarantee that a tiled dispatch
completes quickly), epilogue fusion plumbing, and the fork hygiene hook.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Linear,
    Module,
    ReLU,
    Tensor,
    compile_for_inference,
    no_grad,
)
from repro.nn import functional as F
from repro.nn.engine import (
    BACKEND_ENV,
    TILE_ENV,
    WORKERS_ENV,
    PlannedArena,
    SlabRequest,
    ThreadTilePool,
    engine,
    fork_available,
    plan_slabs,
    reset_engine,
    resolve_backend,
    resolve_workers,
    tile_grid,
)
from repro.nn.engine import gemm as gemm_mod
from repro.nn.engine.tiler import choose_tile_shape

RNG = np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _engine_env(monkeypatch):
    """Isolate engine env knobs and always tear the pool down after a test."""
    for env in (WORKERS_ENV, BACKEND_ENV, TILE_ENV):
        monkeypatch.delenv(env, raising=False)
    yield monkeypatch
    reset_engine()


def _force_tiling(monkeypatch, workers="2", backend="thread", tile="64"):
    monkeypatch.setenv(WORKERS_ENV, workers)
    monkeypatch.setenv(BACKEND_ENV, backend)
    monkeypatch.setenv(TILE_ENV, tile)
    monkeypatch.setattr(gemm_mod, "MIN_PARALLEL_FLOPS", 0)


# ---------------------------------------------------------------------------
# Tiler
# ---------------------------------------------------------------------------
class TestTiler:
    def test_grid_partitions_output_exactly(self):
        tiles = tile_grid(100, 70, 32, 40)
        covered = np.zeros((100, 70), dtype=int)
        for m0, m1, n0, n1 in tiles:
            covered[m0:m1, n0:n1] += 1
        assert (covered == 1).all()

    def test_env_override_forces_shape(self, monkeypatch):
        monkeypatch.setenv(TILE_ENV, "32x16")
        assert choose_tile_shape(1000, 64, 128, 4, workers=4) == (32, 16)
        monkeypatch.setenv(TILE_ENV, "48")
        assert choose_tile_shape(1000, 64, 128, 4, workers=4) == (48, 64)

    def test_env_override_clamped_to_matrix(self, monkeypatch):
        monkeypatch.setenv(TILE_ENV, "4096x4096")
        assert choose_tile_shape(100, 30, 128, 4, workers=4) == (100, 30)

    def test_bad_override_raises(self, monkeypatch):
        monkeypatch.setenv(TILE_ENV, "banana")
        with pytest.raises(ValueError):
            choose_tile_shape(100, 30, 128, 4, workers=2)

    def test_heuristic_exposes_enough_tiles_for_workers(self):
        tile_m, tile_n = choose_tile_shape(65536, 64, 576, 4, workers=4)
        tiles = tile_grid(65536, 64, tile_m, tile_n)
        assert len(tiles) >= 8  # at least ~2 per worker


# ---------------------------------------------------------------------------
# Memory planner
# ---------------------------------------------------------------------------
class TestPlanner:
    def test_disjoint_tags_share_a_slab(self):
        plan = plan_slabs(
            [
                SlabRequest("pad", 1000, start=0, end=2),
                SlabRequest("wmat", 400, start=3, end=5),
                SlabRequest("cols", 2000, start=1, end=5),
            ]
        )
        # pad and wmat never live at once -> same slab; cols overlaps both.
        assert plan.assignment["pad"] == plan.assignment["wmat"]
        assert plan.assignment["cols"] != plan.assignment["pad"]
        assert plan.total_bytes == 2000 + 1000
        assert plan.shared_bytes_saved == 400

    def test_overlapping_tags_get_distinct_slabs(self):
        plan = plan_slabs(
            [
                SlabRequest("a", 100, start=0, end=3),
                SlabRequest("b", 100, start=1, end=2),
            ]
        )
        assert plan.assignment["a"] != plan.assignment["b"]

    def test_arena_record_then_planned_views(self):
        arena = PlannedArena()
        arena.begin("sig")
        first = arena.get("pad", (8, 8), np.float32)
        arena.release("pad")
        arena.get("wmat", (4, 4), np.float32)
        arena.release("wmat")
        arena.end()
        plan = arena.plan_for("sig")
        assert plan is not None
        assert plan.assignment["pad"] == plan.assignment["wmat"]

        arena.begin("sig")
        planned = arena.get("pad", (8, 8), np.float32)
        planned_w = arena.get("wmat", (4, 4), np.float32)
        arena.end()
        assert planned.shape == (8, 8)
        # Shared slab: both views alias the same backing bytes.
        assert np.shares_memory(planned, planned_w)
        assert not np.shares_memory(planned, first)  # record pass used fallback

    def test_arena_falls_back_for_unplanned_requests(self):
        arena = PlannedArena()
        arena.begin("sig")
        arena.get("pad", (4,), np.float32)
        arena.end()
        arena.begin("sig")
        bigger = arena.get("pad", (1024,), np.float32)  # larger than planned
        unknown = arena.get("other", (4,), np.float32)  # tag not in plan
        arena.end()
        assert bigger.shape == (1024,)
        assert unknown.shape == (4,)

    def test_clear_drops_plans(self):
        arena = PlannedArena()
        arena.begin("sig")
        arena.get("pad", (4,), np.float32)
        arena.end()
        arena.clear()
        assert arena.plan_for("sig") is None
        assert arena.nbytes == 0


# ---------------------------------------------------------------------------
# Pools + engine dispatch (smoke: a 2-worker tiled GEMM completes fast)
# ---------------------------------------------------------------------------
def _gemm_case(m=512, k=96, n=80, seed=1):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    bias = rng.standard_normal(n).astype(np.float32)
    return a, b, bias


class TestEngineExecute:
    def test_inline_epilogue_matches_numpy(self):
        a, b, bias = _gemm_case()
        expected = np.maximum(a @ b + bias, 0.0)
        got = engine().execute(a, b, bias=bias, activation="relu")
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-5)

    def test_unsupported_activation_raises(self):
        a, b, _ = _gemm_case(m=8, k=4, n=4)
        with pytest.raises(ValueError):
            engine().execute(a, b, activation="gelu")

    def test_two_worker_thread_smoke(self, monkeypatch):
        _force_tiling(monkeypatch, backend="thread")
        a, b, bias = _gemm_case()
        expected = np.maximum(a @ b + bias, 0.0)
        got = engine().execute(a, b, bias=bias, activation="relu")
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-5)
        assert engine().last["backend"] == "thread"
        assert engine().last["workers"] == 2
        assert engine().last["tiles"] > 1

    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    def test_two_worker_process_smoke(self, monkeypatch):
        _force_tiling(monkeypatch, backend="process")
        a, b, bias = _gemm_case()
        expected = np.maximum(a @ b + bias, 0.0)
        got = engine().execute(a, b, bias=bias, activation="relu")
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-5)
        assert engine().last["backend"] == "process"
        # Pool persists and serves a second, differently-shaped call.
        a2, b2, bias2 = _gemm_case(m=300, k=64, n=32, seed=9)
        got2 = engine().execute(a2, b2, bias=bias2)
        np.testing.assert_allclose(got2, a2 @ b2 + bias2, rtol=1e-4, atol=1e-5)

    def test_thread_pool_propagates_worker_errors(self):
        pool = ThreadTilePool(2)
        try:
            with pytest.raises(RuntimeError, match="tile worker failed"):
                pool.run(lambda: 1 / 0, [()])
        finally:
            pool.shutdown()

    def test_workers_env_resolution(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3
        monkeypatch.setenv(WORKERS_ENV, "not-a-number")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_backend_env_resolution(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert resolve_backend() == "thread"
        monkeypatch.setenv(BACKEND_ENV, "nonsense")
        with pytest.raises(ValueError):
            resolve_backend()


# ---------------------------------------------------------------------------
# conv2d fused-activation plumbing
# ---------------------------------------------------------------------------
class _FusedNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv = Conv2d(3, 8, 3, padding=1, rng=rng)
        self.bn = BatchNorm2d(8)
        self.relu = ReLU()
        self.fc = Linear(8 * 8 * 8, 4, rng=rng)
        self.bn.running_mean[:] = rng.standard_normal(8).astype(np.float32)
        self.bn.running_var[:] = (0.5 + rng.uniform(0.1, 2.0, 8)).astype(np.float32)
        self.bn.weight.data[:] = rng.standard_normal(8).astype(np.float32)
        self.bn.bias.data[:] = rng.standard_normal(8).astype(np.float32)

    def forward(self, x):
        h = self.relu(self.bn(self.conv(x)))
        return self.fc(h.reshape(h.shape[0], -1))


class _SharedReluNet(Module):
    """One ReLU instance used twice: folding must NOT fuse it."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(3)
        self.conv1 = Conv2d(3, 4, 3, padding=1, rng=rng)
        self.bn1 = BatchNorm2d(4)
        self.conv2 = Conv2d(4, 4, 3, padding=1, rng=rng)
        self.bn2 = BatchNorm2d(4)
        self.relu = ReLU()
        self.fc = Linear(4 * 6 * 6, 2, rng=rng)

    def forward(self, x):
        h = self.relu(self.bn1(self.conv1(x)))
        h = self.relu(self.bn2(self.conv2(h)))
        return self.fc(h.reshape(h.shape[0], -1))


class TestFusedActivation:
    def test_activation_on_grad_call_raises(self):
        x = Tensor(RNG.standard_normal((1, 3, 6, 6)).astype(np.float32), requires_grad=True)
        w = Tensor(RNG.standard_normal((4, 3, 3, 3)).astype(np.float32), requires_grad=True)
        with pytest.raises(ValueError, match="inference-only"):
            F.conv2d(x, w, activation="relu")

    def test_fused_conv_matches_separate_relu(self):
        x = Tensor(RNG.standard_normal((2, 3, 6, 6)).astype(np.float32))
        w = Tensor(RNG.standard_normal((4, 3, 3, 3)).astype(np.float32))
        b = Tensor(RNG.standard_normal(4).astype(np.float32))
        with no_grad():
            fused = F.conv2d(x, w, b, padding=1, activation="relu").data
            separate = F.conv2d(x, w, b, padding=1).relu().data
        np.testing.assert_allclose(fused, separate, rtol=1e-5, atol=1e-6)

    def test_compiled_model_fuses_relu_and_restores_state(self):
        model = _FusedNet()
        model.eval()
        x = RNG.standard_normal((4, 3, 8, 8)).astype(np.float32)
        with F.use_arena(F.workspace()):
            pass  # no-op sanity: context manager importable/usable
        compiled = compile_for_inference(model, Tensor(x[:1]))
        assert compiled.num_folded == 1
        assert compiled.num_fused_activations == 1

        previous = os.environ.get(F.FAST_PATH_ENV)
        os.environ[F.FAST_PATH_ENV] = "1"
        try:
            with no_grad():
                reference = model(Tensor(x)).data
        finally:
            if previous is None:
                os.environ.pop(F.FAST_PATH_ENV, None)
            else:
                os.environ[F.FAST_PATH_ENV] = previous

        out = compiled(Tensor(x)).data
        np.testing.assert_allclose(out, reference, rtol=1e-3, atol=1e-4)
        # Fusion flags are swap-scoped: everything restored after the call.
        assert model.conv._fused_activation is None
        assert model.relu._folded_passthrough is False
        assert model.bn._folded_passthrough is False

    def test_shared_relu_is_not_fused(self):
        model = _SharedReluNet()
        model.eval()
        x = RNG.standard_normal((2, 3, 6, 6)).astype(np.float32)
        compiled = compile_for_inference(model, Tensor(x[:1]))
        assert compiled.num_folded == 2
        assert compiled.num_fused_activations == 0

    def test_planned_arena_reused_across_calls(self):
        model = _FusedNet()
        model.eval()
        x = RNG.standard_normal((4, 3, 8, 8)).astype(np.float32)
        compiled = compile_for_inference(model, Tensor(x[:1]))
        first = compiled(Tensor(x)).data.copy()  # recording pass
        signature = ((4, 3, 8, 8), np.dtype(np.float32).str)
        assert compiled._arena.plan_for(signature) is not None
        second = compiled(Tensor(x)).data  # planned pass
        np.testing.assert_allclose(first, second, rtol=1e-6, atol=1e-7)


# ---------------------------------------------------------------------------
# Fork hygiene
# ---------------------------------------------------------------------------
class TestForkHook:
    def test_child_hook_clears_arenas_and_engine(self, monkeypatch):
        _force_tiling(monkeypatch, backend="thread")
        a, b, bias = _gemm_case()
        engine().execute(a, b, bias=bias)
        assert gemm_mod._ENGINE is not None
        F.workspace().get("pad", (16,), np.float32)
        assert len(F.workspace()) > 0

        arena = PlannedArena()
        arena.begin("sig")
        arena.get("pad", (16,), np.float32)
        arena.end()
        assert arena.plan_for("sig") is not None

        F._after_fork_in_child()

        assert len(F.workspace()) == 0
        assert arena.plan_for("sig") is None
        assert gemm_mod._ENGINE is None

    @pytest.mark.skipif(not hasattr(os, "register_at_fork"), reason="no register_at_fork")
    def test_forked_child_sees_empty_workspace(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        F.workspace().get("pad", (1024,), np.float32)
        assert len(F.workspace()) > 0
        queue = ctx.SimpleQueue()

        def child(q):
            q.put(len(F.workspace()))

        proc = ctx.Process(target=child, args=(queue,))
        proc.start()
        proc.join(timeout=30)
        assert queue.get() == 0
        # The parent's arena is untouched by the child's hook.
        assert len(F.workspace()) > 0
