"""Numerical-stability and failure-injection tests for the substrate.

Defense code feeds the engine unusual inputs — tiny batches, pruned-to-zero
channels, saturated logits — and must not produce NaNs or silent garbage.
"""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    SGD,
    Tensor,
    cross_entropy,
    no_grad,
)
from repro.nn import functional as F


class TestSaturation:
    def test_log_softmax_extreme_logits(self):
        logits = Tensor(np.array([[1e4, -1e4, 0.0]], dtype=np.float32))
        out = logits.log_softmax()
        assert np.isfinite(out.data).all()

    def test_cross_entropy_confident_wrong_finite(self):
        logits = Tensor(np.array([[100.0, -100.0]], dtype=np.float32), requires_grad=True)
        loss = cross_entropy(logits, np.array([1]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()

    def test_sigmoid_extremes(self):
        out = Tensor(np.array([-500.0, 500.0], dtype=np.float32)).sigmoid()
        assert np.isfinite(out.data).all()
        assert out.data[0] >= 0.0 and out.data[1] <= 1.0


class TestDegenerateBatchNorm:
    def test_constant_input_train_mode(self):
        # Zero variance: eps must keep the output finite.
        bn = BatchNorm2d(2)
        bn.train()
        x = Tensor(np.full((4, 2, 3, 3), 7.0, dtype=np.float32), requires_grad=True)
        out = bn(x)
        assert np.isfinite(out.data).all()
        out.sum().backward()
        assert np.isfinite(x.grad).all()

    def test_batch_of_one_spatial_many(self):
        bn = BatchNorm2d(3)
        bn.train()
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 8, 8)).astype(np.float32))
        assert np.isfinite(bn(x).data).all()

    def test_eval_mode_with_tiny_running_var(self):
        bn = BatchNorm2d(2)
        bn._update_buffer("running_var", np.full(2, 1e-12, dtype=np.float32))
        bn.eval()
        x = Tensor(np.ones((2, 2, 2, 2), dtype=np.float32))
        assert np.isfinite(bn(x).data).all()


class TestZeroedChannels:
    def test_forward_through_pruned_conv(self):
        # A fully zeroed filter must produce exactly zero output and not
        # destabilize downstream batch norm.
        from repro.nn import Conv2d, Sequential, ReLU

        net = Sequential(Conv2d(3, 4, 3, padding=1), BatchNorm2d(4), ReLU())
        net[0].weight.data[0] = 0.0
        net[0].bias.data[0] = 0.0
        net.train()
        x = Tensor(np.random.default_rng(1).normal(size=(8, 3, 6, 6)).astype(np.float32))
        out = net(x)
        assert np.isfinite(out.data).all()

    def test_gradient_flows_through_zero_weights(self):
        from repro.nn import Conv2d

        conv = Conv2d(2, 2, 3, padding=1)
        conv.weight.data[...] = 0.0
        x = Tensor(np.ones((1, 2, 4, 4), dtype=np.float32))
        out = conv(x)
        out.sum().backward()
        # Zero weights still receive gradient (so fine-tuning could regrow
        # them — which is why PruningMask.apply exists).
        assert conv.weight.grad is not None
        assert np.abs(conv.weight.grad).sum() > 0


class TestTinyBatches:
    def test_single_sample_training_step(self):
        from tests.conftest import TinyConvNet

        model = TinyConvNet(seed=0)
        model.train()
        optimizer = SGD(model.parameters(), lr=0.01)
        x = Tensor(np.random.default_rng(0).uniform(0, 1, (1, 3, 8, 8)).astype(np.float32))
        loss = cross_entropy(model(x), np.array([0]))
        loss.backward()
        optimizer.step()
        for p in model.parameters():
            assert np.isfinite(p.data).all()

    def test_eval_on_single_sample(self):
        from tests.conftest import TinyConvNet

        model = TinyConvNet(seed=0)
        model.eval()
        with no_grad():
            out = model(Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (1, 3)


class TestPoolingEdgeCases:
    def test_max_pool_all_negative(self):
        x = Tensor(np.full((1, 1, 4, 4), -3.0, dtype=np.float32))
        out = F.max_pool2d(x, 2, 2)
        assert np.allclose(out.data, -3.0)

    def test_window_equal_to_image(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 4, 4)).astype(np.float32))
        out = F.max_pool2d(x, 4, 4)
        assert out.shape == (1, 2, 1, 1)
        assert np.allclose(out.data.reshape(2), x.data.max(axis=(2, 3)).reshape(2))
