"""Finite-difference gradient checks for every differentiable op.

These are the substrate's ground truth: if a backward pass is wrong,
everything above (unlearning-loss scores included) silently degrades.
All checks run in float64 with central differences.
"""

import numpy as np
import pytest

from repro.nn import Tensor, cross_entropy, kl_div_loss, mse_loss, soft_cross_entropy
from repro.nn import functional as F

RNG = np.random.default_rng(42)


def numgrad(f, x, eps=1e-5):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check_unary(op, shape=(3, 4), positive=False, atol=1e-6):
    data = RNG.uniform(0.5, 2.0, shape) if positive else RNG.normal(size=shape)
    x = Tensor(data.astype(np.float64), requires_grad=True)
    out = op(x)
    (out * out).sum().backward()

    def f():
        o = op(Tensor(x.data))
        return float((o.data ** 2).sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < atol


@pytest.mark.parametrize(
    "name,op,positive",
    [
        ("relu_shifted", lambda t: (t + 0.01).relu(), False),
        ("leaky_relu", lambda t: (t + 0.01).leaky_relu(0.1), False),
        ("sigmoid", lambda t: t.sigmoid(), False),
        ("tanh", lambda t: t.tanh(), False),
        ("silu", lambda t: t.silu(), False),
        ("exp", lambda t: t.exp(), False),
        ("log", lambda t: t.log(), True),
        ("sqrt", lambda t: t.sqrt(), True),
        ("abs_shifted", lambda t: (t + 0.01).abs(), False),
        ("pow3", lambda t: t.pow(3.0), False),
        ("softmax", lambda t: t.softmax(), False),
        ("log_softmax", lambda t: t.log_softmax(), False),
        ("mean", lambda t: t.mean(axis=1), False),
        ("var", lambda t: t.var(axis=0), False),
        ("reshape", lambda t: t.reshape(4, 3), False),
        ("transpose", lambda t: t.transpose(), False),
    ],
)
def test_unary_ops(name, op, positive):
    check_unary(op, positive=positive)


def test_hard_sigmoid_grad_away_from_kinks():
    data = RNG.uniform(-2.5, 2.5, (4, 4))
    x = Tensor(data.astype(np.float64), requires_grad=True)
    out = x.hard_sigmoid()
    (out * out).sum().backward()

    def f():
        return float((Tensor(x.data).hard_sigmoid().data ** 2).sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-5


def test_hard_swish_grad_away_from_kinks():
    data = RNG.uniform(-2.5, 2.5, (4, 4))
    x = Tensor(data.astype(np.float64), requires_grad=True)
    (x.hard_swish() * 1.0).sum().backward()

    def f():
        return float(Tensor(x.data).hard_swish().data.sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-5


def test_binary_mul_both_sides():
    a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
    ((a * b) ** 2.0).sum().backward()

    def fa():
        return float(((a.data * b.data) ** 2).sum())

    assert np.abs(numgrad(fa, a.data) - a.grad).max() < 1e-5
    assert np.abs(numgrad(fa, b.data) - b.grad).max() < 1e-5


def test_div_grad():
    a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
    b = Tensor(RNG.uniform(1.0, 2.0, (3,)), requires_grad=True)
    (a / b).sum().backward()

    def f():
        return float((a.data / b.data).sum())

    assert np.abs(numgrad(f, a.data) - a.grad).max() < 1e-5
    assert np.abs(numgrad(f, b.data) - b.grad).max() < 1e-5


def test_matmul_grad():
    a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
    ((a @ b) ** 2.0).sum().backward()

    def f():
        return float(((a.data @ b.data) ** 2).sum())

    assert np.abs(numgrad(f, a.data) - a.grad).max() < 1e-4
    assert np.abs(numgrad(f, b.data) - b.grad).max() < 1e-4


def test_max_reduction_grad():
    data = RNG.normal(size=(3, 5))
    x = Tensor(data, requires_grad=True)
    x.max(axis=1).sum().backward()

    def f():
        return float(x.data.max(axis=1).sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-5


@pytest.mark.parametrize("stride,padding,groups", [(1, 0, 1), (2, 1, 1), (1, 1, 2), (1, 1, 4)])
def test_conv2d_grads(stride, padding, groups):
    c_in, c_out = 4, 4
    x = Tensor(RNG.normal(size=(2, c_in, 6, 6)), requires_grad=True)
    w = Tensor(RNG.normal(size=(c_out, c_in // groups, 3, 3)), requires_grad=True)
    b = Tensor(RNG.normal(size=(c_out,)), requires_grad=True)
    out = F.conv2d(x, w, b, stride=stride, padding=padding, groups=groups)
    (out * out).sum().backward()

    def f():
        o = F.conv2d(Tensor(x.data), Tensor(w.data), Tensor(b.data), stride, padding, groups)
        return float((o.data ** 2).sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-4
    assert np.abs(numgrad(f, w.data) - w.grad).max() < 1e-4
    assert np.abs(numgrad(f, b.data) - b.grad).max() < 1e-4


def test_max_pool_grad():
    x = Tensor(RNG.normal(size=(2, 3, 6, 6)), requires_grad=True)
    (F.max_pool2d(x, 2, 2) ** 2.0).sum().backward()

    def f():
        return float((F.max_pool2d(Tensor(x.data), 2, 2).data ** 2).sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-5


def test_max_pool_stride_ne_kernel_grad():
    x = Tensor(RNG.normal(size=(1, 2, 7, 7)), requires_grad=True)
    (F.max_pool2d(x, 3, 2) ** 2.0).sum().backward()

    def f():
        return float((F.max_pool2d(Tensor(x.data), 3, 2).data ** 2).sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-5


def test_avg_pool_grad():
    x = Tensor(RNG.normal(size=(2, 3, 6, 6)), requires_grad=True)
    (F.avg_pool2d(x, 3, 3) ** 2.0).sum().backward()

    def f():
        return float((F.avg_pool2d(Tensor(x.data), 3, 3).data ** 2).sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-5


def test_pad2d_grad():
    x = Tensor(RNG.normal(size=(2, 2, 4, 4)), requires_grad=True)
    (F.pad2d(x, 2) ** 2.0).sum().backward()

    def f():
        return float((F.pad2d(Tensor(x.data), 2).data ** 2).sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-5


def test_batch_norm_train_grads():
    x = Tensor(RNG.normal(size=(3, 4, 5, 5)), requires_grad=True)
    w = Tensor(RNG.uniform(0.5, 1.5, (4,)), requires_grad=True)
    b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
    out, _, _ = F.batch_norm2d_train(x, w, b, 1e-5)
    (out * out).sum().backward()

    def f():
        o, _, _ = F.batch_norm2d_train(Tensor(x.data), Tensor(w.data), Tensor(b.data), 1e-5)
        return float((o.data ** 2).sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-5
    assert np.abs(numgrad(f, w.data) - w.grad).max() < 1e-5
    assert np.abs(numgrad(f, b.data) - b.grad).max() < 1e-5


def test_batch_norm_eval_grads():
    rm = RNG.normal(size=4)
    rv = RNG.uniform(0.5, 2.0, 4)
    x = Tensor(RNG.normal(size=(2, 4, 3, 3)), requires_grad=True)
    w = Tensor(RNG.uniform(0.5, 1.5, (4,)), requires_grad=True)
    b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
    out = F.batch_norm2d_eval(x, w, b, rm, rv, 1e-5)
    (out * out).sum().backward()

    def f():
        o = F.batch_norm2d_eval(Tensor(x.data), Tensor(w.data), Tensor(b.data), rm, rv, 1e-5)
        return float((o.data ** 2).sum())

    assert np.abs(numgrad(f, x.data) - x.grad).max() < 1e-5
    assert np.abs(numgrad(f, w.data) - w.grad).max() < 1e-5
    assert np.abs(numgrad(f, b.data) - b.grad).max() < 1e-5


def test_cross_entropy_grad():
    logits = Tensor(RNG.normal(size=(5, 7)), requires_grad=True)
    labels = RNG.integers(0, 7, 5)
    cross_entropy(logits, labels).backward()

    def f():
        return float(cross_entropy(Tensor(logits.data), labels).data)

    assert np.abs(numgrad(f, logits.data) - logits.grad).max() < 1e-5


def test_cross_entropy_sum_grad():
    logits = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
    labels = RNG.integers(0, 5, 4)
    cross_entropy(logits, labels, reduction="sum").backward()

    def f():
        return float(cross_entropy(Tensor(logits.data), labels, reduction="sum").data)

    assert np.abs(numgrad(f, logits.data) - logits.grad).max() < 1e-4


def test_mse_grad():
    pred = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
    target = RNG.normal(size=(4, 3))
    mse_loss(pred, target).backward()

    def f():
        return float(((pred.data - target) ** 2).mean())

    assert np.abs(numgrad(f, pred.data) - pred.grad).max() < 1e-5


def test_soft_cross_entropy_grad():
    logits = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
    raw = RNG.uniform(0.1, 1.0, (4, 5))
    soft = raw / raw.sum(axis=1, keepdims=True)
    soft_cross_entropy(logits, soft).backward()

    def f():
        return float(soft_cross_entropy(Tensor(logits.data), soft).data)

    assert np.abs(numgrad(f, logits.data) - logits.grad).max() < 1e-5


def test_kl_div_grad():
    logits = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    raw = RNG.uniform(0.1, 1.0, (3, 4))
    teacher = raw / raw.sum(axis=1, keepdims=True)
    kl_div_loss(logits.log_softmax(), teacher).backward()

    def f():
        return float(kl_div_loss(Tensor(logits.data).log_softmax(), teacher).data)

    assert np.abs(numgrad(f, logits.data) - logits.grad).max() < 1e-5
