"""Filter-scoring tests (paper Eq. 3)."""

import copy

import numpy as np
import pytest

from repro.core import compute_filter_scores, filter_scores_from_grads, top_filter
from repro.models import FilterRef, count_filters, iter_conv_layers
from repro.nn import Conv2d, Sequential, Tensor


class TestScoresFromGrads:
    def test_scores_cover_all_filters(self, backdoored_tiny_model, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        backdoor_set = tiny_attack.triggered_with_true_labels(tiny_test)
        scores, loss = compute_filter_scores(model, backdoor_set)
        assert len(scores) == count_filters(model)
        assert loss > 0
        assert all(v >= 0 for v in scores.values())

    def test_manual_mean_absolute_gradient(self):
        # Eq. 3 on a single conv with a hand-set gradient.
        conv = Conv2d(1, 2, 2, bias=True)
        model = Sequential(conv)
        conv.weight.grad = np.array(
            [[[[1.0, -1.0], [2.0, -2.0]]], [[[0.0, 0.0], [0.0, 4.0]]]], dtype=np.float32
        )
        conv.bias.grad = np.array([2.0, -1.0], dtype=np.float32)
        scores = filter_scores_from_grads(model)
        # filter 0: (1+1+2+2+2)/5 ; filter 1: (4+1)/5
        assert scores[FilterRef("0", 0)] == pytest.approx(8 / 5)
        assert scores[FilterRef("0", 1)] == pytest.approx(5 / 5)

    def test_no_bias_conv(self):
        conv = Conv2d(1, 1, 2, bias=False)
        model = Sequential(conv)
        conv.weight.grad = np.full((1, 1, 2, 2), 3.0, dtype=np.float32)
        scores = filter_scores_from_grads(model)
        assert scores[FilterRef("0", 0)] == pytest.approx(3.0)

    def test_exclusion(self):
        conv = Conv2d(1, 3, 2)
        model = Sequential(conv)
        conv.weight.grad = np.ones((3, 1, 2, 2), dtype=np.float32)
        conv.bias.grad = np.zeros(3, dtype=np.float32)
        scores = filter_scores_from_grads(model, exclude={FilterRef("0", 1)})
        assert FilterRef("0", 1) not in scores
        assert len(scores) == 2

    def test_layers_without_grads_skipped(self):
        model = Sequential(Conv2d(1, 2, 2), Conv2d(2, 2, 2))
        model[0].weight.grad = np.ones((2, 1, 2, 2), dtype=np.float32)
        model[0].bias.grad = np.zeros(2, dtype=np.float32)
        scores = filter_scores_from_grads(model)
        assert all(ref.layer == "0" for ref in scores)

    def test_zero_grad_after_compute(self, backdoored_tiny_model, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        compute_filter_scores(model, tiny_attack.triggered_with_true_labels(tiny_test))
        # Buffers are zeroed in place (not dropped) so the next scoring round
        # accumulates into the same memory; either way no gradient survives.
        assert all(
            p.grad is None or not p.grad.any() for p in model.parameters()
        )


class TestTopFilter:
    def test_picks_argmax(self):
        scores = {FilterRef("a", 0): 1.0, FilterRef("b", 3): 5.0, FilterRef("a", 2): 2.0}
        assert top_filter(scores) == FilterRef("b", 3)

    def test_deterministic_tie_break(self):
        scores = {FilterRef("a", 1): 1.0, FilterRef("a", 0): 1.0, FilterRef("b", 0): 1.0}
        assert top_filter(scores) == top_filter(dict(reversed(list(scores.items()))))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            top_filter({})


class TestScoresIdentifyBackdoorFilters:
    def test_patch_sensitive_filter_scores_high(self, backdoored_tiny_model, tiny_test, tiny_attack):
        """Sanity: top-scored filters respond to the trigger more than random ones."""
        model = copy.deepcopy(backdoored_tiny_model)
        backdoor_set = tiny_attack.triggered_with_true_labels(tiny_test)
        scores, _ = compute_filter_scores(model, backdoor_set)
        ranked = sorted(scores.items(), key=lambda kv: kv[1], reverse=True)
        top_score = ranked[0][1]
        median_score = ranked[len(ranked) // 2][1]
        assert top_score > 2.0 * max(median_score, 1e-9)
