"""Tests for the ablation scoring strategies (A1 machinery)."""

import copy

import numpy as np
import pytest

from repro.core import SCORING_STRATEGIES, prune_by_strategy, rank_filters
from repro.models import count_filters


@pytest.fixture()
def ablation_data(tiny_reservoir, tiny_attack):
    from repro.data.splits import defender_split

    clean_train, _ = defender_split(tiny_reservoir, 20, np.random.default_rng(0))
    return {
        "clean": clean_train,
        "backdoor": tiny_attack.triggered_with_true_labels(clean_train),
    }


class TestRankFilters:
    @pytest.mark.parametrize("strategy", SCORING_STRATEGIES)
    def test_ranking_is_complete_permutation(self, strategy, backdoored_tiny_model, ablation_data):
        model = copy.deepcopy(backdoored_tiny_model)
        ranking = rank_filters(
            model, strategy,
            backdoor_train=ablation_data["backdoor"],
            clean_train=ablation_data["clean"],
            rng=np.random.default_rng(0),
        )
        assert len(ranking) == count_filters(model)
        assert len(set(ranking)) == len(ranking)

    def test_gradient_requires_backdoor_data(self, backdoored_tiny_model):
        with pytest.raises(ValueError, match="backdoor"):
            rank_filters(backdoored_tiny_model, "gradient")

    def test_activation_requires_clean_data(self, backdoored_tiny_model):
        with pytest.raises(ValueError, match="clean"):
            rank_filters(backdoored_tiny_model, "activation")

    def test_unknown_strategy_raises(self, backdoored_tiny_model):
        with pytest.raises(KeyError):
            rank_filters(backdoored_tiny_model, "astrology")

    def test_random_is_rng_deterministic(self, backdoored_tiny_model):
        a = rank_filters(backdoored_tiny_model, "random", rng=np.random.default_rng(5))
        b = rank_filters(backdoored_tiny_model, "random", rng=np.random.default_rng(5))
        assert a == b

    def test_magnitude_ranks_smallest_first(self, backdoored_tiny_model):
        model = copy.deepcopy(backdoored_tiny_model)
        ranking = rank_filters(model, "magnitude")
        from repro.models import iter_conv_layers

        convs = dict(iter_conv_layers(model))

        def norm(ref):
            return float(np.abs(convs[ref.layer].weight.data[ref.index]).sum())

        assert norm(ranking[0]) <= norm(ranking[-1])


class TestPruneByStrategy:
    def test_prunes_exact_budget(self, backdoored_tiny_model, ablation_data):
        model = copy.deepcopy(backdoored_tiny_model)
        mask = prune_by_strategy(
            model, "gradient", budget=3, backdoor_train=ablation_data["backdoor"],
        )
        assert len(mask) == 3

    def test_zero_budget_is_noop(self, backdoored_tiny_model, ablation_data):
        model = copy.deepcopy(backdoored_tiny_model)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        mask = prune_by_strategy(
            model, "random", budget=0, rng=np.random.default_rng(0),
        )
        assert len(mask) == 0
        for key, value in model.state_dict().items():
            assert np.array_equal(before[key], value)

    def test_negative_budget_raises(self, backdoored_tiny_model):
        with pytest.raises(ValueError):
            prune_by_strategy(backdoored_tiny_model, "random", budget=-1)

    def test_gradient_strategy_damages_backdoor_more_than_random(
        self, backdoored_tiny_model, ablation_data, tiny_test, tiny_attack
    ):
        from repro.eval import evaluate_backdoor_metrics

        budget = 2
        grad_model = copy.deepcopy(backdoored_tiny_model)
        prune_by_strategy(grad_model, "gradient", budget, backdoor_train=ablation_data["backdoor"])
        grad_metrics = evaluate_backdoor_metrics(grad_model, tiny_test, tiny_attack)

        rand_asrs = []
        for seed in range(3):
            rand_model = copy.deepcopy(backdoored_tiny_model)
            prune_by_strategy(rand_model, "random", budget, rng=np.random.default_rng(seed))
            rand_asrs.append(evaluate_backdoor_metrics(rand_model, tiny_test, tiny_attack).asr)
        assert grad_metrics.asr <= max(rand_asrs) + 1e-9
