"""Post-defense analysis tests."""

import copy

import numpy as np
import pytest

from repro.core import (
    pruned_vs_kept_sensitivity,
    pruning_depth_profile,
    trigger_sensitivity,
)
from repro.models import FilterRef, count_filters


class TestDepthProfile:
    def test_covers_all_layers(self, backdoored_tiny_model):
        profile = pruning_depth_profile(backdoored_tiny_model, [])
        assert len(profile) == 2  # TinyConvNet's two convs
        assert all(count == 0 for _, count, _ in profile)
        assert sum(total for _, _, total in profile) == count_filters(backdoored_tiny_model)

    def test_counts_pruned(self, backdoored_tiny_model):
        layers = [name for name, _, _ in pruning_depth_profile(backdoored_tiny_model, [])]
        pruned = [FilterRef(layers[0], 0), FilterRef(layers[0], 1), FilterRef(layers[1], 3)]
        profile = pruning_depth_profile(backdoored_tiny_model, pruned)
        assert profile[0][1] == 2
        assert profile[1][1] == 1


class TestTriggerSensitivity:
    def test_all_filters_scored(self, backdoored_tiny_model, tiny_test, tiny_attack):
        sensitivity = trigger_sensitivity(backdoored_tiny_model, tiny_test, tiny_attack)
        assert len(sensitivity) == count_filters(backdoored_tiny_model)
        assert all(v >= 0 for v in sensitivity.values())

    def test_backdoored_model_has_sensitive_filters(
        self, backdoored_tiny_model, tiny_test, tiny_attack
    ):
        sensitivity = trigger_sensitivity(backdoored_tiny_model, tiny_test, tiny_attack)
        values = np.array(list(sensitivity.values()))
        # Some filters respond to the trigger far more than the median one.
        assert values.max() > 3 * np.median(values)


class TestPrunedVsKept:
    def test_grad_prune_targets_sensitive_filters(
        self, backdoored_tiny_model, tiny_reservoir, tiny_test, tiny_attack
    ):
        from repro.core import GradientPruner
        from repro.data.splits import defender_split
        from repro.models import PruningMask

        sensitivity = trigger_sensitivity(backdoored_tiny_model, tiny_test, tiny_attack)
        model = copy.deepcopy(backdoored_tiny_model)
        clean_train, clean_val = defender_split(tiny_reservoir, 20, np.random.default_rng(0))
        mask = PruningMask(model)
        GradientPruner(alpha=0.0, patience=3, max_rounds=6).prune(
            model,
            tiny_attack.triggered_with_true_labels(clean_train),
            clean_val,
            tiny_attack.triggered_with_true_labels(clean_val),
            mask=mask,
        )
        if len(mask) == 0:
            pytest.skip("no filters pruned in this configuration")
        comparison = pruned_vs_kept_sensitivity(sensitivity, mask.pruned_refs)
        assert comparison["ratio"] > 1.0  # pruned filters were the responsive ones

    def test_empty_populations_raise(self):
        with pytest.raises(ValueError):
            pruned_vs_kept_sensitivity({FilterRef("a", 0): 1.0}, [FilterRef("a", 0)])
