"""Unlearning-loss tests (paper Eq. 2)."""

import copy

import numpy as np
import pytest

from repro.core import unlearning_loss_backward, unlearning_loss_value
from repro.data import ImageDataset


class TestLossValue:
    def test_high_on_backdoored_model(self, backdoored_tiny_model, tiny_test, tiny_attack):
        # The backdoored model classifies triggered inputs as the target, so
        # CE against true labels must be much larger than the clean CE.
        victims = tiny_test.subset(np.flatnonzero(tiny_test.labels != 0))
        backdoor_set = tiny_attack.triggered_with_true_labels(victims)
        loss_bd = unlearning_loss_value(backdoored_tiny_model, backdoor_set)
        loss_clean = unlearning_loss_value(backdoored_tiny_model, victims)
        assert loss_bd > 2.0 * loss_clean

    def test_sum_reduction_scales_with_size(self, backdoored_tiny_model, tiny_test, tiny_attack):
        backdoor_set = tiny_attack.triggered_with_true_labels(tiny_test)
        full = unlearning_loss_value(backdoored_tiny_model, backdoor_set)
        half = unlearning_loss_value(
            backdoored_tiny_model, backdoor_set.subset(np.arange(len(backdoor_set) // 2))
        )
        assert full > half

    def test_batching_invariant(self, backdoored_tiny_model, tiny_test, tiny_attack):
        backdoor_set = tiny_attack.triggered_with_true_labels(tiny_test)
        a = unlearning_loss_value(backdoored_tiny_model, backdoor_set, batch_size=16)
        b = unlearning_loss_value(backdoored_tiny_model, backdoor_set, batch_size=128)
        assert a == pytest.approx(b, rel=1e-4)

    def test_empty_set_raises(self, backdoored_tiny_model, tiny_test):
        empty = ImageDataset(
            np.zeros((0, *tiny_test.image_shape), dtype=np.float32), np.zeros(0)
        )
        with pytest.raises(ValueError):
            unlearning_loss_value(backdoored_tiny_model, empty)


class TestLossBackward:
    def test_populates_conv_grads(self, backdoored_tiny_model, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        backdoor_set = tiny_attack.triggered_with_true_labels(tiny_test)
        loss = unlearning_loss_backward(model, backdoor_set)
        assert loss > 0
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).sum() > 0 for g in grads)

    def test_does_not_change_weights(self, backdoored_tiny_model, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        unlearning_loss_backward(model, tiny_attack.triggered_with_true_labels(tiny_test))
        after = model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_value_matches_no_grad_path(self, backdoored_tiny_model, tiny_test, tiny_attack):
        model = copy.deepcopy(backdoored_tiny_model)
        backdoor_set = tiny_attack.triggered_with_true_labels(tiny_test)
        with_grad = unlearning_loss_backward(model, backdoor_set)
        without = unlearning_loss_value(model, backdoor_set)
        assert with_grad == pytest.approx(without, rel=1e-4)

    def test_grad_accumulation_over_batches_exact(self, backdoored_tiny_model, tiny_test, tiny_attack):
        backdoor_set = tiny_attack.triggered_with_true_labels(tiny_test)
        m1 = copy.deepcopy(backdoored_tiny_model)
        m2 = copy.deepcopy(backdoored_tiny_model)
        unlearning_loss_backward(m1, backdoor_set, batch_size=8)
        unlearning_loss_backward(m2, backdoor_set, batch_size=1024)
        g1 = next(iter(m1.parameters())).grad
        g2 = next(iter(m2.parameters())).grad
        assert np.allclose(g1, g2, atol=1e-3)
