"""Fused pruning-loop evaluator tests: one sweep must equal the two-pass reference."""

import copy

import numpy as np
import pytest

from repro.core import FusedEvaluator, GradientPruner, unlearning_loss_value
from repro.data.dataset import ImageDataset
from repro.data.splits import defender_split
from repro.training import evaluate_accuracy


@pytest.fixture()
def eval_setup(backdoored_tiny_model, tiny_reservoir, tiny_attack):
    _, clean_val = defender_split(tiny_reservoir, spc=20, rng=np.random.default_rng(0))
    model = copy.deepcopy(backdoored_tiny_model)
    model.eval()
    return {
        "model": model,
        "clean_val": clean_val,
        "backdoor_val": tiny_attack.triggered_with_true_labels(clean_val),
    }


class TestFusedEvaluator:
    def test_matches_two_pass_reference(self, eval_setup):
        model = eval_setup["model"]
        evaluator = FusedEvaluator(
            model, eval_setup["clean_val"], eval_setup["backdoor_val"], batch_size=16
        )
        report = evaluator.evaluate()
        acc_ref = evaluate_accuracy(model, eval_setup["clean_val"], batch_size=16)
        loss_ref = unlearning_loss_value(model, eval_setup["backdoor_val"], batch_size=16)
        assert report.accuracy == pytest.approx(acc_ref, abs=1e-12)
        assert report.unlearning_loss == pytest.approx(loss_ref, rel=1e-4)
        assert report.seconds > 0

    def test_reference_path_matches_fast_path(self, eval_setup):
        fast = FusedEvaluator(
            eval_setup["model"],
            eval_setup["clean_val"],
            eval_setup["backdoor_val"],
            batch_size=16,
        ).evaluate()
        slow = FusedEvaluator(
            eval_setup["model"],
            eval_setup["clean_val"],
            eval_setup["backdoor_val"],
            batch_size=16,
            use_fast_path=False,
        ).evaluate()
        assert slow.num_folded == 0
        assert fast.accuracy == pytest.approx(slow.accuracy, abs=1e-12)
        assert fast.unlearning_loss == pytest.approx(slow.unlearning_loss, rel=1e-4)

    def test_batch_size_invariance(self, eval_setup):
        # The sum-reduced loss and counting accuracy must not depend on how
        # batches straddle the clean/backdoor boundary.
        reports = [
            FusedEvaluator(
                eval_setup["model"],
                eval_setup["clean_val"],
                eval_setup["backdoor_val"],
                batch_size=bs,
            ).evaluate()
            for bs in (1, 7, 16, 1000)
        ]
        for report in reports[1:]:
            assert report.accuracy == pytest.approx(reports[0].accuracy, abs=1e-12)
            assert report.unlearning_loss == pytest.approx(
                reports[0].unlearning_loss, rel=1e-4
            )

    def test_tracks_pruning_mutations(self, eval_setup):
        from repro.models.pruning_utils import FilterRef, PruningMask

        model = eval_setup["model"]
        evaluator = FusedEvaluator(
            model, eval_setup["clean_val"], eval_setup["backdoor_val"], batch_size=16
        )
        evaluator.evaluate()
        mask = PruningMask(model)
        mask.prune(FilterRef("features.0", 0))
        report = evaluator.evaluate()
        acc_ref = evaluate_accuracy(model, eval_setup["clean_val"], batch_size=16)
        loss_ref = unlearning_loss_value(model, eval_setup["backdoor_val"], batch_size=16)
        assert report.accuracy == pytest.approx(acc_ref, abs=1e-12)
        assert report.unlearning_loss == pytest.approx(loss_ref, rel=1e-4)

    def test_rejects_empty_sets(self, eval_setup):
        empty = ImageDataset(
            np.empty((0, 3, 8, 8), dtype=np.float32), np.empty(0, dtype=np.int64)
        )
        with pytest.raises(ValueError, match="clean"):
            FusedEvaluator(eval_setup["model"], empty, eval_setup["backdoor_val"])
        with pytest.raises(ValueError, match="backdoor"):
            FusedEvaluator(eval_setup["model"], eval_setup["clean_val"], empty)


class TestPrunerTelemetry:
    def test_rounds_record_timings_and_folds(
        self, backdoored_tiny_model, tiny_reservoir, tiny_attack
    ):
        clean_train, clean_val = defender_split(
            tiny_reservoir, spc=20, rng=np.random.default_rng(0)
        )
        model = copy.deepcopy(backdoored_tiny_model)
        pruner = GradientPruner(alpha=0.0, patience=100, max_rounds=2)
        history = pruner.prune(
            model,
            tiny_attack.triggered_with_true_labels(clean_train),
            clean_val,
            tiny_attack.triggered_with_true_labels(clean_val),
        )
        assert history.initial_eval_seconds > 0
        assert history.num_folded_layers >= 1  # TinyConvNet: two conv→BN pairs
        assert history.rounds
        for record in history.rounds:
            assert record.score_seconds > 0
            assert record.eval_seconds > 0
        assert history.total_score_seconds > 0
        assert history.total_eval_seconds > history.initial_eval_seconds

    def test_fast_and_reference_pruners_agree(
        self, backdoored_tiny_model, tiny_reservoir, tiny_attack
    ):
        clean_train, clean_val = defender_split(
            tiny_reservoir, spc=20, rng=np.random.default_rng(0)
        )
        backdoor_train = tiny_attack.triggered_with_true_labels(clean_train)
        backdoor_val = tiny_attack.triggered_with_true_labels(clean_val)

        histories = []
        for use_fast_path in (True, False):
            model = copy.deepcopy(backdoored_tiny_model)
            pruner = GradientPruner(
                alpha=0.0, patience=100, max_rounds=3, use_fast_path=use_fast_path
            )
            histories.append(
                pruner.prune(model, backdoor_train, clean_val, backdoor_val)
            )
        fast, slow = histories
        assert [r.pruned for r in fast.rounds] == [r.pruned for r in slow.rounds]
        assert fast.initial_val_accuracy == pytest.approx(
            slow.initial_val_accuracy, abs=1e-12
        )
        assert fast.initial_val_loss == pytest.approx(slow.initial_val_loss, rel=1e-4)
        for fast_round, slow_round in zip(fast.rounds, slow.rounds):
            assert fast_round.val_accuracy == pytest.approx(
                slow_round.val_accuracy, abs=1e-6
            )
            assert fast_round.val_unlearning_loss == pytest.approx(
                slow_round.val_unlearning_loss, rel=1e-3
            )
