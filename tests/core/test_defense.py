"""End-to-end Grad-Prune defense tests: does it actually remove the backdoor?"""

import copy

import numpy as np
import pytest

from repro.core import GradPruneConfig, GradPruneDefense
from repro.data.splits import defender_split
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics


@pytest.fixture()
def defender_data(tiny_reservoir, tiny_attack):
    clean_train, clean_val = defender_split(
        tiny_reservoir, spc=20, rng=np.random.default_rng(2)
    )
    return DefenderData(clean_train=clean_train, clean_val=clean_val, attack=tiny_attack)


class TestGradPruneDefense:
    def test_reduces_asr_and_keeps_acc(
        self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack
    ):
        model = copy.deepcopy(backdoored_tiny_model)
        before = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert before.asr > 0.8  # fixture sanity: backdoor embedded

        defense = GradPruneDefense(GradPruneConfig(
            prune_patience=3, tune_patience=3, tune_max_epochs=10, seed=0,
        ))
        report = defense.apply(model, defender_data)
        after = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert after.asr < before.asr * 0.5
        assert after.acc > before.acc - 0.15
        assert report.details["num_pruned"] >= 0

    def test_report_structure(self, backdoored_tiny_model, defender_data):
        model = copy.deepcopy(backdoored_tiny_model)
        report = GradPruneDefense(GradPruneConfig(
            prune_patience=2, tune_max_epochs=3,
        )).apply(model, defender_data)
        assert report.name == "grad_prune"
        for key in ("pruned_filters", "num_pruned", "sparsity", "prune_stop_reason",
                    "tune_stop_reason"):
            assert key in report.details

    def test_skip_finetune_ablation(self, backdoored_tiny_model, defender_data):
        model = copy.deepcopy(backdoored_tiny_model)
        report = GradPruneDefense(GradPruneConfig(
            prune_patience=2, skip_finetune=True,
        )).apply(model, defender_data)
        assert report.details["tune_stop_reason"] == "skipped"
        assert report.details["tune_history"] is None

    def test_requires_attack_handle(self, backdoored_tiny_model, defender_data):
        data = DefenderData(
            clean_train=defender_data.clean_train,
            clean_val=defender_data.clean_val,
            attack=None,
        )
        with pytest.raises(ValueError, match="attack"):
            GradPruneDefense().apply(copy.deepcopy(backdoored_tiny_model), data)

    def test_deterministic_given_seeds(self, backdoored_tiny_model, defender_data, tiny_test, tiny_attack):
        config = GradPruneConfig(prune_patience=2, tune_max_epochs=3, seed=5)
        m1 = copy.deepcopy(backdoored_tiny_model)
        m2 = copy.deepcopy(backdoored_tiny_model)
        GradPruneDefense(config).apply(m1, defender_data)
        GradPruneDefense(config).apply(m2, defender_data)
        a = evaluate_backdoor_metrics(m1, tiny_test, tiny_attack)
        b = evaluate_backdoor_metrics(m2, tiny_test, tiny_attack)
        assert a.acc == pytest.approx(b.acc)
        assert a.asr == pytest.approx(b.asr)
