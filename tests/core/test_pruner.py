"""Iterative pruning loop tests (paper §IV-B stopping rules)."""

import copy

import numpy as np
import pytest

from repro.core import GradientPruner
from repro.data.splits import defender_split
from repro.models import PruningMask
from repro.training import evaluate_accuracy


@pytest.fixture()
def pruning_setup(backdoored_tiny_model, tiny_reservoir, tiny_attack):
    clean_train, clean_val = defender_split(
        tiny_reservoir, spc=20, rng=np.random.default_rng(0)
    )
    model = copy.deepcopy(backdoored_tiny_model)
    return {
        "model": model,
        "backdoor_train": tiny_attack.triggered_with_true_labels(clean_train),
        "clean_val": clean_val,
        "backdoor_val": tiny_attack.triggered_with_true_labels(clean_val),
    }


class TestStoppingRules:
    def test_patience_stop(self, pruning_setup):
        pruner = GradientPruner(alpha=0.0, patience=2, max_rounds=50)
        history = pruner.prune(
            pruning_setup["model"],
            pruning_setup["backdoor_train"],
            pruning_setup["clean_val"],
            pruning_setup["backdoor_val"],
        )
        assert "did not improve" in history.stop_reason or "no prunable" in history.stop_reason

    def test_max_rounds_cap(self, pruning_setup):
        pruner = GradientPruner(alpha=0.0, patience=100, max_rounds=3)
        history = pruner.prune(
            pruning_setup["model"],
            pruning_setup["backdoor_train"],
            pruning_setup["clean_val"],
            pruning_setup["backdoor_val"],
        )
        assert history.num_pruned <= 3
        assert "max_rounds" in history.stop_reason

    def test_accuracy_floor_rolls_back(self, pruning_setup):
        # A validation set of pure noise keeps val accuracy near chance, so
        # the unreachable floor alpha=1.0 triggers at the first round and the
        # offending prune must be rolled back, leaving weights untouched.
        from repro.data import ImageDataset

        noise_rng = np.random.default_rng(0)
        noise_val = ImageDataset(
            noise_rng.uniform(0, 1, (12, 3, 8, 8)).astype(np.float32),
            noise_rng.integers(0, 3, 12),
        )
        pruner = GradientPruner(alpha=1.0, patience=10, max_rounds=10)
        model = pruning_setup["model"]
        before = {k: v.copy() for k, v in model.state_dict().items()}
        history = pruner.prune(
            model,
            pruning_setup["backdoor_train"],
            noise_val,
            pruning_setup["backdoor_val"],
        )
        assert history.rounds[0].rolled_back
        assert history.num_pruned == 0
        after = model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_alpha_derived_from_max_acc_drop(self, pruning_setup):
        pruner = GradientPruner(alpha=None, max_acc_drop=0.15, patience=3, max_rounds=30)
        history = pruner.prune(
            pruning_setup["model"],
            pruning_setup["backdoor_train"],
            pruning_setup["clean_val"],
            pruning_setup["backdoor_val"],
        )
        final_acc = evaluate_accuracy(pruning_setup["model"], pruning_setup["clean_val"])
        assert final_acc >= history.initial_val_accuracy - 0.15 - 1e-9

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            GradientPruner(alpha=2.0)
        with pytest.raises(ValueError):
            GradientPruner(patience=0)
        with pytest.raises(ValueError):
            GradientPruner(max_acc_drop=-0.1)


class TestPruningEffect:
    def test_prunes_into_mask(self, pruning_setup):
        mask = PruningMask(pruning_setup["model"])
        pruner = GradientPruner(alpha=0.0, patience=3, max_rounds=5)
        history = pruner.prune(
            pruning_setup["model"],
            pruning_setup["backdoor_train"],
            pruning_setup["clean_val"],
            pruning_setup["backdoor_val"],
            mask=mask,
        )
        assert len(mask) == history.num_pruned
        assert history.num_pruned >= 1

    def test_rounds_telemetry_complete(self, pruning_setup):
        pruner = GradientPruner(alpha=0.0, patience=2, max_rounds=10)
        history = pruner.prune(
            pruning_setup["model"],
            pruning_setup["backdoor_train"],
            pruning_setup["clean_val"],
            pruning_setup["backdoor_val"],
        )
        for record in history.rounds:
            assert record.score >= 0
            assert np.isfinite(record.val_unlearning_loss)
            assert 0 <= record.val_accuracy <= 1

    def test_no_filter_pruned_twice(self, pruning_setup):
        mask = PruningMask(pruning_setup["model"])
        pruner = GradientPruner(alpha=0.0, patience=5, max_rounds=15)
        history = pruner.prune(
            pruning_setup["model"],
            pruning_setup["backdoor_train"],
            pruning_setup["clean_val"],
            pruning_setup["backdoor_val"],
            mask=mask,
        )
        effective = [str(r.pruned) for r in history.rounds if not r.rolled_back]
        assert len(effective) == len(set(effective))
