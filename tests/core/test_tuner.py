"""Fine-tuning stage tests (paper §IV-C)."""

import copy

import numpy as np
import pytest

from repro.core import FineTuner
from repro.data.splits import defender_split
from repro.models import FilterRef, PruningMask
from repro.training import evaluate_accuracy


@pytest.fixture()
def tune_setup(backdoored_tiny_model, tiny_reservoir, tiny_attack):
    clean_train, clean_val = defender_split(
        tiny_reservoir, spc=20, rng=np.random.default_rng(1)
    )
    return {
        "model": copy.deepcopy(backdoored_tiny_model),
        "clean_train": clean_train,
        "clean_val": clean_val,
        "backdoor_train": tiny_attack.triggered_with_true_labels(clean_train),
        "backdoor_val": tiny_attack.triggered_with_true_labels(clean_val),
    }


class TestFineTuner:
    def test_improves_or_keeps_val_loss(self, tune_setup):
        tuner = FineTuner(max_epochs=6, patience=3, lr=0.02, seed=0)
        history = tuner.tune(
            tune_setup["model"], tune_setup["clean_train"], tune_setup["clean_val"],
            tune_setup["backdoor_train"], tune_setup["backdoor_val"],
        )
        assert len(history.train_losses) >= 1
        assert len(history.val_losses) == len(history.train_losses)
        # Best-state restoration: the final model can't be worse than start.

    def test_early_stops_on_patience(self, tune_setup):
        tuner = FineTuner(max_epochs=50, patience=1, lr=1e-6, seed=0)
        history = tuner.tune(
            tune_setup["model"], tune_setup["clean_train"], tune_setup["clean_val"],
        )
        assert len(history.train_losses) < 50
        assert "did not improve" in history.stop_reason

    def test_max_epochs_respected(self, tune_setup):
        tuner = FineTuner(max_epochs=2, patience=10, seed=0)
        history = tuner.tune(
            tune_setup["model"], tune_setup["clean_train"], tune_setup["clean_val"],
        )
        assert len(history.train_losses) <= 2

    def test_mask_preserved_through_tuning(self, tune_setup):
        model = tune_setup["model"]
        mask = PruningMask(model)
        conv_name = next(name for name, _ in __import__(
            "repro.models", fromlist=["iter_conv_layers"]
        ).iter_conv_layers(model))
        ref = FilterRef(conv_name, 0)
        mask.prune(ref)
        tuner = FineTuner(max_epochs=3, patience=5, lr=0.05, seed=0)
        tuner.tune(
            model, tune_setup["clean_train"], tune_setup["clean_val"], mask=mask,
        )
        convs = dict(__import__("repro.models", fromlist=["iter_conv_layers"]).iter_conv_layers(model))
        assert np.all(convs[conv_name].weight.data[0] == 0)

    def test_restores_best_state(self, tune_setup):
        # With a huge LR, late epochs diverge; restoration must return the
        # best-validation-loss weights, not the last ones.
        tuner = FineTuner(max_epochs=6, patience=6, lr=2.0, seed=0)
        model = tune_setup["model"]
        history = tuner.tune(
            model, tune_setup["clean_train"], tune_setup["clean_val"],
        )
        from repro.core.tuner import _dataset_loss

        final_loss = _dataset_loss(model, tune_setup["clean_val"], 64)
        assert final_loss <= min(history.val_losses) + 0.5

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            FineTuner(patience=0)
        with pytest.raises(ValueError):
            FineTuner(max_epochs=0)

    def test_clean_only_mode(self, tune_setup):
        tuner = FineTuner(max_epochs=3, patience=3, seed=0)
        history = tuner.tune(
            tune_setup["model"], tune_setup["clean_train"], tune_setup["clean_val"],
            backdoor_train=None, backdoor_val=None,
        )
        assert len(history.train_losses) >= 1

    def test_model_left_in_eval_mode(self, tune_setup):
        tuner = FineTuner(max_epochs=2, patience=3, seed=0)
        tuner.tune(tune_setup["model"], tune_setup["clean_train"], tune_setup["clean_val"])
        assert not tune_setup["model"].training
