"""Stopping policies: unit semantics plus pruner integration (adaptive vs P_p)."""

import copy

import numpy as np
import pytest

from repro.core import (
    STOPPING_POLICIES,
    AdaptiveStopping,
    GradientPruner,
    PatienceStopping,
    RoundSignals,
    make_stopping,
)
from repro.data.splits import defender_split
from repro.telemetry import MemorySink, TelemetryBus, set_bus


def _signals(round_index, val_loss, top_score=float("nan")):
    return RoundSignals(
        round_index=round_index, val_loss=val_loss, val_accuracy=0.9, top_score=top_score
    )


class TestPatienceStopping:
    def test_stops_after_patience_flat_rounds(self):
        policy = PatienceStopping(patience=3)
        policy.reset(1.0)
        reasons = [policy.update(_signals(i, 1.0)) for i in range(3)]
        assert reasons[:2] == [None, None]
        assert "did not improve for 3 rounds" in reasons[2]

    def test_improvement_resets_counter(self):
        policy = PatienceStopping(patience=2)
        policy.reset(1.0)
        assert policy.update(_signals(0, 1.1)) is None
        assert policy.update(_signals(1, 0.9)) is None  # new best resets
        assert policy.update(_signals(2, 0.95)) is None
        assert policy.update(_signals(3, 0.95)) is not None

    def test_initial_loss_is_the_first_best(self):
        policy = PatienceStopping(patience=1)
        policy.reset(0.5)
        # Not better than the initial loss -> immediate stop at patience=1.
        assert policy.update(_signals(0, 0.5)) is not None

    def test_state_is_json_clean(self):
        import json

        policy = PatienceStopping(patience=2)
        policy.reset(1.0)
        policy.update(_signals(0, 2.0))
        json.dumps(policy.state())
        assert policy.state()["since_improvement"] == 1

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            PatienceStopping(patience=0)


class TestAdaptiveStopping:
    def test_plateau_fires_when_window_shows_no_improvement(self):
        policy = AdaptiveStopping(window=3, rel_improvement=1e-3, min_rounds=0)
        policy.reset(1.0)
        reasons = [policy.update(_signals(i, 1.0)) for i in range(6)]
        fired = [r for r in reasons if r]
        assert fired and "plateau" in fired[0]
        # Fires exactly when the best-history window fills: round window+1.
        assert reasons[3] is not None

    def test_steady_improvement_never_plateaus(self):
        policy = AdaptiveStopping(window=3, rel_improvement=1e-3, min_rounds=0)
        policy.reset(1.0)
        loss = 1.0
        for i in range(20):
            loss *= 0.9  # 10% per round, far above rel_improvement
            assert policy.update(_signals(i, loss)) is None

    def test_score_floor_fires(self):
        policy = AdaptiveStopping(window=50, score_floor=0.1, min_rounds=0)
        policy.reset(1.0)
        assert policy.update(_signals(0, 0.9, top_score=10.0)) is None
        assert policy.update(_signals(1, 0.8, top_score=5.0)) is None
        reason = policy.update(_signals(2, 0.7, top_score=0.5))
        assert reason is not None and "score mass exhausted" in reason

    def test_nan_scores_ignored(self):
        policy = AdaptiveStopping(window=50, score_floor=0.5, min_rounds=0)
        policy.reset(1.0)
        for i in range(10):
            assert policy.update(_signals(i, 0.9 - 0.05 * i)) is None

    def test_min_rounds_grace_period(self):
        policy = AdaptiveStopping(window=1, rel_improvement=1.0, min_rounds=4)
        policy.reset(1.0)
        for i in range(4):
            assert policy.update(_signals(i, 1.0)) is None
        assert policy.update(_signals(4, 1.0)) is not None

    def test_never_slower_than_patience_on_same_trajectory(self):
        """window < P_p ⇒ adaptive stops no later than patience, any trajectory."""
        rng = np.random.default_rng(7)
        for trial in range(20):
            losses = list(rng.uniform(0.1, 2.0, size=60))
            patience, adaptive = PatienceStopping(10), AdaptiveStopping(
                window=5, rel_improvement=1e-3, min_rounds=2
            )
            patience.reset(losses[0])
            adaptive.reset(losses[0])
            stop_p = stop_a = None
            for i, loss in enumerate(losses):
                if stop_p is None and patience.update(_signals(i, loss)):
                    stop_p = i
                if stop_a is None and adaptive.update(_signals(i, loss)):
                    stop_a = i
            if stop_p is not None:
                assert stop_a is not None and stop_a <= stop_p

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaptiveStopping(window=0)
        with pytest.raises(ValueError):
            AdaptiveStopping(rel_improvement=-1)
        with pytest.raises(ValueError):
            AdaptiveStopping(score_floor=1.0)
        with pytest.raises(ValueError):
            AdaptiveStopping(min_rounds=-1)


class TestMakeStopping:
    def test_registry_names(self):
        assert set(STOPPING_POLICIES) == {"patience", "adaptive"}
        assert make_stopping("patience", patience=4).patience == 4
        assert make_stopping("adaptive", window=7).window == 7

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_stopping("magic")


@pytest.fixture()
def pruning_setup(backdoored_tiny_model, tiny_reservoir, tiny_attack):
    clean_train, clean_val = defender_split(
        tiny_reservoir, spc=20, rng=np.random.default_rng(0)
    )
    return {
        "model": backdoored_tiny_model,
        "backdoor_train": tiny_attack.triggered_with_true_labels(clean_train),
        "clean_val": clean_val,
        "backdoor_val": tiny_attack.triggered_with_true_labels(clean_val),
    }


def _run(setup, stopping=None, patience=10):
    model = copy.deepcopy(setup["model"])
    pruner = GradientPruner(
        alpha=0.0, patience=patience, max_rounds=60, stopping=stopping
    )
    history = pruner.prune(
        model,
        setup["backdoor_train"],
        setup["clean_val"],
        setup["backdoor_val"],
    )
    return model, history


class TestPrunerIntegration:
    def test_adaptive_no_more_rounds_than_fixed_patience(self, pruning_setup):
        _, fixed = _run(pruning_setup, stopping=None, patience=10)
        _, adaptive = _run(
            pruning_setup, stopping=AdaptiveStopping(window=5, rel_improvement=1e-3)
        )
        assert adaptive.stop_policy == "adaptive"
        assert fixed.stop_policy == "patience"
        assert len(adaptive.rounds) <= len(fixed.rounds)

    def test_adaptive_history_records_policy_and_reason(self, pruning_setup):
        _, history = _run(
            pruning_setup, stopping=AdaptiveStopping(window=2, rel_improvement=1e-3)
        )
        assert history.stop_policy == "adaptive"
        assert history.stop_reason

    def test_prune_round_events_stream_policy_state(self, pruning_setup):
        sink = MemorySink()
        fresh = TelemetryBus()
        fresh.attach(sink)
        previous = set_bus(fresh)
        try:
            _run(pruning_setup, stopping=AdaptiveStopping(window=3))
        finally:
            set_bus(previous)
        started = sink.named("prune_started")
        rounds = sink.named("prune_round")
        finished = sink.named("prune_finished")
        assert len(started) == 1 and started[0].fields["policy"] == "adaptive"
        assert rounds and all("policy_state" in e.fields for e in rounds)
        assert len(finished) == 1
        assert finished[0].fields["rounds"] == len(rounds)
