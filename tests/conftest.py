"""Shared fixtures: tiny models and datasets sized for fast unit tests.

Defense/core tests use an 8x8-image, 3-class task and a two-block CNN so a
full attack→defense round trip stays under a few seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import BadNetsAttack, train_backdoored_model
from repro.data.dataset import ImageDataset
from repro.models.preact_resnet import PreActResNet18
from repro.nn import (
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Tensor,
)
from repro.training import TrainConfig

IMAGE_SHAPE = (3, 8, 8)
NUM_CLASSES = 3


class TinyConvNet(Module):
    """Two conv blocks + linear head, small enough for sub-second training."""

    def __init__(self, num_classes: int = NUM_CLASSES, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.features = Sequential(
            Conv2d(3, 8, 3, padding=1, rng=rng),
            BatchNorm2d(8),
            ReLU(),
            MaxPool2d(2),
            Conv2d(8, 16, 3, padding=1, rng=rng),
            BatchNorm2d(16),
            ReLU(),
            AdaptiveAvgPool2d(1),
            Flatten(),
        )
        self.fc = Linear(16, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.features(x))


def make_tiny_dataset(n: int, seed: int = 0, num_classes: int = NUM_CLASSES) -> ImageDataset:
    """Separable synthetic task: class = dominant color channel + blob position."""
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    rng.shuffle(labels)
    images = rng.uniform(0.0, 0.3, size=(n, *IMAGE_SHAPE)).astype(np.float32)
    for i, cls in enumerate(labels):
        channel = int(cls) % 3
        images[i, channel, 2:6, 2:6] += 0.6
    return ImageDataset(np.clip(images, 0, 1), labels)


@pytest.fixture(scope="session")
def tiny_train() -> ImageDataset:
    return make_tiny_dataset(180, seed=1)


@pytest.fixture(scope="session")
def tiny_test() -> ImageDataset:
    return make_tiny_dataset(90, seed=2)


@pytest.fixture(scope="session")
def tiny_reservoir() -> ImageDataset:
    return make_tiny_dataset(120, seed=3)


@pytest.fixture(scope="session")
def tiny_attack() -> BadNetsAttack:
    return BadNetsAttack(target_class=0, image_shape=IMAGE_SHAPE, patch_size=2)


@pytest.fixture(scope="session")
def backdoored_tiny_model(tiny_train, tiny_attack):
    """A TinyConvNet trained on BadNets-poisoned data (shared, read-only).

    Tests that mutate the model must deepcopy it.
    """
    model = TinyConvNet(seed=0)
    config = TrainConfig(epochs=8, batch_size=32, lr=0.08, shuffle_seed=0)
    train_backdoored_model(
        model, tiny_train, tiny_attack, poison_ratio=0.15, config=config,
        rng=np.random.default_rng(3),
    )
    return model


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
