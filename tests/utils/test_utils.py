"""Tests for seeding and logging utilities."""

import logging

import numpy as np
import pytest

from repro.utils import Timer, derive_seed, get_logger, make_rng, seed_sequence


class TestSeeding:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "attack", 1) == derive_seed(42, "attack", 1)

    def test_derive_seed_varies_with_labels(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sequence_count_and_uniqueness(self):
        seeds = list(seed_sequence(0, 10))
        assert len(seeds) == 10
        assert len(set(seeds)) == 10

    def test_seed_sequence_reproducible(self):
        assert list(seed_sequence(5, 4)) == list(seed_sequence(5, 4))

    def test_make_rng(self):
        a = make_rng(3).random(4)
        b = make_rng(3).random(4)
        assert np.array_equal(a, b)


class TestLogging:
    def test_get_logger_singleton_handler(self):
        a = get_logger("repro.test")
        b = get_logger("repro.test2")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
        assert a.name == "repro.test"
        assert b.name == "repro.test2"

    def test_timer_measures(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0

    def test_timer_logs_with_label(self, caplog):
        # The library logger does not propagate to root (by design), so the
        # capture handler must be attached to it directly.
        logger = get_logger("repro.timer_test")
        logger.addHandler(caplog.handler)
        try:
            with Timer("step", logger=logger):
                pass
        finally:
            logger.removeHandler(caplog.handler)
        assert any("step took" in r.message for r in caplog.records)
