"""Tests for seeding and logging utilities."""

import logging

import numpy as np
import pytest

from repro.utils import Timer, derive_seed, get_logger, make_rng, seed_sequence


class TestSeeding:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "attack", 1) == derive_seed(42, "attack", 1)

    def test_derive_seed_varies_with_labels(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sequence_count_and_uniqueness(self):
        seeds = list(seed_sequence(0, 10))
        assert len(seeds) == 10
        assert len(set(seeds)) == 10

    def test_seed_sequence_reproducible(self):
        assert list(seed_sequence(5, 4)) == list(seed_sequence(5, 4))

    def test_make_rng(self):
        a = make_rng(3).random(4)
        b = make_rng(3).random(4)
        assert np.array_equal(a, b)


class TestLogging:
    def test_get_logger_singleton_handler(self):
        a = get_logger("repro.test")
        b = get_logger("repro.test2")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
        assert a.name == "repro.test"
        assert b.name == "repro.test2"

    def test_timer_measures(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0

    def test_timer_logs_with_label(self, caplog):
        # The library logger does not propagate to root (by design), so the
        # capture handler must be attached to it directly.
        logger = get_logger("repro.timer_test")
        logger.addHandler(caplog.handler)
        try:
            with Timer("step", logger=logger):
                pass
        finally:
            logger.removeHandler(caplog.handler)
        assert any("step took" in r.message for r in caplog.records)


class TestLoggingLevels:
    def test_per_call_level_honored_after_first_call(self):
        # The old implementation latched the first caller's level globally
        # and silently ignored every later ``level`` argument.
        get_logger("repro.lvl_a")
        logger = get_logger("repro.lvl_b", logging.DEBUG)
        assert logger.getEffectiveLevel() == logging.DEBUG
        logger = get_logger("repro.lvl_b", logging.WARNING)
        assert logger.getEffectiveLevel() == logging.WARNING

    def test_env_variable_sets_root_level(self, monkeypatch):
        from repro.utils.logging import LOG_LEVEL_ENV

        monkeypatch.setenv(LOG_LEVEL_ENV, "DEBUG")
        get_logger("repro.env_test")
        assert logging.getLogger("repro").level == logging.DEBUG
        monkeypatch.setenv(LOG_LEVEL_ENV, "30")
        get_logger("repro.env_test")
        assert logging.getLogger("repro").level == logging.WARNING
        monkeypatch.setenv(LOG_LEVEL_ENV, "not-a-level")
        get_logger("repro.env_test")  # invalid value: ignored, no crash

    def test_env_cleanup(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        logging.getLogger("repro").setLevel(logging.INFO)
        assert get_logger("repro").getEffectiveLevel() == logging.INFO


class TestLogEvent:
    def test_structured_line(self, caplog):
        from repro.utils import log_event

        logger = get_logger("repro.event_test")
        logger.addHandler(caplog.handler)
        try:
            log_event(logger, "finished", task="trial:abc", elapsed=1.23456, worker=2)
        finally:
            logger.removeHandler(caplog.handler)
        line = caplog.records[-1].message
        assert line.startswith("event=finished")
        assert "task=trial:abc" in line
        assert "elapsed=1.235" in line
        assert "worker=2" in line

    def test_values_with_spaces_quoted(self, caplog):
        from repro.utils import log_event

        logger = get_logger("repro.event_test2")
        logger.addHandler(caplog.handler)
        try:
            log_event(logger, "failed", error="worker died (killed or crashed)")
        finally:
            logger.removeHandler(caplog.handler)
        assert 'error="worker died (killed or crashed)"' in caplog.records[-1].message

    def _render(self, caplog, **fields):
        from repro.utils import log_event

        logger = get_logger("repro.event_fmt")
        logger.addHandler(caplog.handler)
        try:
            log_event(logger, "fmt", **fields)
        finally:
            logger.removeHandler(caplog.handler)
        return caplog.records[-1].message

    def test_nan_and_inf_render_as_words(self, caplog):
        line = self._render(
            caplog, loss=float("nan"), hi=float("inf"), lo=float("-inf")
        )
        assert "loss=nan" in line
        assert "hi=inf" in line
        assert "lo=-inf" in line

    def test_nested_dict_renders_compact_json(self, caplog):
        line = self._render(caplog, state={"b": 2, "a": [1, 2]})
        # Sorted keys, no spaces: one shell-greppable token per field.
        assert 'state={"a":[1,2],"b":2}' in line

    def test_tuple_renders_as_json_list(self, caplog):
        line = self._render(caplog, shape=(3, 32, 32))
        assert "shape=[3,32,32]" in line

    def test_unjsonable_nested_value_falls_back_to_str(self, caplog):
        class Odd:
            def __str__(self):
                return "odd"

        line = self._render(caplog, payload={"obj": Odd()})
        assert 'payload={"obj":"odd"}' in line

    def test_unicode_values_not_escaped(self, caplog):
        line = self._render(caplog, note="ξ score идёт")
        assert 'note="ξ score идёт"' in line

    def test_empty_string_quoted(self, caplog):
        assert 'name=""' in self._render(caplog, name="")


class TestGetLoggerReinit:
    def test_reconfigures_after_handlers_cleared_without_duplicating(self):
        root = logging.getLogger("repro")
        get_logger("repro.reinit_a")
        assert len(root.handlers) == 1
        # A second call must not stack a second handler...
        get_logger("repro.reinit_b")
        assert len(root.handlers) == 1
        # ...and a cleared logger (test teardown, reload) must be repaired,
        # again exactly once.
        saved = list(root.handlers)
        root.handlers.clear()
        try:
            get_logger("repro.reinit_c")
            assert len(root.handlers) == 1
            get_logger("repro.reinit_d")
            assert len(root.handlers) == 1
        finally:
            root.handlers[:] = saved


class TestPercentiles:
    def test_known_quantiles(self):
        from repro.utils import percentiles

        samples = list(range(1, 101))  # 1..100
        result = percentiles(samples, (0, 50, 100))
        assert result["p0"] == 1.0
        assert result["p50"] == pytest.approx(50.5)
        assert result["p100"] == 100.0

    def test_linear_interpolation(self):
        from repro.utils import percentiles

        # Positions between samples interpolate linearly (numpy 'linear').
        samples = [10.0, 20.0, 30.0, 40.0]
        expected = np.percentile(samples, [25, 75, 99])
        result = percentiles(samples, (25, 75, 99))
        assert result["p25"] == pytest.approx(expected[0])
        assert result["p75"] == pytest.approx(expected[1])
        assert result["p99"] == pytest.approx(expected[2])

    def test_order_independent_and_single_sample(self):
        from repro.utils import percentiles

        assert percentiles([3.0, 1.0, 2.0], (50,)) == percentiles([1.0, 2.0, 3.0], (50,))
        assert percentiles([7.0], (1, 50, 99)) == {"p1": 7.0, "p50": 7.0, "p99": 7.0}

    def test_empty_and_out_of_range(self):
        from repro.utils import percentiles

        assert percentiles([], (50,)) == {}
        with pytest.raises(ValueError, match="out of range"):
            percentiles([1.0], (101,))


class TestLatencySummary:
    def test_summary_fields(self):
        from repro.utils import latency_summary

        summary = latency_summary([2.0, 4.0, 6.0, 8.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(5.0)
        assert summary["min"] == 2.0 and summary["max"] == 8.0
        assert {"p50", "p90", "p99"} <= set(summary)

    def test_empty_is_json_clean(self):
        from repro.utils import latency_summary

        assert latency_summary([]) == {"count": 0}

    def test_custom_quantiles(self):
        from repro.utils import latency_summary

        summary = latency_summary([1.0, 2.0], qs=(50.0,))
        assert "p50" in summary and "p99" not in summary


class TestHardTimeout:
    def test_passthrough_when_fast(self):
        from repro.utils import hard_timeout

        with hard_timeout(30.0, "should not fire"):
            result = 1 + 1
        assert result == 2

    def test_fires_on_blocking_wait(self):
        import time as _time

        from repro.utils import hard_timeout

        with pytest.raises(TimeoutError, match="slept too long"):
            with hard_timeout(0.2, "slept too long"):
                _time.sleep(5.0)

    def test_exceptions_propagate_and_timer_is_cleared(self):
        import time as _time

        from repro.utils import hard_timeout

        with pytest.raises(KeyError):
            with hard_timeout(0.2, "never"):
                raise KeyError("inner")
        _time.sleep(0.3)  # a leaked timer would fire here and kill the test
