"""Batch transform tests."""

import numpy as np
import pytest

from repro.data import Compose, Cutout, Normalize, RandomCrop, RandomHorizontalFlip


def batch(n=4, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, (n, 3, 8, 8)).astype(np.float32)


RNG = np.random.default_rng(42)


class TestRandomCrop:
    def test_preserves_shape(self):
        out = RandomCrop(2)(batch(), RNG)
        assert out.shape == (4, 3, 8, 8)

    def test_content_is_shifted_window(self):
        x = batch()
        out = RandomCrop(1)(x, np.random.default_rng(0))
        # Every output must still draw values from the padded input range.
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestFlip:
    def test_p_one_always_flips(self):
        x = batch()
        out = RandomHorizontalFlip(p=1.0)(x, RNG)
        assert np.array_equal(out, x[:, :, :, ::-1])

    def test_p_zero_never_flips(self):
        x = batch()
        out = RandomHorizontalFlip(p=0.0)(x, RNG)
        assert np.array_equal(out, x)

    def test_does_not_mutate_input(self):
        x = batch()
        before = x.copy()
        RandomHorizontalFlip(p=1.0)(x, RNG)
        assert np.array_equal(x, before)


class TestNormalize:
    def test_standardizes(self):
        x = batch()
        mean = x.mean(axis=(0, 2, 3))
        std = x.std(axis=(0, 2, 3))
        out = Normalize(mean, std)(x, RNG)
        assert abs(out.mean()) < 1e-5
        assert out.std() == pytest.approx(1.0, abs=0.01)


class TestCutout:
    def test_zero_patch_present(self):
        x = np.ones((2, 3, 8, 8), dtype=np.float32)
        out = Cutout(4)(x, np.random.default_rng(0))
        assert (out == 0).sum() == 2 * 3 * 16

    def test_input_untouched(self):
        x = np.ones((1, 3, 8, 8), dtype=np.float32)
        Cutout(2)(x, RNG)
        assert np.all(x == 1.0)


class TestCompose:
    def test_applies_in_order(self):
        compose = Compose([
            lambda b, r: b + 1.0,
            lambda b, r: b * 2.0,
        ])
        out = compose(np.zeros((1, 1, 2, 2), dtype=np.float32), RNG)
        assert np.all(out == 2.0)
