"""SPC sampling and defender-split protocol tests (paper §V-B)."""

import numpy as np
import pytest

from repro.data import ImageDataset, defender_split, spc_subset, train_val_split


def make_dataset(per_class=20, num_classes=5, seed=0):
    n = per_class * num_classes
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(num_classes), per_class)
    rng.shuffle(labels)
    return ImageDataset(rng.uniform(0, 1, (n, 3, 4, 4)).astype(np.float32), labels)


class TestSpcSubset:
    def test_exact_samples_per_class(self):
        subset = spc_subset(make_dataset(), spc=3, rng=np.random.default_rng(0))
        assert subset.class_counts().tolist() == [3] * 5

    def test_no_replacement(self):
        ds = make_dataset(per_class=4)
        subset = spc_subset(ds, spc=4, rng=np.random.default_rng(0))
        # Drawing all samples per class: every original index used once.
        assert len(subset) == 20

    def test_insufficient_class_raises(self):
        with pytest.raises(ValueError, match="cannot draw"):
            spc_subset(make_dataset(per_class=2), spc=5)

    def test_nonpositive_spc_raises(self):
        with pytest.raises(ValueError):
            spc_subset(make_dataset(), spc=0)

    def test_deterministic_with_rng(self):
        ds = make_dataset()
        a = spc_subset(ds, 2, np.random.default_rng(7))
        b = spc_subset(ds, 2, np.random.default_rng(7))
        assert np.array_equal(a.images, b.images)


class TestTrainValSplit:
    def test_sizes(self):
        train, val = train_val_split(make_dataset(), 0.25, np.random.default_rng(0))
        assert len(train) == 75
        assert len(val) == 25

    def test_partition_is_disjoint_and_complete(self):
        ds = make_dataset(per_class=4)
        train, val = train_val_split(ds, 0.5, np.random.default_rng(1))
        assert len(train) + len(val) == len(ds)

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError):
            train_val_split(make_dataset(), 1.5)

    def test_always_leaves_train_samples(self):
        ds = make_dataset(per_class=1, num_classes=2)
        train, val = train_val_split(ds, 0.9, np.random.default_rng(0))
        assert len(train) >= 1
        assert len(val) >= 1


class TestDefenderSplit:
    def test_spc2_one_and_one(self):
        train, val = defender_split(make_dataset(), spc=2, rng=np.random.default_rng(0))
        assert train.class_counts().tolist() == [1] * 5
        assert val.class_counts().tolist() == [1] * 5

    def test_spc10_stratified_ten_percent(self):
        train, val = defender_split(make_dataset(), spc=10, rng=np.random.default_rng(0))
        assert train.class_counts().tolist() == [9] * 5
        assert val.class_counts().tolist() == [1] * 5

    def test_spc100_split(self):
        ds = make_dataset(per_class=120, num_classes=3)
        train, val = defender_split(ds, spc=100, rng=np.random.default_rng(0))
        assert train.class_counts().tolist() == [90] * 3
        assert val.class_counts().tolist() == [10] * 3

    def test_total_budget_respected(self):
        train, val = defender_split(make_dataset(), spc=4, rng=np.random.default_rng(2))
        assert len(train) + len(val) == 4 * 5

    def test_different_rng_different_subset(self):
        ds = make_dataset()
        t1, _ = defender_split(ds, 2, np.random.default_rng(1))
        t2, _ = defender_split(ds, 2, np.random.default_rng(2))
        assert not np.array_equal(t1.images, t2.images)
