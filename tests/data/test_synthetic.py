"""Synthetic dataset generator tests: determinism, learnability proxies."""

import numpy as np
import pytest

from repro.data import make_synth_cifar, make_synth_gtsrb


class TestSynthCifar:
    def test_shapes_and_range(self):
        train, test = make_synth_cifar(n_train=50, n_test=20, seed=0)
        assert train.images.shape == (50, 3, 32, 32)
        assert test.images.shape == (20, 3, 32, 32)
        assert train.images.min() >= 0.0
        assert train.images.max() <= 1.0

    def test_deterministic_by_seed(self):
        a, _ = make_synth_cifar(n_train=10, n_test=2, seed=5)
        b, _ = make_synth_cifar(n_train=10, n_test=2, seed=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_seed_changes_distribution(self):
        a, _ = make_synth_cifar(n_train=10, n_test=2, seed=1)
        b, _ = make_synth_cifar(n_train=10, n_test=2, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_classes_balanced(self):
        train, _ = make_synth_cifar(n_train=100, n_test=10, num_classes=10)
        assert train.class_counts().tolist() == [10] * 10

    def test_train_test_share_distribution(self):
        # Same class prototypes: per-class mean images should correlate strongly.
        train, test = make_synth_cifar(n_train=400, n_test=200, seed=3)
        for cls in range(3):
            mu_train = train.images[train.labels == cls].mean(axis=0).ravel()
            mu_test = test.images[test.labels == cls].mean(axis=0).ravel()
            corr = np.corrcoef(mu_train, mu_test)[0, 1]
            assert corr > 0.8

    def test_classes_are_distinct(self):
        train, _ = make_synth_cifar(n_train=300, n_test=10, seed=0)
        mu0 = train.images[train.labels == 0].mean(axis=0).ravel()
        mu1 = train.images[train.labels == 1].mean(axis=0).ravel()
        assert np.abs(mu0 - mu1).mean() > 0.02

    def test_intra_class_variation_exists(self):
        train, _ = make_synth_cifar(n_train=200, n_test=10, seed=0)
        class0 = train.images[train.labels == 0]
        assert class0.std(axis=0).mean() > 0.01


class TestSynthGtsrb:
    def test_shapes_and_classes(self):
        train, test = make_synth_gtsrb(n_train=60, n_test=24, num_classes=12)
        assert train.num_classes == 12
        assert train.images.shape == (60, 3, 32, 32)

    def test_full_43_classes_supported(self):
        train, _ = make_synth_gtsrb(n_train=86, n_test=43, num_classes=43)
        assert train.num_classes == 43

    def test_deterministic(self):
        a, _ = make_synth_gtsrb(n_train=10, n_test=2, seed=9)
        b, _ = make_synth_gtsrb(n_train=10, n_test=2, seed=9)
        assert np.array_equal(a.images, b.images)

    def test_glyph_shapes_differ_between_classes(self):
        train, _ = make_synth_gtsrb(n_train=240, n_test=10, num_classes=8, seed=0)
        means = [train.images[train.labels == c].mean(axis=0) for c in range(8)]
        # All pairwise class means must be distinguishable.
        for i in range(8):
            for j in range(i + 1, 8):
                assert np.abs(means[i] - means[j]).mean() > 0.01
