"""Dataset container and DataLoader tests."""

import numpy as np
import pytest

from repro.data import DataLoader, ImageDataset


def make_dataset(n=20, num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    images = rng.uniform(0, 1, (n, 3, 4, 4)).astype(np.float32)
    labels = np.arange(n) % num_classes
    return ImageDataset(images, labels)


class TestImageDataset:
    def test_length_and_shapes(self):
        ds = make_dataset(10)
        assert len(ds) == 10
        assert ds.image_shape == (3, 4, 4)
        assert ds.num_classes == 4

    def test_bad_ndim_raises(self):
        with pytest.raises(ValueError, match="N, C, H, W"):
            ImageDataset(np.zeros((5, 4, 4)), np.zeros(5))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="disagree"):
            ImageDataset(np.zeros((5, 3, 4, 4)), np.zeros(4))

    def test_subset_copies(self):
        ds = make_dataset()
        sub = ds.subset([0, 1])
        sub.images[0] = 0.0
        assert not np.all(ds.images[0] == 0.0)

    def test_concat(self):
        a = make_dataset(5)
        b = make_dataset(7, seed=1)
        c = a.concat(b)
        assert len(c) == 12
        assert np.array_equal(c.images[:5], a.images)

    def test_with_labels(self):
        ds = make_dataset(6)
        relabeled = ds.with_labels(np.zeros(6, dtype=np.int64))
        assert relabeled.labels.sum() == 0
        assert np.array_equal(relabeled.images, ds.images)

    def test_class_counts(self):
        ds = make_dataset(8, num_classes=4)
        assert ds.class_counts().tolist() == [2, 2, 2, 2]

    def test_getitem_fancy(self):
        ds = make_dataset()
        images, labels = ds[np.array([1, 3])]
        assert images.shape == (2, 3, 4, 4)
        assert labels.shape == (2,)


class TestDataLoader:
    def test_batch_count(self):
        loader = DataLoader(make_dataset(10), batch_size=3)
        assert len(loader) == 4
        assert sum(1 for _ in loader) == 4

    def test_drop_last(self):
        loader = DataLoader(make_dataset(10), batch_size=3, drop_last=True)
        assert len(loader) == 3
        sizes = [len(labels) for _, labels in loader]
        assert sizes == [3, 3, 3]

    def test_covers_all_samples(self):
        loader = DataLoader(make_dataset(10), batch_size=4, shuffle=True,
                            rng=np.random.default_rng(0))
        seen = np.concatenate([labels for _, labels in loader])
        assert len(seen) == 10

    def test_shuffle_deterministic_per_rng(self):
        ds = make_dataset(16)
        a = [l.tolist() for _, l in DataLoader(ds, 4, True, np.random.default_rng(5))]
        b = [l.tolist() for _, l in DataLoader(ds, 4, True, np.random.default_rng(5))]
        assert a == b

    def test_shuffle_changes_order_between_epochs(self):
        ds = make_dataset(32)
        loader = DataLoader(ds, 32, shuffle=True, rng=np.random.default_rng(0))
        first = next(iter(loader))[1].tolist()
        second = next(iter(loader))[1].tolist()
        assert first != second

    def test_transform_applied(self):
        loader = DataLoader(
            make_dataset(4), batch_size=2,
            transform=lambda batch, rng: batch * 0.0,
        )
        for images, _ in loader:
            assert np.all(images == 0)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)
