"""ModelRegistry: content addressing, aliases, load round trips, gc."""

import os

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.serving import ModelRegistry, state_fingerprint

from tests.conftest import TinyConvNet, make_tiny_dataset
from tests.serving.conftest import publish_tiny, tiny_factory


class TestContentAddressing:
    def test_same_weights_same_key(self, registry):
        key1 = publish_tiny(registry, seed=0)
        key2 = publish_tiny(registry, seed=0)
        assert key1 == key2
        assert registry.keys() == [key1]

    def test_different_weights_different_key(self, registry):
        assert publish_tiny(registry, seed=0) != publish_tiny(registry, seed=1)

    def test_state_fingerprint_order_independent(self):
        a = {"w": np.arange(4.0), "b": np.zeros(2)}
        b = {"b": np.zeros(2), "w": np.arange(4.0)}
        assert state_fingerprint(a) == state_fingerprint(b)
        b["w"] = b["w"] + 1
        assert state_fingerprint(a) != state_fingerprint(b)


class TestAliases:
    def test_publish_advances_alias(self, registry):
        key1 = publish_tiny(registry, seed=0)
        assert registry.resolve("default") == key1
        key2 = publish_tiny(registry, seed=1)
        assert registry.resolve("default") == key2

    def test_multiple_aliases_coexist(self, registry):
        stable = publish_tiny(registry, seed=0, alias="stable")
        canary = publish_tiny(registry, seed=1, alias="canary")
        assert registry.resolve("stable") == stable
        assert registry.resolve("canary") == canary

    def test_alias_to_unknown_key_rejected(self, registry):
        with pytest.raises(KeyError):
            registry.set_alias("default", "model-doesnotexist")

    def test_unset_alias_resolves_none(self, registry):
        assert registry.resolve("nope") is None

    def test_publish_without_alias_leaves_pointer_alone(self, registry):
        key1 = publish_tiny(registry, seed=0)
        registry.publish(
            TinyConvNet(seed=5), "tiny_convnet", alias=None,
            factory_kwargs={"num_classes": 3, "seed": 5},
        )
        assert registry.resolve("default") == key1


class TestGarbageCollection:
    def test_aliases_mapping(self, registry):
        stable = publish_tiny(registry, seed=0, alias="stable")
        canary = publish_tiny(registry, seed=1, alias="canary")
        assert registry.aliases() == {"stable": stable, "canary": canary}

    def test_gc_removes_unaliased_keeps_aliased(self, registry):
        live = publish_tiny(registry, seed=0)  # advances "default"
        orphan = publish_tiny(registry, seed=1, alias=None)
        report = registry.gc()
        assert report["removed"] == [orphan]
        assert live in report["kept"]
        assert report["freed_bytes"] > 0
        assert report["dry_run"] is False
        assert registry.keys() == [live]
        assert not os.path.exists(registry.store.path(orphan, ".npz"))
        assert not os.path.exists(registry.store.path(orphan, ".json"))
        # The survivor still loads.
        assert registry.load(live).key == live

    def test_gc_dry_run_touches_nothing(self, registry):
        publish_tiny(registry, seed=0)
        orphan = publish_tiny(registry, seed=1, alias=None)
        report = registry.gc(dry_run=True)
        assert report["removed"] == [orphan]
        assert report["dry_run"] is True
        assert report["freed_bytes"] > 0
        assert orphan in registry.keys()
        assert registry.load(orphan).key == orphan

    def test_gc_keep_pins_by_exact_key_and_prefix(self, registry):
        publish_tiny(registry, seed=0)
        pinned = publish_tiny(registry, seed=1, alias=None)
        prefixed = publish_tiny(registry, seed=2, alias=None)
        report = registry.gc(keep=[pinned, prefixed[:12]])
        assert report["removed"] == []
        assert set(registry.keys()) >= {pinned, prefixed}

    def test_gc_removes_sha256_sidecars(self, registry):
        orphan = publish_tiny(registry, seed=3, alias=None)
        sidecar = registry.store.path(orphan, ".npz") + ".sha256"
        assert os.path.exists(sidecar)
        registry.gc()
        assert not os.path.exists(sidecar)

    def test_gc_on_empty_registry(self, registry):
        report = registry.gc()
        assert report == {"removed": [], "kept": [], "freed_bytes": 0, "dry_run": False}


class TestLoad:
    def test_round_trip_reproduces_outputs(self, registry):
        model = TinyConvNet(seed=3)
        model.eval()
        key = registry.publish(
            model, "tiny_convnet", factory_kwargs={"num_classes": 3, "seed": 0}
        )
        loaded = registry.load(key)
        batch = Tensor(make_tiny_dataset(6, seed=9).images)
        with no_grad():
            expected = model(batch).data
            actual = loaded.model(batch).data
        np.testing.assert_allclose(actual, expected, rtol=1e-6, atol=1e-7)
        assert loaded.key == key
        assert loaded.manifest["arch"] == "tiny_convnet"

    def test_load_by_alias(self, registry):
        key = publish_tiny(registry, seed=0, alias="prod")
        assert registry.load("prod").key == key

    def test_load_unknown_raises(self, registry):
        with pytest.raises(KeyError, match="no checkpoint or alias"):
            registry.load("model-missing")

    def test_corrupt_checkpoint_surfaces_as_keyerror(self, registry):
        key = publish_tiny(registry, seed=0)
        path = registry.store.path(key, ".npz")
        with open(path, "r+b") as handle:
            handle.seek(8)
            handle.write(b"\xde\xad\xbe\xef")
        with pytest.raises(KeyError, match="missing or corrupt"):
            registry.load(key)

    def test_default_factory_is_model_zoo(self, tmp_path):
        from repro.models import build_model

        registry = ModelRegistry(str(tmp_path))
        model = build_model("preact_resnet18", num_classes=10, seed=0)
        key = registry.publish(
            model, "preact_resnet18",
            factory_kwargs={"num_classes": 10, "seed": 0},
        )
        loaded = registry.load(key)
        assert type(loaded.model).__name__ == type(model).__name__

    def test_factory_kwargs_respected(self, tmp_path):
        registry = ModelRegistry(str(tmp_path), factory=tiny_factory)
        key = registry.publish(
            TinyConvNet(seed=7), "tiny_convnet",
            factory_kwargs={"num_classes": 3, "seed": 7},
        )
        assert registry.load(key).model.num_classes == 3
