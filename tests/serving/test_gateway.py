"""ServingGateway: correctness, hot-swap under load, STRIP verdicts, drain."""

import threading
import time

import numpy as np
import pytest

from repro.nn import Module, Tensor, no_grad
from repro.serving import CLEAN, FILTERED, ModelRegistry, ServeConfig, ServingGateway

from tests.conftest import make_tiny_dataset
from tests.serving.conftest import publish_tiny


class TestBasicServing:
    def test_verdicts_match_direct_forward(self, gateway, registry, guard):
        images = make_tiny_dataset(10, seed=4).images
        reference = registry.load(gateway.active_key).model
        with no_grad():
            expected = reference(Tensor(images)).data.argmax(axis=-1)
        verdicts = [gateway.classify(img, timeout=30) for img in images]
        assert [v.label for v in verdicts] == list(expected)
        assert all(v.verdict == CLEAN for v in verdicts)  # strip off
        assert all(v.entropy is None for v in verdicts)
        assert all(v.model_key == gateway.active_key for v in verdicts)

    def test_micro_batching_aggregates_concurrent_requests(self, gateway, guard):
        images = make_tiny_dataset(16, seed=5).images
        futures = [gateway.submit(img) for img in images]
        verdicts = [f.result(timeout=30) for f in futures]
        assert len(verdicts) == 16
        # At least one batch aggregated multiple requests (max_batch=8).
        assert max(v.batch_size for v in verdicts) > 1

    def test_input_validation(self, gateway, guard):
        with pytest.raises(ValueError, match="one \\(C, H, W\\) image"):
            gateway.submit(np.zeros((4, 3, 8, 8), dtype=np.float32))
        # A singleton batch dimension is forgiven.
        verdict = gateway.classify(np.zeros((1, 3, 8, 8), dtype=np.float32), timeout=30)
        assert verdict.verdict == CLEAN

    def test_submit_before_start_rejected(self, registry, clean_pool):
        publish_tiny(registry)
        gateway = ServingGateway(registry, clean_pool=clean_pool)
        with pytest.raises(RuntimeError, match="not started"):
            gateway.submit(np.zeros((3, 8, 8), dtype=np.float32))

    def test_start_requires_alias(self, registry, clean_pool):
        gateway = ServingGateway(registry, alias="empty", clean_pool=clean_pool)
        with pytest.raises(KeyError, match="empty"):
            gateway.start()

    def test_stats_shape(self, gateway, guard):
        gateway.classify(make_tiny_dataset(1, seed=6).images[0], timeout=30)
        stats = gateway.stats()
        assert stats["served"] >= 1
        assert stats["model_key"] == gateway.active_key
        assert stats["latency_ms"]["count"] >= 1
        assert "p99" in stats["latency_ms"]
        assert stats["batcher"]["submitted"] >= 1
        assert set(stats["engine_totals"]) == {"calls", "inline_calls", "tiled_calls", "tiles"}


class TestHotSwap:
    def test_swap_changes_served_model(self, gateway, registry, guard):
        images = make_tiny_dataset(8, seed=7).images
        old_key = gateway.active_key
        new_key = publish_tiny(registry, seed=9)  # advances the alias
        assert gateway.swap() is True
        assert gateway.active_key == new_key != old_key
        reference = registry.load(new_key).model
        with no_grad():
            expected = reference(Tensor(images)).data.argmax(axis=-1)
        verdicts = [gateway.classify(img, timeout=30) for img in images]
        assert [v.label for v in verdicts] == list(expected)
        assert all(v.model_key == new_key for v in verdicts)

    def test_swap_same_key_is_noop(self, gateway, guard):
        assert gateway.swap() is False
        assert gateway.stats()["swaps"] == 0

    def test_swap_under_load_drops_nothing(self, gateway, registry, guard):
        """The acceptance-criteria swap test: continuous traffic across a
        checkpoint swap; every request resolves, every verdict is attributed
        to exactly the old or the new checkpoint, and both sides appear."""
        images = make_tiny_dataset(40, seed=8).images
        old_key = gateway.active_key
        futures = []
        feeder_done = threading.Event()

        def feed():
            for img in images:
                futures.append(gateway.submit(img))
                time.sleep(0.002)  # keep traffic in flight across the swap
            feeder_done.set()

        feeder = threading.Thread(target=feed)
        feeder.start()
        while len(futures) < 8:  # let traffic establish
            time.sleep(0.001)
        new_key = publish_tiny(registry, seed=13)
        assert gateway.swap() is True
        feeder_done.wait(timeout=30)
        feeder.join(timeout=30)
        verdicts = [f.result(timeout=30) for f in futures]

        assert len(verdicts) == len(images)  # zero dropped requests
        keys = {v.model_key for v in verdicts}
        assert keys <= {old_key, new_key}  # never a third/partial model
        assert new_key in keys  # the swap actually took over
        # Post-swap requests are never misrouted back to the old model.
        switch = next(i for i, v in enumerate(verdicts) if v.model_key == new_key)
        assert all(v.model_key == new_key for v in verdicts[switch:])
        assert gateway.stats()["swaps"] == 1

    def test_swapped_model_serves_folded_outputs(self, gateway, registry, guard):
        # The new checkpoint's conv-BN folds must reflect ITS weights: folded
        # serving output equals the unfolded reference forward of the new
        # model (stale folded caches from the old entry would diverge).
        publish_tiny(registry, seed=21)
        gateway.swap()
        images = make_tiny_dataset(6, seed=22).images
        reference = registry.load(gateway.active_key).model
        with no_grad():
            expected = reference(Tensor(images)).data.argmax(axis=-1)
        got = [gateway.classify(img, timeout=30).label for img in images]
        assert got == list(expected)


class _PremiseOracle(Module):
    """Model embodying STRIP's premise on the fixture task: any input whose
    bottom-right corner still matches the checker trigger predicts the
    target with high confidence; everything else is maximally uncertain."""

    def forward(self, x):
        data = x.data
        corner = data[:, :, -2:, -2:].mean(axis=1)
        checker = (np.indices((2, 2)).sum(axis=0) % 2).astype(np.float32)
        correlation = (
            (corner - corner.mean(axis=(1, 2), keepdims=True)) * (checker - checker.mean())
        ).sum(axis=(1, 2))
        logits = np.zeros((data.shape[0], 3), dtype=np.float32)
        logits[correlation > 0.1, 0] = 12.0
        return Tensor(logits)

    def state_dict(self):
        return {"marker": np.zeros(1, dtype=np.float32)}

    def load_state_dict(self, state, strict=True):
        pass


class TestStripServing:
    @pytest.fixture()
    def strip_gateway(self, tmp_path, clean_pool, tiny_attack):
        registry = ModelRegistry(
            str(tmp_path / "strip-registry"), factory=lambda arch, **kw: _PremiseOracle()
        )
        registry.publish(_PremiseOracle(), "oracle", factory_kwargs={})
        gateway = ServingGateway(
            registry,
            config=ServeConfig(
                max_batch=8, max_wait_ms=20.0, strip=True,
                strip_overlays=8, strip_fpr=0.1, seed=0,
            ),
            clean_pool=clean_pool,
        )
        gateway.start()
        yield gateway
        gateway.stop()

    def test_verdicts_on_triggered_clean_mix(self, strip_gateway, tiny_attack, guard):
        """Acceptance criteria: STRIP-enabled serving separates a
        triggered/clean mix with per-request verdicts."""
        clean = make_tiny_dataset(20, seed=31).images
        triggered = tiny_attack.apply(make_tiny_dataset(20, seed=32).images)
        clean_verdicts = [strip_gateway.classify(img, timeout=30) for img in clean]
        trig_verdicts = [strip_gateway.classify(img, timeout=30) for img in triggered]
        assert all(v.entropy is not None for v in clean_verdicts + trig_verdicts)
        trig_flag_rate = np.mean([v.verdict == FILTERED for v in trig_verdicts])
        clean_flag_rate = np.mean([v.verdict == FILTERED for v in clean_verdicts])
        assert trig_flag_rate >= 0.9
        assert clean_flag_rate <= 0.3
        assert strip_gateway.stats()["filtered"] >= 18

    def test_strip_requires_clean_pool(self, registry):
        with pytest.raises(ValueError, match="clean_pool"):
            ServingGateway(registry, config=ServeConfig(strip=True))


class TestLifecycle:
    def test_stop_drains_queued_requests(self, registry, clean_pool, guard):
        publish_tiny(registry)
        gateway = ServingGateway(
            registry,
            # Deadline far out: only the drain path can flush a partial batch.
            config=ServeConfig(max_batch=64, max_wait_ms=60_000.0),
            clean_pool=clean_pool,
        )
        gateway.start()
        futures = [gateway.submit(img) for img in make_tiny_dataset(5, seed=33).images]
        gateway.stop(timeout=30)
        verdicts = [f.result(timeout=1) for f in futures]
        assert len(verdicts) == 5
        assert gateway.stats()["batcher"]["flush_reasons"] == {"drain": 1}

    def test_deadline_flush_fires_below_max_batch(self, registry, clean_pool, guard):
        publish_tiny(registry)
        gateway = ServingGateway(
            registry,
            config=ServeConfig(max_batch=64, max_wait_ms=25.0),
            clean_pool=clean_pool,
        )
        with gateway:  # context-manager lifecycle
            start = time.perf_counter()
            verdict = gateway.classify(
                make_tiny_dataset(1, seed=34).images[0], timeout=30
            )
            elapsed = time.perf_counter() - start
            assert verdict.batch_size == 1
            assert elapsed >= 0.02  # waited out the deadline, not the full batch
            reasons = gateway.stats()["batcher"]["flush_reasons"]
            assert reasons.get("deadline") == 1

    def test_double_start_rejected(self, gateway):
        with pytest.raises(RuntimeError, match="already started"):
            gateway.start()
