"""Serving-gateway fixtures: tiny registries, gateways, and a wall-clock guard.

Everything here is sized for the 8x8 three-class fixture task so a full
gateway lifecycle (publish -> serve -> swap -> drain) stays sub-second.
All queue-driving tests run under ``hard_timeout`` so a wedged drain
thread fails loudly instead of hanging CI (satellite: CI timeout guard).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import ModelRegistry, ServeConfig, ServingGateway
from repro.utils.timing import hard_timeout

from tests.conftest import NUM_CLASSES, TinyConvNet, make_tiny_dataset

# Hard ceiling for any single serving test; generous next to the <1s happy
# path, tiny next to a CI-job hang.
GUARD_SECONDS = 60.0


def tiny_factory(arch: str, **kwargs) -> TinyConvNet:
    """Registry factory for the fixture zoo (arch name is a formality)."""
    assert arch == "tiny_convnet", arch
    return TinyConvNet(num_classes=kwargs.get("num_classes", NUM_CLASSES),
                       seed=kwargs.get("seed", 0))


def publish_tiny(registry: ModelRegistry, seed: int = 0, alias: str = "default") -> str:
    """Publish a freshly initialized TinyConvNet; returns its key."""
    return registry.publish(
        TinyConvNet(seed=seed),
        "tiny_convnet",
        alias=alias,
        factory_kwargs={"num_classes": NUM_CLASSES, "seed": seed},
        metadata={"image_shape": [3, 8, 8], "seed": seed},
    )


@pytest.fixture()
def registry(tmp_path) -> ModelRegistry:
    return ModelRegistry(str(tmp_path / "registry"), factory=tiny_factory)


@pytest.fixture()
def clean_pool():
    return make_tiny_dataset(24, seed=11)


@pytest.fixture()
def gateway(registry, clean_pool):
    """A started gateway serving a published TinyConvNet; stops on teardown."""
    publish_tiny(registry, seed=0)
    gw = ServingGateway(
        registry,
        config=ServeConfig(max_batch=8, max_wait_ms=20.0),
        clean_pool=clean_pool,
    )
    with hard_timeout(GUARD_SECONDS, "gateway fixture wedged"):
        gw.start()
        yield gw
        gw.stop()


@pytest.fixture()
def guard():
    """Wall-clock guard context for queue-driving test bodies."""
    with hard_timeout(GUARD_SECONDS, "serving test wedged"):
        yield
