"""TrafficGenerator/TrafficReport: determinism, pacing, report math.

Every gateway-driving test here runs under the ``guard`` fixture
(``hard_timeout``) so a wedged queue fails within the wall-clock budget
instead of hanging CI.
"""

import numpy as np
import pytest

from repro.serving import (
    STANDARD_MIXES,
    ServeConfig,
    ServingGateway,
    TrafficGenerator,
    TrafficMix,
    TrafficReport,
)
from repro.serving.gateway import CLEAN, FILTERED, Verdict

from tests.conftest import make_tiny_dataset
from tests.serving.conftest import publish_tiny


def _fake_verdict(batch_size=4, latency_ms=3.0, verdict=CLEAN):
    return Verdict(
        label=0, verdict=verdict, entropy=None, model_key="model-x",
        batch_size=batch_size, queued_ms=1.0, latency_ms=latency_ms,
    )


class TestMixValidation:
    def test_standard_mixes_cover_issue_patterns(self):
        assert [m.name for m in STANDARD_MIXES] == ["steady", "bursty", "adversarial"]
        bursty = STANDARD_MIXES[1]
        assert bursty.burst_size > 1 and bursty.gap_s > 0
        assert STANDARD_MIXES[2].trigger_fraction > 0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            TrafficMix(name="x", num_requests=0)
        with pytest.raises(ValueError):
            TrafficMix(name="x", num_requests=1, trigger_fraction=1.5)
        with pytest.raises(ValueError):
            TrafficMix(name="x", num_requests=1, burst_size=0)


class TestRequestGeneration:
    def test_deterministic_given_seed(self, tiny_attack):
        pool = make_tiny_dataset(12, seed=0).images
        mix = TrafficMix(name="adv", num_requests=20, trigger_fraction=0.3)
        a = TrafficGenerator(pool, attack=tiny_attack, seed=7).requests(mix)
        b = TrafficGenerator(pool, attack=tiny_attack, seed=7).requests(mix)
        for (img_a, trig_a), (img_b, trig_b) in zip(a, b):
            np.testing.assert_array_equal(img_a, img_b)
            assert trig_a == trig_b
        assert any(trig for _, trig in a)

    def test_triggered_requests_carry_the_patch(self, tiny_attack):
        pool = make_tiny_dataset(12, seed=0).images
        mix = TrafficMix(name="adv", num_requests=30, trigger_fraction=0.5)
        requests = TrafficGenerator(pool, attack=tiny_attack, seed=1).requests(mix)
        patch = tiny_attack._patch
        for image, triggered in requests:
            has_patch = np.array_equal(image[:, -2:, -2:], patch)
            assert has_patch == triggered

    def test_trigger_fraction_without_attack_rejected(self):
        pool = make_tiny_dataset(4, seed=0).images
        mix = TrafficMix(name="adv", num_requests=4, trigger_fraction=0.5)
        with pytest.raises(ValueError, match="needs an attack"):
            TrafficGenerator(pool, attack=None, seed=0).requests(mix)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            TrafficGenerator(np.zeros((0, 3, 8, 8), dtype=np.float32))


class TestReportMath:
    def test_throughput_and_histogram(self):
        verdicts = [_fake_verdict(batch_size=4)] * 8 + [_fake_verdict(batch_size=2)] * 2
        report = TrafficReport(
            mix=TrafficMix(name="steady", num_requests=10),
            wall_s=2.0, verdicts=verdicts, triggered=[False] * 10,
        )
        assert report.completed == 10
        assert report.images_per_sec == pytest.approx(5.0)
        assert report.batch_size_histogram() == {4: 8, 2: 2}
        summary = report.summary()
        assert summary["latency_ms"]["count"] == 10
        assert "verdict_confusion" not in summary  # no triggered traffic

    def test_verdict_confusion_counts(self):
        verdicts = [
            _fake_verdict(verdict=FILTERED),  # triggered, flagged (hit)
            _fake_verdict(verdict=CLEAN),     # triggered, passed (miss)
            _fake_verdict(verdict=FILTERED),  # clean, flagged (false positive)
            _fake_verdict(verdict=CLEAN),     # clean, passed
        ]
        report = TrafficReport(
            mix=TrafficMix(name="adv", num_requests=4, trigger_fraction=0.5),
            wall_s=1.0, verdicts=verdicts, triggered=[True, True, False, False],
        )
        assert report.verdict_confusion() == {
            "triggered_flagged": 1, "triggered_passed": 1,
            "clean_flagged": 1, "clean_passed": 1,
        }
        assert "verdict_confusion" in report.summary()


class TestEndToEnd:
    def test_steady_mix_completes_every_request(self, gateway, guard):
        pool = make_tiny_dataset(12, seed=0).images
        mix = TrafficMix(name="steady", num_requests=24)
        report = TrafficGenerator(pool, seed=0).run(gateway, mix)
        assert report.completed == 24
        assert report.images_per_sec > 0
        assert sum(report.batch_size_histogram().values()) == 24
        assert all(v.verdict == CLEAN for v in report.verdicts)

    def test_bursty_mix_triggers_both_flush_paths(self, registry, clean_pool, guard):
        # Bursts of 12 against max_batch=8: each burst yields one full flush
        # plus a 4-request remainder that only the deadline can release
        # before the next burst arrives (gap >> deadline).
        publish_tiny(registry)
        gateway = ServingGateway(
            registry,
            config=ServeConfig(max_batch=8, max_wait_ms=10.0),
            clean_pool=clean_pool,
        )
        pool = make_tiny_dataset(12, seed=0).images
        mix = TrafficMix(name="bursty", num_requests=24, burst_size=12, gap_s=0.15)
        with gateway:
            report = TrafficGenerator(pool, seed=0).run(gateway, mix)
            reasons = gateway.stats()["batcher"]["flush_reasons"]
        assert report.completed == 24
        assert reasons.get("full", 0) >= 1
        assert reasons.get("deadline", 0) >= 1
