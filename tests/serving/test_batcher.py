"""MicroBatcher: flush triggers, drain semantics, admission control."""

import threading
import time

import pytest

from repro.serving import MicroBatcher, QueueFullError
from repro.telemetry import MemorySink, TelemetryBus, set_bus
from repro.utils.timing import hard_timeout


def _collecting_batcher(max_batch=4, max_wait_ms=15.0, delay_s=0.0):
    batches = []

    def process(requests):
        if delay_s:
            time.sleep(delay_s)
        batches.append([r.payload for r in requests])
        for r in requests:
            r.future.set_result(r.payload)

    return MicroBatcher(process, max_batch=max_batch, max_wait_ms=max_wait_ms), batches


class TestFlushTriggers:
    def test_flush_on_full_batch(self, guard):
        batcher, batches = _collecting_batcher(max_batch=3, max_wait_ms=10_000.0)
        batcher.start()
        futures = [batcher.submit(i) for i in range(3)]
        assert [f.result(timeout=30) for f in futures] == [0, 1, 2]
        batcher.close(timeout=30)
        # Despite the 10s deadline, the size trigger fired immediately.
        assert batches[0] == [0, 1, 2]
        assert batcher.stats()["flush_reasons"] == {"full": 1}

    def test_deadline_flush_when_traffic_stalls(self, guard):
        # Fewer requests than max_batch and no further traffic: only the
        # deadline can flush them.
        batcher, batches = _collecting_batcher(max_batch=64, max_wait_ms=30.0)
        batcher.start()
        start = time.perf_counter()
        futures = [batcher.submit(i) for i in range(3)]
        assert [f.result(timeout=30) for f in futures] == [0, 1, 2]
        waited = time.perf_counter() - start
        batcher.close(timeout=30)
        assert batches == [[0, 1, 2]]
        assert batcher.stats()["flush_reasons"] == {"deadline": 1}
        assert waited >= 0.02  # sat out (most of) the deadline window

    def test_backlog_coalesces_instead_of_dribbling(self, guard):
        # Requests that queue while a slow batch is processing must come out
        # as one follow-up batch, not as size-1 deadline flushes.
        batcher, batches = _collecting_batcher(max_batch=8, max_wait_ms=5.0, delay_s=0.08)
        batcher.start()
        first = batcher.submit("head")
        time.sleep(0.02)  # drain thread is now inside the slow batch
        backlog = [batcher.submit(i) for i in range(5)]
        first.result(timeout=30)
        for f in backlog:
            f.result(timeout=30)
        batcher.close(timeout=30)
        assert batches[0] == ["head"]
        assert batches[1] == [0, 1, 2, 3, 4]

    def test_max_batch_caps_flush_size(self, guard):
        batcher, batches = _collecting_batcher(max_batch=4, max_wait_ms=50.0, delay_s=0.03)
        batcher.start()
        futures = [batcher.submit(i) for i in range(10)]
        for f in futures:
            f.result(timeout=30)
        batcher.close(timeout=30)
        assert all(len(b) <= 4 for b in batches)
        assert sorted(x for b in batches for x in b) == list(range(10))


class TestLifecycle:
    def test_close_drains_accepted_requests(self, guard):
        batcher, _ = _collecting_batcher(max_batch=64, max_wait_ms=10_000.0)
        batcher.start()
        futures = [batcher.submit(i) for i in range(7)]
        batcher.close(timeout=30)  # deadline far away: close itself must flush
        assert [f.result(timeout=1) for f in futures] == list(range(7))
        stats = batcher.stats()
        assert stats["completed"] == 7 and stats["failed"] == 0
        assert stats["flush_reasons"] == {"drain": 1}

    def test_submit_after_close_rejected(self, guard):
        batcher, _ = _collecting_batcher()
        batcher.start()
        batcher.close(timeout=30)
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(1)

    def test_double_close_is_idempotent(self, guard):
        batcher, _ = _collecting_batcher()
        batcher.start()
        batcher.close(timeout=30)
        batcher.close(timeout=30)

    def test_concurrent_submitters_lose_nothing(self, guard):
        batcher, batches = _collecting_batcher(max_batch=16, max_wait_ms=5.0)
        batcher.start()
        results = []
        lock = threading.Lock()

        def feed(base):
            futures = [batcher.submit(base + i) for i in range(25)]
            resolved = [f.result(timeout=30) for f in futures]
            with lock:
                results.extend(resolved)

        threads = [threading.Thread(target=feed, args=(100 * t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        batcher.close(timeout=30)
        assert sorted(results) == sorted(100 * t + i for t in range(4) for i in range(25))
        assert batcher.stats()["completed"] == 100


class TestFailureDelivery:
    def test_process_exception_resolves_futures(self, guard):
        def explode(requests):
            raise ValueError("model fell over")

        batcher = MicroBatcher(explode, max_batch=2, max_wait_ms=5.0)
        batcher.start()
        futures = [batcher.submit(i) for i in range(2)]
        for f in futures:
            with pytest.raises(ValueError, match="fell over"):
                f.result(timeout=30)
        # The drain thread survived the exception and keeps serving.
        more = batcher.submit(3)
        with pytest.raises(ValueError):
            more.result(timeout=30)
        batcher.close(timeout=30)
        assert batcher.stats()["failed"] == 3

    def test_unresolved_requests_get_errors(self, guard):
        def forgets_some(requests):
            requests[0].future.set_result("ok")  # leaves the rest dangling

        batcher = MicroBatcher(forgets_some, max_batch=2, max_wait_ms=5.0)
        batcher.start()
        first, second = batcher.submit("a"), batcher.submit("b")
        assert first.result(timeout=30) == "ok"
        with pytest.raises(RuntimeError, match="without resolving"):
            second.result(timeout=30)
        batcher.close(timeout=30)


class TestAdmissionControl:
    def _wedged_batcher(self, max_queue=2):
        """A batcher whose process callback blocks until released."""
        release = threading.Event()

        def process(requests):
            release.wait(20.0)
            for r in requests:
                r.future.set_result(r.payload)

        batcher = MicroBatcher(process, max_batch=1, max_wait_ms=1.0, max_queue=max_queue)
        return batcher, release

    def test_no_limit_by_default(self, guard):
        batcher, _ = _collecting_batcher()
        assert batcher.max_queue is None

    def test_queue_full_raises_with_metadata(self, guard):
        batcher, release = self._wedged_batcher(max_queue=2)
        batcher.start()
        accepted = [batcher.submit(i) for i in range(2)]
        assert batcher.queue_depth() == 2
        with pytest.raises(QueueFullError, match="queue full") as excinfo:
            batcher.submit(99)
        assert excinfo.value.depth == 2
        assert excinfo.value.limit == 2
        assert excinfo.value.retry_after_s >= 0.05
        release.set()
        # Accepted requests were untouched by the rejection.
        assert [f.result(timeout=30) for f in accepted] == [0, 1]
        batcher.close(timeout=30)
        stats = batcher.stats()
        assert stats["rejected"] == 1
        assert stats["submitted"] == 2
        assert stats["completed"] == 2
        assert stats["queue_depth"] == 0

    def test_depth_recovers_after_drain(self, guard):
        batcher, release = self._wedged_batcher(max_queue=1)
        batcher.start()
        first = batcher.submit("a")
        with pytest.raises(QueueFullError):
            batcher.submit("b")
        release.set()
        first.result(timeout=30)
        # Once the wedge clears, admission control lets traffic back in.
        with hard_timeout(30.0, "post-drain resubmit wedged"):
            while True:
                try:
                    again = batcher.submit("c")
                    break
                except QueueFullError:
                    time.sleep(0.005)
        assert again.result(timeout=30) == "c"
        batcher.close(timeout=30)

    def test_rejection_emits_overload_event_and_counter(self, guard):
        sink = MemorySink()
        fresh = TelemetryBus()
        fresh.attach(sink)
        previous = set_bus(fresh)
        try:
            batcher, release = self._wedged_batcher(max_queue=1)
            batcher.start()
            held = batcher.submit("x")
            with pytest.raises(QueueFullError):
                batcher.submit("y")
            release.set()
            held.result(timeout=30)
            batcher.close(timeout=30)
            events = sink.named("overload_rejected")
            assert len(events) == 1
            assert events[0].fields["depth"] == 1
            assert events[0].fields["limit"] == 1
            assert events[0].fields["retry_after_s"] > 0
            assert fresh.metrics.counter("serving.overload_rejected").value == 1
        finally:
            set_bus(previous)


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_queue=0)

    def test_double_start_rejected(self, guard):
        batcher, _ = _collecting_batcher()
        batcher.start()
        with pytest.raises(RuntimeError, match="started"):
            batcher.start()
        batcher.close(timeout=30)

    def test_close_timeout_surfaces(self):
        release = threading.Event()

        def wedge(requests):
            release.wait(20.0)
            for r in requests:
                r.future.set_result(None)

        batcher = MicroBatcher(wedge, max_batch=1, max_wait_ms=1.0)
        batcher.start()
        with hard_timeout(30.0, "close-timeout test wedged"):
            future = batcher.submit(1)
            with pytest.raises(TimeoutError):
                batcher.close(timeout=0.2)
            release.set()
            future.result(timeout=30)
            batcher.close(timeout=30)
