"""JSON-over-HTTP front: predict/swap/healthz/stats round trips, overload."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import serve_http

from tests.conftest import make_tiny_dataset
from tests.serving.conftest import publish_tiny


@pytest.fixture()
def http_front(gateway):
    server = serve_http(gateway, port=0)  # ephemeral port
    yield server
    server.stop()


def _call_full(server, method, path, payload=None):
    host, port = server.address
    body = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _call(server, method, path, payload=None):
    status, doc, _headers = _call_full(server, method, path, payload)
    return status, doc


class TestEndpoints:
    def test_predict_round_trip(self, http_front, gateway, guard):
        image = make_tiny_dataset(1, seed=0).images[0]
        status, doc = _call(http_front, "POST", "/predict", {"image": image.tolist()})
        assert status == 200
        assert doc["verdict"] == "clean"
        assert doc["model_key"] == gateway.active_key
        assert isinstance(doc["label"], int)
        assert doc["latency_ms"] > 0

    def test_predict_rejects_bad_shape(self, http_front, guard):
        status, doc = _call(http_front, "POST", "/predict", {"image": [[0.0]]})
        assert status == 400 and "expected one" in doc["error"]

    def test_predict_requires_image_field(self, http_front, guard):
        status, doc = _call(http_front, "POST", "/predict", {})
        assert status == 400 and "image" in doc["error"]

    def test_healthz_and_stats(self, http_front, gateway, guard):
        status, doc = _call(http_front, "GET", "/healthz")
        assert status == 200 and doc["model_key"] == gateway.active_key
        status, stats = _call(http_front, "GET", "/stats")
        assert status == 200 and stats["alias"] == gateway.alias

    def test_swap_endpoint(self, http_front, gateway, registry, guard):
        new_key = publish_tiny(registry, seed=41)
        status, doc = _call(http_front, "POST", "/swap", {})
        assert status == 200
        assert doc == {"swapped": True, "model_key": new_key}
        status, doc = _call(http_front, "POST", "/swap", {"key": "model-nope"})
        assert status == 404 and "error" in doc

    def test_unknown_path_404(self, http_front, guard):
        status, doc = _call(http_front, "GET", "/nope")
        assert status == 404


class TestOverload:
    def test_queue_full_maps_to_503_with_retry_after(self, http_front, gateway, guard):
        """With the queue wedged at capacity, /predict sheds load explicitly."""
        image = make_tiny_dataset(1, seed=0).images[0]
        batcher = gateway._batcher
        release = threading.Event()
        original_process = batcher.process_batch

        def wedged(batch):
            release.wait(20.0)
            original_process(batch)

        batcher.process_batch = wedged
        original_limit, batcher.max_queue = batcher.max_queue, 1
        try:
            held = gateway.submit(image)  # occupies the single queue slot
            status, doc, headers = _call_full(
                http_front, "POST", "/predict", {"image": image.tolist()}
            )
            assert status == 503
            assert "queue full" in doc["error"]
            assert doc["retry_after_s"] > 0
            assert int(headers["Retry-After"]) >= 1
        finally:
            release.set()
            batcher.max_queue = original_limit
            batcher.process_batch = original_process
        assert held.result(timeout=30).verdict == "clean"
        # The queue drains and serving resumes normally.
        status, doc = _call(http_front, "POST", "/predict", {"image": image.tolist()})
        assert status == 200
