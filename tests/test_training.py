"""Tests for the shared training loop and accuracy evaluation."""

import numpy as np
import pytest

from repro.nn import SGD
from repro.training import TrainConfig, evaluate_accuracy, predict, train_classifier
from tests.conftest import TinyConvNet, make_tiny_dataset


class TestTrainClassifier:
    def test_loss_decreases(self):
        model = TinyConvNet(seed=0)
        dataset = make_tiny_dataset(120, seed=0)
        result = train_classifier(model, dataset, TrainConfig(epochs=5, batch_size=32, lr=0.08))
        assert result.losses[-1] < result.losses[0]
        assert result.final_loss == result.losses[-1]

    def test_learns_separable_task(self):
        model = TinyConvNet(seed=1)
        train = make_tiny_dataset(150, seed=1)
        test = make_tiny_dataset(60, seed=2)
        train_classifier(model, train, TrainConfig(epochs=8, batch_size=32, lr=0.08))
        assert evaluate_accuracy(model, test) > 0.8

    def test_deterministic_given_seeds(self):
        def run():
            model = TinyConvNet(seed=3)
            dataset = make_tiny_dataset(90, seed=3)
            train_classifier(model, dataset, TrainConfig(epochs=2, batch_size=32, shuffle_seed=7))
            return model.state_dict()

        a, b = run(), run()
        for key in a:
            assert np.array_equal(a[key], b[key])

    def test_custom_optimizer_used(self):
        model = TinyConvNet(seed=0)
        dataset = make_tiny_dataset(60, seed=0)
        optimizer = SGD(model.parameters(), lr=1e-9)
        before = model.fc.weight.data.copy()
        train_classifier(model, dataset, TrainConfig(epochs=1), optimizer=optimizer)
        # With a vanishing LR the weights barely move.
        assert np.abs(model.fc.weight.data - before).max() < 1e-5

    def test_epoch_callback_invoked(self):
        calls = []
        model = TinyConvNet(seed=0)
        dataset = make_tiny_dataset(60, seed=0)
        train_classifier(
            model, dataset, TrainConfig(epochs=3, batch_size=32),
            epoch_callback=lambda epoch, loss: calls.append((epoch, loss)),
        )
        assert [c[0] for c in calls] == [0, 1, 2]

    def test_lr_decay_applied(self):
        model = TinyConvNet(seed=0)
        dataset = make_tiny_dataset(60, seed=0)
        optimizer = SGD(model.parameters(), lr=0.1)
        train_classifier(
            model, dataset,
            TrainConfig(epochs=3, lr_decay_epochs=(1, 2), lr_decay_factor=0.1),
            optimizer=optimizer,
        )
        assert optimizer.lr == pytest.approx(0.1 * 0.01)

    def test_model_left_in_eval_mode(self):
        model = TinyConvNet(seed=0)
        train_classifier(model, make_tiny_dataset(30), TrainConfig(epochs=1))
        assert not model.training


class TestPredictAndAccuracy:
    def test_predict_shape_and_range(self):
        model = TinyConvNet(seed=0)
        data = make_tiny_dataset(40, seed=5)
        preds = predict(model, data.images)
        assert preds.shape == (40,)
        assert set(np.unique(preds)) <= {0, 1, 2}

    def test_predict_batching_invariant(self):
        model = TinyConvNet(seed=0)
        data = make_tiny_dataset(50, seed=6)
        a = predict(model, data.images, batch_size=7)
        b = predict(model, data.images, batch_size=64)
        assert np.array_equal(a, b)

    def test_empty_accuracy_raises(self):
        from repro.data import ImageDataset

        empty = ImageDataset(np.zeros((0, 3, 8, 8), dtype=np.float32), np.zeros(0))
        with pytest.raises(ValueError):
            evaluate_accuracy(TinyConvNet(), empty)

    def test_accuracy_bounds(self):
        model = TinyConvNet(seed=0)
        acc = evaluate_accuracy(model, make_tiny_dataset(30, seed=7))
        assert 0.0 <= acc <= 1.0
