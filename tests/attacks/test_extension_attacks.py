"""Tests for the extension attacks: SIG and DynamicPatch."""

import numpy as np
import pytest

from repro.attacks import DynamicPatchAttack, SIGAttack

SHAPE = (3, 16, 16)


def images(n=6, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, (n, *SHAPE)).astype(np.float32)


class TestSIG:
    def test_signal_is_horizontal_sinusoid(self):
        attack = SIGAttack(image_shape=SHAPE, amplitude=0.1, frequency=4.0)
        x = np.full((1, *SHAPE), 0.5, dtype=np.float32)
        out = attack.apply(x)
        delta = out - x
        # Same perturbation in every row and channel.
        assert np.allclose(delta[0, 0, 0], delta[0, 0, -1], atol=1e-6)
        assert np.allclose(delta[0, 0], delta[0, 2], atol=1e-6)
        # Sinusoid: zero mean (no DC) and bounded by amplitude.
        assert abs(delta[0, 0, 0].mean()) < 0.02
        assert np.abs(delta).max() <= 0.1 + 1e-6

    def test_amplitude_bound(self):
        attack = SIGAttack(image_shape=SHAPE, amplitude=0.05)
        x = images()
        assert np.abs(attack.apply(x) - x).max() <= 0.05 + 1e-6

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            SIGAttack(image_shape=SHAPE, amplitude=0.0)
        with pytest.raises(ValueError):
            SIGAttack(image_shape=SHAPE, frequency=-1.0)

    def test_clipping_keeps_unit_range(self):
        attack = SIGAttack(image_shape=SHAPE, amplitude=0.5)
        out = attack.apply(np.ones((2, *SHAPE), dtype=np.float32))
        assert out.max() <= 1.0 and out.min() >= 0.0


class TestDynamicPatch:
    def test_patch_follows_brightest_cell(self):
        attack = DynamicPatchAttack(image_shape=SHAPE, patch_size=2, grid=4)
        x = np.zeros((1, *SHAPE), dtype=np.float32)
        x[0, :, 8:12, 4:8] = 0.9  # brightest cell: row 2, col 1 of the 4x4 grid
        out = attack.apply(x)
        patch_region = out[0, 0, 8:10, 4:6]
        assert patch_region.tolist() == [[0.0, 1.0], [1.0, 0.0]]

    def test_location_varies_with_content(self):
        attack = DynamicPatchAttack(image_shape=SHAPE, patch_size=2, grid=4)
        a = np.zeros((1, *SHAPE), dtype=np.float32)
        a[0, :, 0:4, 0:4] = 1.0
        b = np.zeros((1, *SHAPE), dtype=np.float32)
        b[0, :, 12:16, 12:16] = 1.0
        out_a = attack.apply(a)
        out_b = attack.apply(b)
        diff_a = np.abs(out_a - a).sum(axis=(0, 1))
        diff_b = np.abs(out_b - b).sum(axis=(0, 1))
        loc_a = np.unravel_index(diff_a.argmax(), diff_a.shape)
        loc_b = np.unravel_index(diff_b.argmax(), diff_b.shape)
        assert loc_a != loc_b

    def test_deterministic_per_image(self):
        attack = DynamicPatchAttack(image_shape=SHAPE)
        x = images()
        assert np.array_equal(attack.apply(x), attack.apply(x))

    def test_patch_stays_in_bounds(self):
        attack = DynamicPatchAttack(image_shape=SHAPE, patch_size=3, grid=4)
        # Brightest cell at the bottom-right corner: patch must be clamped.
        x = np.zeros((1, *SHAPE), dtype=np.float32)
        x[0, :, 12:, 12:] = 1.0
        out = attack.apply(x)
        assert out.shape == (1, *SHAPE)

    def test_invalid_grid_raises(self):
        with pytest.raises(ValueError):
            DynamicPatchAttack(image_shape=SHAPE, grid=5)  # 5 doesn't divide 16
        with pytest.raises(ValueError):
            DynamicPatchAttack(image_shape=SHAPE, grid=1)

    def test_oversized_patch_raises(self):
        with pytest.raises(ValueError):
            DynamicPatchAttack(image_shape=SHAPE, patch_size=9)


class TestExtensionAttacksEmbed:
    """SIG and dynamic-patch triggers must actually embed on the tiny task."""

    @pytest.mark.parametrize("factory", [
        lambda shape: SIGAttack(target_class=0, image_shape=shape, amplitude=0.25, frequency=2.0),
        lambda shape: DynamicPatchAttack(target_class=0, image_shape=shape, patch_size=2, grid=2),
    ], ids=["sig", "dynamic_patch"])
    def test_embeds(self, factory, tiny_train, tiny_test):
        from repro.attacks import train_backdoored_model
        from repro.eval import evaluate_backdoor_metrics
        from repro.training import TrainConfig
        from tests.conftest import IMAGE_SHAPE, TinyConvNet

        attack = factory(IMAGE_SHAPE)
        model = TinyConvNet(seed=2)
        train_backdoored_model(
            model, tiny_train, attack, poison_ratio=0.2,
            config=TrainConfig(epochs=8, batch_size=32, lr=0.08),
            rng=np.random.default_rng(1),
        )
        metrics = evaluate_backdoor_metrics(model, tiny_test, attack)
        assert metrics.acc > 0.6
        assert metrics.asr > 0.5
