"""Clean-label poisoning tests (the SIG protocol)."""

import numpy as np
import pytest

from repro.attacks import SIGAttack, poison_dataset
from repro.data import ImageDataset

SHAPE = (3, 8, 8)


def make_dataset(n=100, num_classes=5, seed=0):
    rng = np.random.default_rng(seed)
    return ImageDataset(
        rng.uniform(0, 1, (n, *SHAPE)).astype(np.float32), np.arange(n) % num_classes
    )


def attack():
    return SIGAttack(target_class=2, image_shape=SHAPE, amplitude=0.2)


class TestCleanLabel:
    def test_no_labels_changed(self):
        ds = make_dataset()
        poisoned, info = poison_dataset(
            ds, attack(), 0.5, np.random.default_rng(0), relabel="clean_label"
        )
        assert np.array_equal(poisoned.labels, ds.labels)

    def test_only_target_class_poisoned(self):
        ds = make_dataset()
        _, info = poison_dataset(
            ds, attack(), 0.5, np.random.default_rng(0), relabel="clean_label"
        )
        assert np.all(ds.labels[info.poisoned_indices] == 2)

    def test_ratio_relative_to_target_class(self):
        ds = make_dataset(n=100, num_classes=5)  # 20 per class
        _, info = poison_dataset(
            ds, attack(), 0.5, np.random.default_rng(0), relabel="clean_label"
        )
        assert len(info.poisoned_indices) == 10  # 50 % of 20

    def test_images_actually_triggered(self):
        ds = make_dataset()
        poisoned, info = poison_dataset(
            ds, attack(), 0.5, np.random.default_rng(0), relabel="clean_label"
        )
        idx = info.poisoned_indices[0]
        assert not np.array_equal(poisoned.images[idx], ds.images[idx])

    def test_no_target_samples_raises(self):
        ds = make_dataset(num_classes=2)  # labels 0/1, target is 2
        with pytest.raises(ValueError, match="target-class"):
            poison_dataset(ds, attack(), 0.5, relabel="clean_label")
