"""Training-set poisoning tests."""

import numpy as np
import pytest

from repro.attacks import BadNetsAttack, poison_dataset
from repro.data import ImageDataset

SHAPE = (3, 8, 8)


def make_dataset(n=100, num_classes=5, seed=0):
    rng = np.random.default_rng(seed)
    return ImageDataset(
        rng.uniform(0, 1, (n, *SHAPE)).astype(np.float32), np.arange(n) % num_classes
    )


def attack():
    return BadNetsAttack(target_class=0, image_shape=SHAPE, patch_size=2)


class TestPoisonDataset:
    def test_ratio_respected(self):
        poisoned, info = poison_dataset(make_dataset(), attack(), 0.1, np.random.default_rng(0))
        assert len(info.poisoned_indices) == 10
        assert len(poisoned) == 100

    def test_poisoned_samples_have_target_label(self):
        poisoned, info = poison_dataset(make_dataset(), attack(), 0.2, np.random.default_rng(0))
        assert np.all(poisoned.labels[info.poisoned_indices] == 0)

    def test_poisoned_samples_carry_trigger(self):
        ds = make_dataset()
        poisoned, info = poison_dataset(ds, attack(), 0.2, np.random.default_rng(0))
        idx = info.poisoned_indices[0]
        patch = poisoned.images[idx, 0, -2:, -2:]
        assert patch.tolist() == [[0.0, 1.0], [1.0, 0.0]]

    def test_clean_samples_untouched(self):
        ds = make_dataset()
        poisoned, info = poison_dataset(ds, attack(), 0.2, np.random.default_rng(0))
        clean = np.setdiff1d(np.arange(len(ds)), info.poisoned_indices)
        assert np.array_equal(poisoned.images[clean], ds.images[clean])
        assert np.array_equal(poisoned.labels[clean], ds.labels[clean])

    def test_target_class_excluded_by_default(self):
        ds = make_dataset()
        _, info = poison_dataset(ds, attack(), 0.2, np.random.default_rng(0))
        assert np.all(ds.labels[info.poisoned_indices] != 0)

    def test_target_class_included_when_requested(self):
        ds = make_dataset()
        rng = np.random.default_rng(0)
        _, info = poison_dataset(ds, attack(), 0.9, rng, exclude_target_class=False)
        assert np.any(ds.labels[info.poisoned_indices] == 0)

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            poison_dataset(make_dataset(), attack(), 0.0)
        with pytest.raises(ValueError):
            poison_dataset(make_dataset(), attack(), 1.0)

    def test_tiny_ratio_on_tiny_dataset_raises(self):
        with pytest.raises(ValueError, match="zero samples"):
            poison_dataset(make_dataset(n=4), attack(), 0.01)

    def test_deterministic_with_rng(self):
        ds = make_dataset()
        _, a = poison_dataset(ds, attack(), 0.1, np.random.default_rng(3))
        _, b = poison_dataset(ds, attack(), 0.1, np.random.default_rng(3))
        assert np.array_equal(a.poisoned_indices, b.poisoned_indices)

    def test_original_dataset_not_mutated(self):
        ds = make_dataset()
        before = ds.images.copy()
        poison_dataset(ds, attack(), 0.2, np.random.default_rng(0))
        assert np.array_equal(ds.images, before)
