"""LIRA-style learned-generator attack tests."""

import numpy as np
import pytest

from repro.attacks import LiraAttack, TriggerGenerator, train_lira
from repro.eval import evaluate_backdoor_metrics
from repro.training import TrainConfig, train_classifier
from tests.conftest import IMAGE_SHAPE, TinyConvNet, make_tiny_dataset


class TestTriggerGenerator:
    def test_output_shape_matches_input(self):
        gen = TriggerGenerator(channels=3, hidden=4, epsilon=0.1, seed=0)
        from repro.nn import Tensor

        x = Tensor(np.random.default_rng(0).uniform(0, 1, (2, 3, 8, 8)).astype(np.float32))
        out = gen(x)
        assert out.shape == (2, 3, 8, 8)

    def test_epsilon_bound_by_construction(self):
        gen = TriggerGenerator(epsilon=0.07, seed=0)
        from repro.nn import Tensor

        x = Tensor(np.random.default_rng(1).uniform(0, 1, (4, 3, 16, 16)).astype(np.float32))
        out = gen(x)
        assert np.abs(out.data).max() <= 0.07 + 1e-6

    def test_invalid_epsilon_raises(self):
        with pytest.raises(ValueError):
            TriggerGenerator(epsilon=0.0)

    def test_perturbation_is_input_dependent(self):
        gen = TriggerGenerator(epsilon=0.1, seed=0)
        from repro.nn import Tensor

        rng = np.random.default_rng(2)
        a = gen(Tensor(rng.uniform(0, 1, (1, 3, 8, 8)).astype(np.float32))).data
        b = gen(Tensor(rng.uniform(0, 1, (1, 3, 8, 8)).astype(np.float32))).data
        assert not np.allclose(a, b)


class TestLiraAttack:
    def test_apply_contract(self):
        attack = LiraAttack(target_class=0, image_shape=IMAGE_SHAPE, epsilon=0.1, seed=0)
        images = np.random.default_rng(0).uniform(0, 1, (5, *IMAGE_SHAPE)).astype(np.float32)
        out = attack.apply(images)
        assert out.shape == images.shape
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert np.abs(out - images).max() <= 0.1 + 1e-5

    def test_deterministic(self):
        attack = LiraAttack(image_shape=IMAGE_SHAPE, seed=3)
        images = np.random.default_rng(1).uniform(0, 1, (3, *IMAGE_SHAPE)).astype(np.float32)
        assert np.array_equal(attack.apply(images), attack.apply(images))

    def test_odd_image_size_rejected(self):
        with pytest.raises(ValueError, match="even"):
            LiraAttack(image_shape=(3, 9, 9))


class TestJointTraining:
    def test_lira_embeds_backdoor(self, tiny_train, tiny_test):
        model = TinyConvNet(seed=0)
        # Warm-start the classifier so the generator has real gradients.
        train_classifier(model, tiny_train, TrainConfig(epochs=3, batch_size=32, lr=0.08))
        attack = LiraAttack(target_class=0, image_shape=IMAGE_SHAPE, epsilon=0.25, hidden=8, seed=0)
        log = train_lira(
            model, attack, tiny_train,
            epochs=6, batch_size=32, classifier_lr=0.05, generator_lr=3e-3, seed=0,
        )
        assert len(log.classifier_losses) == 6
        assert log.backdoor_losses[-1] < log.backdoor_losses[0]
        metrics = evaluate_backdoor_metrics(model, tiny_test, attack)
        assert metrics.acc > 0.6  # main task intact
        assert metrics.asr > 0.5  # learned trigger fires

    def test_invalid_poison_fraction(self, tiny_train):
        model = TinyConvNet(seed=0)
        attack = LiraAttack(image_shape=IMAGE_SHAPE)
        with pytest.raises(ValueError):
            train_lira(model, attack, tiny_train, poison_fraction=0.0)
