"""Attack trigger tests: determinism, locality, registry behavior."""

import numpy as np
import pytest

from repro.attacks import (
    ATTACK_REGISTRY,
    BadNetsAttack,
    BlendedAttack,
    BPPAttack,
    LowFrequencyAttack,
    build_attack,
    floyd_steinberg_dither,
)
from repro.data import ImageDataset

SHAPE = (3, 16, 16)


def images(n=4, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, (n, *SHAPE)).astype(np.float32)


@pytest.mark.parametrize("name", sorted(ATTACK_REGISTRY))
class TestCommonContract:
    def test_output_in_unit_range(self, name):
        attack = build_attack(name, image_shape=SHAPE)
        out = attack.apply(images())
        assert out.min() >= 0.0
        assert out.max() <= 1.0
        assert out.dtype == np.float32

    def test_deterministic(self, name):
        attack = build_attack(name, image_shape=SHAPE)
        x = images()
        assert np.array_equal(attack.apply(x), attack.apply(x))

    def test_does_not_mutate_input(self, name):
        attack = build_attack(name, image_shape=SHAPE)
        x = images()
        before = x.copy()
        attack.apply(x)
        assert np.array_equal(x, before)

    def test_changes_images(self, name):
        attack = build_attack(name, image_shape=SHAPE)
        x = images()
        assert not np.array_equal(attack.apply(x), x)

    def test_shape_check(self, name):
        attack = build_attack(name, image_shape=SHAPE)
        with pytest.raises(ValueError):
            attack.apply(np.zeros((2, 3, 8, 8), dtype=np.float32))

    def test_poisoned_copy_labels(self, name):
        attack = build_attack(name, target_class=2, image_shape=SHAPE)
        ds = ImageDataset(images(6), np.arange(6) % 3)
        poisoned = attack.poisoned_copy(ds)
        assert np.all(poisoned.labels == 2)

    def test_triggered_with_true_labels(self, name):
        attack = build_attack(name, image_shape=SHAPE)
        ds = ImageDataset(images(6), np.arange(6) % 3)
        triggered = attack.triggered_with_true_labels(ds)
        assert np.array_equal(triggered.labels, ds.labels)
        assert not np.array_equal(triggered.images, ds.images)


class TestBadNets:
    def test_patch_only_touches_corner(self):
        attack = BadNetsAttack(image_shape=SHAPE, patch_size=3, corner="br")
        x = images()
        out = attack.apply(x)
        diff = (out != x).any(axis=(0, 1))
        assert diff[-3:, -3:].all()
        assert not diff[:-3, :].any()
        assert not diff[:, :-3].any()

    def test_checkerboard_values(self):
        attack = BadNetsAttack(image_shape=SHAPE, patch_size=2)
        out = attack.apply(np.full((1, *SHAPE), 0.5, dtype=np.float32))
        patch = out[0, 0, -2:, -2:]
        assert patch.tolist() == [[0.0, 1.0], [1.0, 0.0]]

    @pytest.mark.parametrize("corner", ["tl", "tr", "bl", "br"])
    def test_all_corners(self, corner):
        attack = BadNetsAttack(image_shape=SHAPE, patch_size=2, corner=corner)
        assert attack.apply(images()).shape == (4, *SHAPE)

    def test_bad_corner_raises(self):
        with pytest.raises(ValueError):
            BadNetsAttack(image_shape=SHAPE, corner="center")

    def test_oversized_patch_raises(self):
        with pytest.raises(ValueError):
            BadNetsAttack(image_shape=SHAPE, patch_size=99)


class TestBlended:
    def test_blend_is_convex_combination(self):
        attack = BlendedAttack(image_shape=SHAPE, blend_ratio=0.2)
        x = images()
        out = attack.apply(x)
        expected = 0.8 * x + 0.2 * attack.pattern[None]
        assert np.allclose(out, np.clip(expected, 0, 1), atol=1e-6)

    def test_every_pixel_affected(self):
        attack = BlendedAttack(image_shape=SHAPE, blend_ratio=0.5)
        x = np.zeros((1, *SHAPE), dtype=np.float32)
        out = attack.apply(x)
        assert (out > 0).mean() > 0.95  # pattern covers the whole image

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            BlendedAttack(image_shape=SHAPE, blend_ratio=0.0)

    def test_seed_changes_pattern(self):
        a = BlendedAttack(image_shape=SHAPE, seed=1)
        b = BlendedAttack(image_shape=SHAPE, seed=2)
        assert not np.array_equal(a.pattern, b.pattern)


class TestLowFrequency:
    def test_perturbation_amplitude_bounded(self):
        attack = LowFrequencyAttack(image_shape=SHAPE, amplitude=0.1)
        assert np.abs(attack.perturbation).max() <= 0.1 + 1e-6

    def test_perturbation_is_low_frequency(self):
        from scipy.fft import dctn

        attack = LowFrequencyAttack(image_shape=SHAPE, cutoff=3, amplitude=0.2)
        coeffs = dctn(attack.perturbation.astype(np.float64), axes=(1, 2), norm="ortho")
        hf_energy = float((coeffs[:, 3:, 3:] ** 2).sum())
        total = float((coeffs ** 2).sum())
        assert hf_energy / total < 1e-8

    def test_dc_term_zeroed(self):
        from scipy.fft import dctn

        attack = LowFrequencyAttack(image_shape=SHAPE)
        coeffs = dctn(attack.perturbation.astype(np.float64), axes=(1, 2), norm="ortho")
        assert np.abs(coeffs[:, 0, 0]).max() < 1e-6

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            LowFrequencyAttack(image_shape=SHAPE, cutoff=0)
        with pytest.raises(ValueError):
            LowFrequencyAttack(image_shape=SHAPE, amplitude=-1.0)


class TestBPP:
    def test_quantization_levels(self):
        attack = BPPAttack(image_shape=SHAPE, bit_depth=2)
        out = attack.apply(images())
        unique = np.unique(out)
        assert len(unique) <= 4
        assert np.allclose(unique * 3, np.round(unique * 3), atol=1e-6)

    def test_binarization_at_depth_one(self):
        attack = BPPAttack(image_shape=SHAPE, bit_depth=1)
        out = attack.apply(images())
        assert set(np.unique(out).tolist()) <= {0.0, 1.0}

    def test_idempotent(self):
        attack = BPPAttack(image_shape=SHAPE, bit_depth=2)
        once = attack.apply(images())
        twice = attack.apply(once)
        assert np.array_equal(once, twice)

    def test_invalid_depth_raises(self):
        with pytest.raises(ValueError):
            BPPAttack(image_shape=SHAPE, bit_depth=0)

    def test_dither_version_runs(self):
        attack = BPPAttack(image_shape=(3, 8, 8), bit_depth=2, dither=True)
        out = attack.apply(np.random.default_rng(0).uniform(0, 1, (2, 3, 8, 8)).astype(np.float32))
        assert out.shape == (2, 3, 8, 8)
        assert out.min() >= 0 and out.max() <= 1

    def test_floyd_steinberg_quantizes(self):
        img = np.random.default_rng(0).uniform(0, 1, (3, 8, 8)).astype(np.float32)
        out = floyd_steinberg_dither(img, levels=2)
        # Interior gets diffused error, but values stay in range and most
        # pixels land on quantization levels.
        assert out.min() >= 0 and out.max() <= 1

    def test_dither_preserves_mean_brightness(self):
        img = np.full((3, 16, 16), 0.3, dtype=np.float32)
        out = floyd_steinberg_dither(img, levels=2)
        assert abs(float(out.mean()) - 0.3) < 0.05


class TestRegistry:
    def test_build_unknown_raises(self):
        with pytest.raises(KeyError):
            build_attack("sleeper_agent")

    def test_kwargs_forwarded(self):
        attack = build_attack("badnets", image_shape=SHAPE, patch_size=5)
        assert attack.patch_size == 5
