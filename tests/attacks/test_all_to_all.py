"""All-to-all relabeling tests (paper §II-A's cyclic attack variant)."""

import numpy as np
import pytest

from repro.attacks import BadNetsAttack, poison_dataset
from repro.data import ImageDataset

SHAPE = (3, 8, 8)


def make_dataset(n=60, num_classes=5, seed=0):
    rng = np.random.default_rng(seed)
    return ImageDataset(
        rng.uniform(0, 1, (n, *SHAPE)).astype(np.float32), np.arange(n) % num_classes
    )


def attack():
    return BadNetsAttack(target_class=0, image_shape=SHAPE, patch_size=2)


class TestAllToAll:
    def test_labels_shift_cyclically(self):
        ds = make_dataset()
        poisoned, info = poison_dataset(
            ds, attack(), 0.3, np.random.default_rng(0), relabel="all_to_all"
        )
        idx = info.poisoned_indices
        assert np.array_equal(poisoned.labels[idx], (ds.labels[idx] + 1) % 5)

    def test_last_class_wraps_to_zero(self):
        ds = make_dataset(num_classes=3)
        poisoned, info = poison_dataset(
            ds, attack(), 0.5, np.random.default_rng(1), relabel="all_to_all"
        )
        last_class = info.poisoned_indices[ds.labels[info.poisoned_indices] == 2]
        if len(last_class):
            assert np.all(poisoned.labels[last_class] == 0)

    def test_all_classes_participate(self):
        ds = make_dataset()
        _, info = poison_dataset(
            ds, attack(), 0.8, np.random.default_rng(2), relabel="all_to_all"
        )
        poisoned_classes = set(ds.labels[info.poisoned_indices].tolist())
        assert 0 in poisoned_classes  # target class not excluded in all-to-all

    def test_triggers_still_applied(self):
        ds = make_dataset()
        poisoned, info = poison_dataset(
            ds, attack(), 0.3, np.random.default_rng(3), relabel="all_to_all"
        )
        idx = info.poisoned_indices[0]
        assert poisoned.images[idx, 0, -1, -2] == 1.0  # checker corner

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="relabel"):
            poison_dataset(make_dataset(), attack(), 0.1, relabel="all_to_none")

    def test_all_to_one_unchanged_by_default(self):
        ds = make_dataset()
        poisoned, info = poison_dataset(ds, attack(), 0.3, np.random.default_rng(4))
        assert np.all(poisoned.labels[info.poisoned_indices] == 0)
