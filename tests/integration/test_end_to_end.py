"""Integration tests: the full attack → defend → measure pipeline.

These exercise the same code path as the benchmark harness, on a scale that
completes in seconds: tiny model fixture, 8x8 images, 3 classes.
"""

import copy

import numpy as np
import pytest

from repro.attacks import BlendedAttack, BPPAttack, LowFrequencyAttack
from repro.attacks.poisoner import train_backdoored_model
from repro.core import GradPruneConfig, GradPruneDefense
from repro.data.splits import defender_split
from repro.defenses import build_defense
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics
from repro.training import TrainConfig
from tests.conftest import IMAGE_SHAPE, TinyConvNet, make_tiny_dataset


class TestPipelinePerAttack:
    """Each attack family embeds and Grad-Prune mitigates on the tiny task."""

    @pytest.mark.parametrize(
        "attack_factory",
        [
            lambda: BlendedAttack(target_class=0, image_shape=IMAGE_SHAPE, blend_ratio=0.3),
            lambda: BPPAttack(target_class=0, image_shape=IMAGE_SHAPE, bit_depth=1),
            lambda: LowFrequencyAttack(target_class=0, image_shape=IMAGE_SHAPE, amplitude=0.3),
        ],
        ids=["blended", "bpp", "lf"],
    )
    def test_embed_then_mitigate(self, attack_factory, tiny_train, tiny_test, tiny_reservoir):
        attack = attack_factory()
        model = TinyConvNet(seed=1)
        train_backdoored_model(
            model, tiny_train, attack, poison_ratio=0.15,
            config=TrainConfig(epochs=8, batch_size=32, lr=0.08, shuffle_seed=0),
            rng=np.random.default_rng(0),
        )
        before = evaluate_backdoor_metrics(model, tiny_test, attack)
        if before.asr < 0.5:
            pytest.skip(f"{attack.name} failed to embed on the tiny task (asr={before.asr})")

        clean_train, clean_val = defender_split(tiny_reservoir, 20, np.random.default_rng(1))
        data = DefenderData(clean_train, clean_val, attack)
        GradPruneDefense(GradPruneConfig(prune_patience=3, tune_max_epochs=8, seed=0)).apply(model, data)
        after = evaluate_backdoor_metrics(model, tiny_test, attack)
        assert after.asr < before.asr
        assert after.acc > 0.5


class TestDefenseComparison:
    """All defenses run on the same backdoored model; shape of Table I rows."""

    def test_all_defenses_produce_valid_metrics(
        self, backdoored_tiny_model, tiny_reservoir, tiny_test, tiny_attack
    ):
        clean_train, clean_val = defender_split(tiny_reservoir, 20, np.random.default_rng(2))
        data = DefenderData(clean_train, clean_val, tiny_attack)
        fast_kwargs = {
            "ft": {"epochs": 3},
            "fp": {"epochs": 3},
            "nad": {"teacher_epochs": 2, "epochs": 2},
            "clp": {},
            "ft_sam": {"epochs": 3},
            "anp": {"steps": 15},
            "grad_prune": {"prune_patience": 2, "tune_max_epochs": 3},
        }
        results = {}
        for name, kwargs in fast_kwargs.items():
            model = copy.deepcopy(backdoored_tiny_model)
            build_defense(name, **kwargs).apply(model, data)
            metrics = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
            results[name] = metrics
            assert 0 <= metrics.acc <= 1
            assert 0 <= metrics.asr <= 1
            assert metrics.asr + metrics.ra <= 1 + 1e-9
        # Grad-Prune with backdoor data should be at least as good at ASR
        # removal as doing nothing.
        baseline = evaluate_backdoor_metrics(backdoored_tiny_model, tiny_test, tiny_attack)
        assert results["grad_prune"].asr <= baseline.asr


class TestSPCProtocol:
    def test_spc2_extreme_budget_runs(self, backdoored_tiny_model, tiny_reservoir, tiny_test, tiny_attack):
        clean_train, clean_val = defender_split(tiny_reservoir, 2, np.random.default_rng(3))
        assert len(clean_train) == 3 and len(clean_val) == 3  # 1 per class each
        data = DefenderData(clean_train, clean_val, tiny_attack)
        model = copy.deepcopy(backdoored_tiny_model)
        GradPruneDefense(GradPruneConfig(prune_patience=2, tune_max_epochs=3)).apply(model, data)
        metrics = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert 0 <= metrics.acc <= 1

    def test_five_trials_decorrelated(self, backdoored_tiny_model, tiny_reservoir, tiny_test, tiny_attack):
        from repro.eval import budget_trials

        accs = []
        for budget in budget_trials(spc=10, num_trials=3, root_seed=0):
            data = budget.draw(tiny_reservoir, attack=tiny_attack)
            model = copy.deepcopy(backdoored_tiny_model)
            build_defense("ft", epochs=2).apply(model, data)
            accs.append(evaluate_backdoor_metrics(model, tiny_test, tiny_attack).acc)
        assert len(accs) == 3


class TestCheckpointing:
    def test_defended_model_serializes(self, backdoored_tiny_model, tiny_reservoir, tiny_attack, tiny_test, tmp_path):
        from repro.nn.serialization import load_module, save_module

        clean_train, clean_val = defender_split(tiny_reservoir, 10, np.random.default_rng(5))
        data = DefenderData(clean_train, clean_val, tiny_attack)
        model = copy.deepcopy(backdoored_tiny_model)
        GradPruneDefense(GradPruneConfig(prune_patience=2, tune_max_epochs=2)).apply(model, data)
        path = str(tmp_path / "defended.npz")
        save_module(model, path)
        restored = TinyConvNet(seed=99)
        load_module(restored, path)
        a = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        b = evaluate_backdoor_metrics(restored, tiny_test, tiny_attack)
        assert a.acc == pytest.approx(b.acc)
        assert a.asr == pytest.approx(b.asr)
