"""Integration: federated backdoor injection followed by server-side repair."""

import numpy as np
import pytest

from repro.core import GradPruneConfig, GradPruneDefense
from repro.data.splits import defender_split
from repro.defenses.base import DefenderData
from repro.eval import evaluate_backdoor_metrics
from repro.federated import run_federated_backdoor
from tests.conftest import TinyConvNet


class TestFederatedThenRepair:
    def test_server_side_grad_prune_repairs_global_model(
        self, tiny_train, tiny_test, tiny_reservoir, tiny_attack
    ):
        model = TinyConvNet(seed=0)
        _server, log = run_federated_backdoor(
            model, tiny_train, tiny_test, tiny_attack,
            num_clients=4, num_malicious=1, rounds=6,
            local_epochs=2, boost=4.0, lr=0.08, seed=0,
        )
        compromised = log.final
        if compromised.asr < 0.5:
            pytest.skip("backdoor did not embed through FedAvg in this configuration")

        clean_train, clean_val = defender_split(
            tiny_reservoir, 20, np.random.default_rng(1)
        )
        data = DefenderData(clean_train, clean_val, tiny_attack)
        GradPruneDefense(GradPruneConfig(prune_patience=3, tune_max_epochs=8, seed=0)).apply(
            model, data
        )
        repaired = evaluate_backdoor_metrics(model, tiny_test, tiny_attack)
        assert repaired.asr < compromised.asr * 0.6
        assert repaired.acc > 0.5

    def test_trimmed_mean_blunts_but_grad_prune_finishes(
        self, tiny_train, tiny_test, tiny_attack
    ):
        fedavg_model = TinyConvNet(seed=0)
        _s1, fedavg_log = run_federated_backdoor(
            fedavg_model, tiny_train, tiny_test, tiny_attack,
            num_clients=4, num_malicious=1, rounds=4,
            local_epochs=2, boost=4.0, lr=0.08, seed=0,
        )
        robust_model = TinyConvNet(seed=0)
        _s2, robust_log = run_federated_backdoor(
            robust_model, tiny_train, tiny_test, tiny_attack,
            num_clients=4, num_malicious=1, rounds=4,
            local_epochs=2, boost=4.0, lr=0.08,
            aggregation="trimmed_mean", seed=0,
        )
        # Robust aggregation should not make the backdoor stronger.
        assert robust_log.final.asr <= fedavg_log.final.asr + 0.15
