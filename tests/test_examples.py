"""Example-script smoke tests.

Full example runs take minutes (they train models); these tests verify the
scripts parse, import, and expose a ``main`` guarded by ``__main__`` so CI
catches bitrot without paying the training cost.  The quickstart is also
executed end-to-end in miniature by the integration suite.
"""

import ast
import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")
EXAMPLE_FILES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


@pytest.mark.parametrize("filename", EXAMPLE_FILES)
class TestExampleStructure:
    def test_parses(self, filename):
        path = os.path.join(EXAMPLES_DIR, filename)
        with open(path) as handle:
            tree = ast.parse(handle.read(), filename=filename)
        assert tree is not None

    def test_has_main_and_guard(self, filename):
        path = os.path.join(EXAMPLES_DIR, filename)
        with open(path) as handle:
            source = handle.read()
        tree = ast.parse(source)
        function_names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in function_names
        assert '__name__ == "__main__"' in source

    def test_has_module_docstring(self, filename):
        path = os.path.join(EXAMPLES_DIR, filename)
        with open(path) as handle:
            tree = ast.parse(handle.read())
        assert ast.get_docstring(tree), f"{filename} lacks a docstring"

    def test_imports_resolve(self, filename):
        # Import the module without triggering main() (the __main__ guard).
        path = os.path.join(EXAMPLES_DIR, filename)
        old_argv = sys.argv
        try:
            sys.argv = [filename]
            runpy.run_path(path, run_name="example_import_check")
        finally:
            sys.argv = old_argv


def test_expected_example_set():
    assert "quickstart.py" in EXAMPLE_FILES
    assert len(EXAMPLE_FILES) >= 3  # the deliverable floor; we ship more
