"""STRIP detector tests."""

import numpy as np
import pytest

from repro.synthesis import StripDetector, prediction_entropy


class TestPredictionEntropy:
    def test_range(self, backdoored_tiny_model, tiny_test):
        entropy = prediction_entropy(backdoored_tiny_model, tiny_test.images)
        assert entropy.shape == (len(tiny_test),)
        assert (entropy >= 0).all()
        assert (entropy <= np.log(3) + 1e-6).all()  # 3 classes

    def test_uniform_model_max_entropy(self, tiny_test):
        from repro.nn import Module, Tensor

        class Uniform(Module):
            def forward(self, x):
                return Tensor(np.zeros((x.shape[0], 3), dtype=np.float32))

        entropy = prediction_entropy(Uniform(), tiny_test.images[:8])
        assert np.allclose(entropy, np.log(3), atol=1e-5)


class TestStripDetector:
    def test_calibration_respects_fpr(self, backdoored_tiny_model, tiny_reservoir):
        detector = StripDetector(
            backdoored_tiny_model, tiny_reservoir,
            num_overlays=8, false_positive_rate=0.1, seed=0,
        )
        detector.calibrate()
        result = detector.detect(tiny_reservoir.images)
        # Clean inputs flagged at ~ the calibrated FPR (quantile definition).
        assert result.flagged.mean() <= 0.2

    def test_triggered_inputs_flagged_under_strip_premise(self, tiny_reservoir, tiny_test, tiny_attack):
        # STRIP's premise — the trigger dominates blends more than natural
        # features do — is attack/task dependent (it does NOT hold for the
        # trivial dominant-channel fixture task).  Test the detector's
        # separation logic against an oracle that embodies the premise: any
        # corner that still resembles the checker yields a confident target
        # prediction, everything else is maximally uncertain.
        from repro.nn import Module, Tensor

        class StripPremiseOracle(Module):
            def forward(self, x):
                data = x.data
                n = data.shape[0]
                corner = data[:, :, -2:, -2:].mean(axis=1)
                checker = (np.indices((2, 2)).sum(axis=0) % 2).astype(np.float32)
                correlation = ((corner - corner.mean(axis=(1, 2), keepdims=True)) *
                               (checker - checker.mean())).sum(axis=(1, 2))
                logits = np.zeros((n, 3), dtype=np.float32)
                logits[correlation > 0.1, 0] = 12.0  # confident target
                return Tensor(logits)

        detector = StripDetector(
            StripPremiseOracle(), tiny_reservoir,
            num_overlays=12, blend_alpha=0.5, false_positive_rate=0.1, seed=0,
        )
        triggered = tiny_attack.apply(tiny_test.images)
        clean_result = detector.detect(tiny_test.images)
        triggered_result = detector.detect(triggered)
        assert triggered_result.entropies.mean() < clean_result.entropies.mean()
        assert triggered_result.flagged.mean() > 0.5
        assert clean_result.flagged.mean() < 0.3

    def test_validation_errors(self, backdoored_tiny_model, tiny_reservoir):
        from repro.data import ImageDataset

        tiny_pool = ImageDataset(tiny_reservoir.images[:1], tiny_reservoir.labels[:1])
        with pytest.raises(ValueError, match="pool"):
            StripDetector(backdoored_tiny_model, tiny_pool)
        with pytest.raises(ValueError, match="blend_alpha"):
            StripDetector(backdoored_tiny_model, tiny_reservoir, blend_alpha=1.0)
        with pytest.raises(ValueError, match="false_positive"):
            StripDetector(backdoored_tiny_model, tiny_reservoir, false_positive_rate=0.0)

    def test_detect_autocalibrates(self, backdoored_tiny_model, tiny_reservoir, tiny_test):
        detector = StripDetector(backdoored_tiny_model, tiny_reservoir, num_overlays=4, seed=0)
        result = detector.detect(tiny_test.images[:10])
        assert result.threshold is not None
        assert result.entropies.shape == (10,)


class TestFilteredInference:
    def test_effective_asr_bounded_by_raw(
        self, backdoored_tiny_model, tiny_reservoir, tiny_test, tiny_attack
    ):
        from repro.synthesis import evaluate_filtered_inference

        detector = StripDetector(
            backdoored_tiny_model, tiny_reservoir, num_overlays=6, seed=0
        )
        result = evaluate_filtered_inference(
            backdoored_tiny_model, detector, tiny_test, tiny_attack
        )
        assert 0.0 <= result.effective_asr <= result.raw_asr + 1e-9
        assert 0.0 <= result.clean_rejection_rate <= 1.0
        assert 0.0 <= result.triggered_detection_rate <= 1.0

    def test_perfect_detector_zeroes_asr(self, tiny_reservoir, tiny_test, tiny_attack):
        from repro.synthesis import evaluate_filtered_inference
        from repro.nn import Module, Tensor

        class AlwaysTarget(Module):
            def forward(self, x):
                logits = np.zeros((x.shape[0], 3), dtype=np.float32)
                logits[:, 0] = 5.0
                return Tensor(logits)

        class FlagEverything(StripDetector):
            def detect(self, images):
                from repro.synthesis.strip import StripResult

                n = len(images)
                return StripResult(np.zeros(n), np.ones(n, dtype=bool), 0.0)

        detector = FlagEverything(AlwaysTarget(), tiny_reservoir, num_overlays=2, seed=0)
        result = evaluate_filtered_inference(AlwaysTarget(), detector, tiny_test, tiny_attack)
        assert result.raw_asr == pytest.approx(1.0)
        assert result.effective_asr == 0.0


class TestVectorizedScoring:
    def test_matches_per_overlay_reference_loop(self, backdoored_tiny_model, tiny_reservoir, tiny_test):
        # The stacked (chunk * num_overlays) forward must reproduce the old
        # per-overlay loop bit-for-bit given the same overlay assignment.
        from repro.synthesis import strip_entropy_scores

        images = tiny_test.images[:12]
        pool = tiny_reservoir.images
        rng = np.random.default_rng(3)
        overlay_idx = rng.integers(0, len(pool), size=(6, len(images)))

        reference = np.zeros(len(images))
        for k in range(overlay_idx.shape[0]):
            blended = 0.5 * images + 0.5 * pool[overlay_idx[k]]
            blended = np.clip(blended, 0.0, 1.0).astype(np.float32)
            from repro.synthesis import prediction_entropy

            reference += prediction_entropy(backdoored_tiny_model, blended)
        reference /= overlay_idx.shape[0]

        vectorized = strip_entropy_scores(
            backdoored_tiny_model, images, pool, overlay_idx, blend_alpha=0.5
        )
        np.testing.assert_allclose(vectorized, reference, rtol=1e-5, atol=1e-6)

    def test_chunking_invariant(self, backdoored_tiny_model, tiny_reservoir, tiny_test):
        # Tiny batch_size forces many chunks; scores must not change.
        from repro.synthesis import strip_entropy_scores

        images = tiny_test.images[:9]
        pool = tiny_reservoir.images
        overlay_idx = np.random.default_rng(5).integers(0, len(pool), size=(4, len(images)))
        big = strip_entropy_scores(backdoored_tiny_model, images, pool, overlay_idx, 0.5, batch_size=512)
        small = strip_entropy_scores(backdoored_tiny_model, images, pool, overlay_idx, 0.5, batch_size=2)
        np.testing.assert_allclose(big, small, rtol=1e-5, atol=1e-6)

    def test_shape_mismatch_rejected(self, backdoored_tiny_model, tiny_reservoir, tiny_test):
        from repro.synthesis import strip_entropy_scores

        with pytest.raises(ValueError):
            strip_entropy_scores(
                backdoored_tiny_model,
                tiny_test.images[:4],
                tiny_reservoir.images,
                np.zeros((3, 5), dtype=int),
                0.5,
            )

    def test_shared_overlays_match_tiled_index_table(
        self, backdoored_tiny_model, tiny_reservoir, tiny_test
    ):
        # A 1-D overlay_idx (one shared overlay set, the serving-gateway
        # form) must equal the 2-D form with that set tiled to every input.
        from repro.synthesis import strip_entropy_scores

        images = tiny_test.images[:7]
        pool = tiny_reservoir.images
        shared_idx = np.random.default_rng(9).integers(0, len(pool), size=5)
        tiled_idx = np.repeat(shared_idx[:, None], len(images), axis=1)

        shared = strip_entropy_scores(
            backdoored_tiny_model, images, pool, shared_idx, 0.5, batch_size=16
        )
        tiled = strip_entropy_scores(
            backdoored_tiny_model, images, pool, tiled_idx, 0.5, batch_size=16
        )
        np.testing.assert_allclose(shared, tiled, rtol=1e-5, atol=1e-6)
