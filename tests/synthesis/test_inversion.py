"""Trigger-inversion tests."""

import copy

import numpy as np
import pytest

from repro.data import ImageDataset
from repro.synthesis import (
    InvertedTrigger,
    SynthesizedTriggerAttack,
    detect_backdoor,
    grad_prune_without_trigger,
    invert_trigger,
)
from repro.core import GradPruneConfig
from repro.defenses.base import DefenderData
from repro.data.splits import defender_split
from tests.conftest import IMAGE_SHAPE


class TestInvertTrigger:
    def test_recovers_flipping_trigger(self, backdoored_tiny_model, tiny_reservoir):
        trigger = invert_trigger(
            backdoored_tiny_model, tiny_reservoir, target_class=0, steps=120, seed=0
        )
        assert trigger.flip_rate > 0.8
        assert 0.0 <= trigger.mask.min() and trigger.mask.max() <= 1.0
        assert 0.0 <= trigger.pattern.min() and trigger.pattern.max() <= 1.0
        assert trigger.mask.shape == IMAGE_SHAPE[1:]
        assert trigger.pattern.shape == IMAGE_SHAPE

    def test_mask_l1_recorded(self, backdoored_tiny_model, tiny_reservoir):
        trigger = invert_trigger(
            backdoored_tiny_model, tiny_reservoir, target_class=1, steps=60, seed=0
        )
        assert trigger.mask_l1 == pytest.approx(float(np.abs(trigger.mask).sum()))

    def test_model_weights_untouched(self, backdoored_tiny_model, tiny_reservoir):
        before = {k: v.copy() for k, v in backdoored_tiny_model.state_dict().items()}
        invert_trigger(backdoored_tiny_model, tiny_reservoir, 0, steps=30, seed=0)
        after = backdoored_tiny_model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_empty_data_raises(self, backdoored_tiny_model):
        empty = ImageDataset(np.zeros((0, *IMAGE_SHAPE), dtype=np.float32), np.zeros(0))
        with pytest.raises(ValueError):
            invert_trigger(backdoored_tiny_model, empty, 0)

    def test_deterministic_given_seed(self, backdoored_tiny_model, tiny_reservoir):
        a = invert_trigger(backdoored_tiny_model, tiny_reservoir, 0, steps=40, seed=3)
        b = invert_trigger(backdoored_tiny_model, tiny_reservoir, 0, steps=40, seed=3)
        assert np.allclose(a.mask, b.mask)
        assert np.allclose(a.pattern, b.pattern)


class TestInvertedTriggerApply:
    def test_apply_respects_mask(self):
        mask = np.zeros((8, 8), dtype=np.float32)
        mask[0, 0] = 1.0
        pattern = np.full(IMAGE_SHAPE, 0.9, dtype=np.float32)
        trigger = InvertedTrigger(0, mask, pattern, 1.0, 0.0)
        images = np.zeros((2, *IMAGE_SHAPE), dtype=np.float32)
        out = trigger.apply(images)
        assert np.allclose(out[:, :, 0, 0], 0.9)
        assert np.allclose(out[:, :, 1:, :], 0.0)

    def test_synthesized_attack_adapter(self, tiny_test):
        mask = np.full((8, 8), 0.5, dtype=np.float32)
        pattern = np.ones(IMAGE_SHAPE, dtype=np.float32)
        trigger = InvertedTrigger(2, mask, pattern, 32.0, 0.0)
        attack = SynthesizedTriggerAttack(trigger, image_shape=IMAGE_SHAPE)
        assert attack.target_class == 2
        triggered = attack.poisoned_copy(tiny_test)
        assert np.all(triggered.labels == 2)
        assert not np.array_equal(triggered.images, tiny_test.images)


class TestDetection:
    def test_detection_structure(self, backdoored_tiny_model, tiny_reservoir):
        result = detect_backdoor(
            backdoored_tiny_model, tiny_reservoir, num_classes=3, steps=40, seed=0
        )
        assert len(result["triggers"]) == 3
        assert result["mask_l1"].shape == (3,)
        assert result["anomaly_index"].shape == (3,)
        assert isinstance(result["flagged_classes"], list)


class TestTriggerFreeDefense:
    def test_pipeline_runs_with_known_target(
        self, backdoored_tiny_model, tiny_reservoir, tiny_test, tiny_attack
    ):
        model = copy.deepcopy(backdoored_tiny_model)
        clean_train, clean_val = defender_split(tiny_reservoir, 10, np.random.default_rng(0))
        data = DefenderData(clean_train, clean_val, attack=None)
        report, synth = grad_prune_without_trigger(
            model, data, num_classes=3,
            config=GradPruneConfig(prune_patience=2, tune_max_epochs=3),
            inversion_steps=60, target_class=0, seed=0,
        )
        assert report.details["synthesized_target"] == 0
        assert report.details["trigger_flip_rate"] >= 0.0
        assert isinstance(synth, SynthesizedTriggerAttack)

    def test_pipeline_with_detection(self, backdoored_tiny_model, tiny_reservoir):
        model = copy.deepcopy(backdoored_tiny_model)
        clean_train, clean_val = defender_split(tiny_reservoir, 10, np.random.default_rng(1))
        data = DefenderData(clean_train, clean_val, attack=None)
        report, _synth = grad_prune_without_trigger(
            model, data, num_classes=3,
            config=GradPruneConfig(prune_patience=2, tune_max_epochs=2),
            inversion_steps=40, seed=0,
        )
        assert 0 <= report.details["synthesized_target"] < 3
