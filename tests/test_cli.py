"""CLI tests (fast paths only; experiment runs are covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_requires_valid_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])

    def test_attack_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "unknown_attack"])

    def test_defend_parses_full(self):
        args = build_parser().parse_args(
            ["defend", "badnets", "grad_prune", "--spc", "2", "--model", "vgg19_bn"]
        )
        assert args.attack_name == "badnets"
        assert args.defense_name == "grad_prune"
        assert args.spc == 2

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestClaimsCommand:
    def test_empty_dir_fails_gracefully(self, tmp_path, capsys):
        assert main(["claims", "--dir", str(tmp_path)]) == 1
        assert "run the benchmarks" in capsys.readouterr().out

    def test_reads_stored_results(self, tmp_path, capsys):
        import json

        payload = {
            "aggregates": [
                {
                    "defense": "grad_prune", "spc": 10,
                    "acc_mean": 0.9, "acc_std": 0.0,
                    "asr_mean": 0.05, "asr_std": 0.0,
                    "ra_mean": 0.8, "ra_std": 0.0, "num_trials": 1,
                },
                {
                    "defense": "clp", "spc": 10,
                    "acc_mean": 0.9, "acc_std": 0.0,
                    "asr_mean": 0.95, "asr_std": 0.0,
                    "ra_mean": 0.03, "ra_std": 0.0, "num_trials": 1,
                },
            ],
            "baseline": {"acc": 0.92, "asr": 0.99, "ra": 0.01},
            "extra": {},
        }
        (tmp_path / "table1_badnets.json").write_text(json.dumps(payload))
        exit_code = main(["claims", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "table1_badnets" in out
        assert "[PASS]" in out
        assert exit_code == 0


class TestListCommand:
    def test_list_prints_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "preact_resnet18" in out
        assert "badnets" in out
        assert "grad_prune" in out
        assert "table1" in out


class TestExperimentFlagForwarding:
    """--attacks / --models / --profile must reach run_experiment intact."""

    def _capture(self, monkeypatch):
        calls = {}

        def fake_run_experiment(spec, attacks=None, models=None, root_seed=0):
            calls.update(spec=spec, attacks=attacks, models=models, root_seed=root_seed)

            class _Result:
                @staticmethod
                def table_text():
                    return "(table)"

            return _Result()

        monkeypatch.setattr("repro.cli.run_experiment", fake_run_experiment)
        return calls

    def test_defaults_pass_none_filters(self, monkeypatch, capsys):
        calls = self._capture(monkeypatch)
        assert main(["experiment", "table1"]) == 0
        assert calls["spec"].experiment_id == "table1"
        assert calls["attacks"] is None
        assert calls["models"] is None
        assert calls["root_seed"] == 0
        assert "(table)" in capsys.readouterr().out

    def test_attack_and_model_filters_forwarded(self, monkeypatch, capsys):
        calls = self._capture(monkeypatch)
        assert main([
            "experiment", "figure2",
            "--attacks", "badnets", "blended",
            "--models", "preact_resnet18",
            "--seed", "7",
        ]) == 0
        assert calls["attacks"] == ("badnets", "blended")
        assert calls["models"] == ("preact_resnet18",)
        assert calls["root_seed"] == 7

    def test_profile_resolves_spec(self, monkeypatch, capsys):
        calls = self._capture(monkeypatch)
        assert main(["experiment", "table1", "--profile", "paper"]) == 0
        assert calls["spec"].profile.name == "paper"
        calls = self._capture(monkeypatch)
        assert main(["experiment", "table1", "--profile", "quick"]) == 0
        assert calls["spec"].profile.name == "quick"


class TestOrchestrateCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["orchestrate", "table1"])
        assert args.command == "orchestrate"
        assert args.workers is None  # resolved to CPU count at run time
        assert args.resume is False
        assert args.max_retries == 2
        assert args.task_timeout is None
        assert args.run_dir is None

    def test_parser_full(self):
        args = build_parser().parse_args([
            "orchestrate", "figure1", "--workers", "4", "--resume",
            "--task-timeout", "30", "--max-retries", "5",
            "--attacks", "badnets", "--models", "vgg19_bn",
            "--run-dir", "/tmp/run", "--seed", "3",
        ])
        assert args.workers == 4 and args.resume is True
        assert args.task_timeout == 30.0 and args.max_retries == 5
        assert args.attacks == ["badnets"] and args.models == ["vgg19_bn"]
        assert args.run_dir == "/tmp/run" and args.seed == 3

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["orchestrate", "nope"])

    def test_wiring_reaches_orchestrator(self, monkeypatch, capsys):
        captured = {}

        class FakeOrchestrator:
            def __init__(self, config):
                captured["config"] = config

            def run(self, spec, attacks=None, models=None, root_seed=0):
                captured.update(spec=spec, attacks=attacks, models=models, root_seed=root_seed)

                class _Result:
                    ok = True

                    @staticmethod
                    def table_text():
                        return "(orchestrated table)"

                    @staticmethod
                    def summary():
                        return "orchestrate: done=7"

                return _Result()

        monkeypatch.setattr("repro.cli.Orchestrator", FakeOrchestrator)
        exit_code = main([
            "orchestrate", "table1", "--workers", "3", "--resume",
            "--attacks", "badnets", "--seed", "5",
        ])
        assert exit_code == 0
        assert captured["config"].workers == 3
        assert captured["config"].resume is True
        assert captured["spec"].experiment_id == "table1"
        assert captured["attacks"] == ("badnets",)
        assert captured["root_seed"] == 5
        out = capsys.readouterr().out
        assert "(orchestrated table)" in out and "done=7" in out

    def test_failed_cells_exit_nonzero(self, monkeypatch, capsys):
        class FakeOrchestrator:
            def __init__(self, config):
                pass

            def run(self, spec, **kwargs):
                class _Result:
                    ok = False

                    @staticmethod
                    def table_text():
                        return ""

                    @staticmethod
                    def summary():
                        return "orchestrate: failed=1"

                return _Result()

        monkeypatch.setattr("repro.cli.Orchestrator", FakeOrchestrator)
        assert main(["orchestrate", "table1"]) == 1


class TestOrchestrateFederated:
    def test_tableF_only_reachable_via_orchestrate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "tableF"])
        args = build_parser().parse_args(["orchestrate", "tableF"])
        assert args.experiment_id == "tableF"

    def test_parser_federated_flags(self):
        args = build_parser().parse_args([
            "orchestrate", "tableF", "--clients", "64", "256",
            "--fractions", "0.125", "--rounds", "4",
            "--partition", "dirichlet", "--alpha", "0.1",
            "--poison-ratio", "0.4", "--defenses", "grad_prune", "fed_unlearn",
        ])
        assert args.clients == [64, 256]
        assert args.fractions == [0.125]
        assert args.rounds == 4
        assert args.partition == "dirichlet"
        assert args.alpha == 0.1
        assert args.poison_ratio == 0.4
        assert args.defenses == ["grad_prune", "fed_unlearn"]

    def test_unknown_defense_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["orchestrate", "tableF", "--defenses", "retrain"])

    def test_wiring_reaches_federated_orchestrator(self, monkeypatch, capsys):
        captured = {}

        class FakeFederatedOrchestrator:
            def __init__(self, config):
                captured["config"] = config

            def run(self, spec):
                captured["spec"] = spec

                class _Result:
                    ok = True

                    @staticmethod
                    def table_text():
                        return "(federated table)"

                    @staticmethod
                    def summary():
                        return "orchestrate[tableF]: done=11"

                return _Result()

        monkeypatch.setattr(
            "repro.federated.FederatedOrchestrator", FakeFederatedOrchestrator
        )
        exit_code = main([
            "orchestrate", "tableF", "--workers", "2",
            "--clients", "8", "--fractions", "0.25", "--rounds", "2",
            "--alpha", "0.2", "--seed", "9",
        ])
        assert exit_code == 0
        assert captured["config"].workers == 2
        spec = captured["spec"]
        assert spec.experiment_id == "tableF"
        assert spec.client_counts == (8,)
        assert spec.malicious_fractions == (0.25,)
        assert spec.base.rounds == 2
        assert spec.base.alpha == 0.2
        assert spec.base.seed == 9
        out = capsys.readouterr().out
        assert "(federated table)" in out and "done=11" in out


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.model == "preact_resnet18"
        assert args.alias == "default"
        assert args.workers is None
        assert args.max_batch == 32
        assert args.max_wait_ms == 5.0
        assert args.strip is False
        assert args.bootstrap is True
        assert args.http is None
        assert args.traffic is None
        assert args.requests == 96

    def test_parser_full(self):
        args = build_parser().parse_args([
            "serve", "--model", "vgg19_bn", "--registry", "/tmp/reg",
            "--alias", "canary", "--workers", "4", "--max-batch", "16",
            "--max-wait-ms", "2.5", "--strip", "--no-bootstrap",
            "--http", "8080", "--traffic", "adversarial", "--requests", "48",
        ])
        assert args.model == "vgg19_bn"
        assert args.registry == "/tmp/reg"
        assert args.alias == "canary"
        assert args.workers == 4
        assert args.max_batch == 16
        assert args.max_wait_ms == 2.5
        assert args.strip is True
        assert args.bootstrap is False
        assert args.http == 8080
        assert args.traffic == "adversarial"
        assert args.requests == 48

    def test_strip_flag_is_negatable(self):
        assert build_parser().parse_args(["serve", "--no-strip"]).strip is False
        assert build_parser().parse_args(["serve", "--strip"]).strip is True

    def test_traffic_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--traffic", "tsunami"])

    def test_empty_alias_without_bootstrap_fails(self, tmp_path, capsys):
        code = main([
            "serve", "--registry", str(tmp_path), "--no-bootstrap",
            "--max-wait-ms", "1",
        ])
        assert code == 1
        assert "--no-bootstrap" in capsys.readouterr().out


class TestWatchCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["watch", "/tmp/run"])
        assert args.command == "watch"
        assert args.target == "/tmp/run"
        assert args.interval == 1.0
        assert args.once is False
        assert args.duration is None
        assert args.width == 78

    def test_missing_target_fails_gracefully(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "nope"), "--once"]) == 1
        assert "no such run" in capsys.readouterr().out

    def test_once_renders_run_dir(self, tmp_path, capsys):
        import json

        records = [
            {"event": "run_meta", "experiment": "table1", "workers": 2},
            {"event": "queued", "task": "trial:t0", "kind": "trial"},
            {"event": "finished", "task": "trial:t0", "ts": 5.0,
             "result": {"metrics": {"acc": 0.9, "asr": 0.04, "ra": 0.8}}},
        ]
        with open(tmp_path / "ledger.jsonl", "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        assert main(["watch", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "ASR" in out

    def test_empty_stream_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "ledger.jsonl").write_text("")
        assert main(["watch", str(tmp_path), "--once"]) == 1


class TestRegistryCommand:
    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["registry"])

    def test_gc_parser_defaults(self):
        args = build_parser().parse_args(["registry", "gc"])
        assert args.registry_command == "gc"
        assert args.registry is None
        assert args.dry_run is False
        assert args.keep == []

    def test_gc_missing_registry_dir_fails(self, tmp_path, capsys):
        code = main(["registry", "gc", "--registry", str(tmp_path / "absent")])
        assert code == 1
        assert "no registry" in capsys.readouterr().out

    def test_gc_dry_run_reports_without_deleting(self, tmp_path, capsys):
        from repro.serving import ModelRegistry

        from tests.serving.conftest import publish_tiny, tiny_factory

        registry = ModelRegistry(str(tmp_path), factory=tiny_factory)
        publish_tiny(registry, seed=0)
        orphan = publish_tiny(registry, seed=1, alias=None)
        code = main(["registry", "gc", "--registry", str(tmp_path), "--dry-run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "would remove 1 checkpoint(s)" in out
        assert orphan in out
        assert orphan in registry.keys()

    def test_gc_removes_orphans(self, tmp_path, capsys):
        from repro.serving import ModelRegistry

        from tests.serving.conftest import publish_tiny, tiny_factory

        registry = ModelRegistry(str(tmp_path), factory=tiny_factory)
        live = publish_tiny(registry, seed=0)
        publish_tiny(registry, seed=1, alias=None)
        code = main(["registry", "gc", "--registry", str(tmp_path)])
        assert code == 0
        assert "removed 1 checkpoint(s)" in capsys.readouterr().out
        assert registry.keys() == [live]
