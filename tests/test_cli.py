"""CLI tests (fast paths only; experiment runs are covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_requires_valid_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])

    def test_attack_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "unknown_attack"])

    def test_defend_parses_full(self):
        args = build_parser().parse_args(
            ["defend", "badnets", "grad_prune", "--spc", "2", "--model", "vgg19_bn"]
        )
        assert args.attack_name == "badnets"
        assert args.defense_name == "grad_prune"
        assert args.spc == 2

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestClaimsCommand:
    def test_empty_dir_fails_gracefully(self, tmp_path, capsys):
        assert main(["claims", "--dir", str(tmp_path)]) == 1
        assert "run the benchmarks" in capsys.readouterr().out

    def test_reads_stored_results(self, tmp_path, capsys):
        import json

        payload = {
            "aggregates": [
                {
                    "defense": "grad_prune", "spc": 10,
                    "acc_mean": 0.9, "acc_std": 0.0,
                    "asr_mean": 0.05, "asr_std": 0.0,
                    "ra_mean": 0.8, "ra_std": 0.0, "num_trials": 1,
                },
                {
                    "defense": "clp", "spc": 10,
                    "acc_mean": 0.9, "acc_std": 0.0,
                    "asr_mean": 0.95, "asr_std": 0.0,
                    "ra_mean": 0.03, "ra_std": 0.0, "num_trials": 1,
                },
            ],
            "baseline": {"acc": 0.92, "asr": 0.99, "ra": 0.01},
            "extra": {},
        }
        (tmp_path / "table1_badnets.json").write_text(json.dumps(payload))
        exit_code = main(["claims", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "table1_badnets" in out
        assert "[PASS]" in out
        assert exit_code == 0


class TestListCommand:
    def test_list_prints_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "preact_resnet18" in out
        assert "badnets" in out
        assert "grad_prune" in out
        assert "table1" in out
