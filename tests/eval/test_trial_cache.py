"""TrialCache tests: keying, round trip, resume semantics."""

import numpy as np
import pytest

from repro.eval import BackdoorMetrics, ScenarioConfig, TrialCache


def config(**overrides):
    defaults = dict(dataset="synth_cifar", model="preact_resnet18", attack="badnets")
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestKeying:
    def test_key_stable(self):
        a = TrialCache.key(config(), "ft", {"epochs": 3}, 10, 42)
        b = TrialCache.key(config(), "ft", {"epochs": 3}, 10, 42)
        assert a == b

    def test_key_varies_with_defense(self):
        assert TrialCache.key(config(), "ft", None, 10, 42) != TrialCache.key(
            config(), "fp", None, 10, 42
        )

    def test_key_varies_with_kwargs(self):
        assert TrialCache.key(config(), "ft", {"epochs": 3}, 10, 42) != TrialCache.key(
            config(), "ft", {"epochs": 5}, 10, 42
        )

    def test_key_varies_with_budget_seed(self):
        assert TrialCache.key(config(), "ft", None, 10, 1) != TrialCache.key(
            config(), "ft", None, 10, 2
        )

    def test_key_varies_with_scenario(self):
        assert TrialCache.key(config(), "ft", None, 10, 1) != TrialCache.key(
            config(attack="blended"), "ft", None, 10, 1
        )

    def test_none_and_empty_kwargs_equivalent(self):
        assert TrialCache.key(config(), "ft", None, 10, 1) == TrialCache.key(
            config(), "ft", {}, 10, 1
        )


class TestRoundTrip:
    def test_store_load(self, tmp_path):
        cache = TrialCache(str(tmp_path))
        metrics = BackdoorMetrics(0.91, 0.03, 0.85)
        cache.store("abc", metrics)
        loaded = cache.load("abc")
        assert loaded.acc == pytest.approx(0.91)
        assert loaded.asr == pytest.approx(0.03)
        assert loaded.ra == pytest.approx(0.85)

    def test_miss_returns_none(self, tmp_path):
        assert TrialCache(str(tmp_path)).load("missing") is None


class TestRunnerIntegration:
    def test_second_trial_served_from_cache(self, tmp_path):
        from repro.eval import BenchmarkRunner, DefenderBudget, ScenarioCache

        runner = BenchmarkRunner(
            cache=ScenarioCache(str(tmp_path / "m")),
            trial_cache=TrialCache(str(tmp_path / "t")),
            verbose=False,
        )
        scenario = runner.prepare(
            config(n_train=150, n_test=60, n_reservoir=120, num_classes=3, train_epochs=2)
        )
        budget = DefenderBudget(spc=4, trial=0, seed=9)
        first = runner.run_defense_trial(scenario, "clp", budget)
        second = runner.run_defense_trial(scenario, "clp", budget)
        assert second.details.get("cached") is True
        assert second.metrics.acc == pytest.approx(first.metrics.acc)
        assert second.metrics.asr == pytest.approx(first.metrics.asr)


class TestCorruptionResilience:
    def test_corrupt_model_cache_is_a_miss_not_a_crash(self, tmp_path):
        """A killed worker can't poison the cache: corrupt .npz → retrain."""
        from repro.eval import ScenarioCache
        from repro.models import build_model

        cfg = config(n_train=150, n_test=60, n_reservoir=120, num_classes=3, train_epochs=2)
        cache = ScenarioCache(str(tmp_path))
        model = build_model("preact_resnet18", num_classes=3, profile="quick", seed=1)
        cache.store(cfg, model)
        path = cache.path(cfg)
        with open(path, "wb") as handle:
            handle.write(b"truncated garbage")
        fresh = build_model("preact_resnet18", num_classes=3, profile="quick", seed=2)
        assert cache.load(cfg, fresh) is False  # miss, not an exception
        import os

        assert not os.path.exists(path)  # corrupt artifact removed

    def test_corrupt_trial_json_is_a_miss(self, tmp_path):
        cache = TrialCache(str(tmp_path))
        cache.store("k1", BackdoorMetrics(0.9, 0.1, 0.8))
        with open(cache._path("k1"), "w") as handle:
            handle.write('{"acc": 0.9, "as')
        assert cache.load("k1") is None
