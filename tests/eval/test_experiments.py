"""Experiment-grid resolution tests (the benchmarks' shared spine)."""

import pytest

from repro.eval import ExperimentResult, experiment_spec, get_profile
from repro.eval.experiments import ALL_ATTACKS, ALL_DEFENSES, FIG2_DEFENSES, FIG2_MODELS


class TestProfiles:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert get_profile().name == "quick"

    def test_env_selects_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "paper")
        assert get_profile().name == "paper"

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "paper")
        assert get_profile("quick").name == "quick"

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            get_profile("gigantic")

    def test_paper_profile_matches_protocol(self):
        paper = get_profile("paper")
        assert paper.spc_values == (2, 10, 100)
        assert paper.num_trials == 5


class TestSpecs:
    def test_table1(self):
        spec = experiment_spec("table1", profile="quick")
        assert spec.dataset == "synth_cifar"
        assert spec.models == ("preact_resnet18",)
        assert spec.attacks == ALL_ATTACKS
        assert spec.defenses == ALL_DEFENSES

    def test_table2_model(self):
        assert experiment_spec("table2").models == ("vgg19_bn",)

    def test_figure1_covers_both_models(self):
        assert experiment_spec("figure1").models == ("preact_resnet18", "vgg19_bn")

    def test_figure2_gtsrb_grid(self):
        spec = experiment_spec("figure2")
        assert spec.dataset == "synth_gtsrb"
        assert spec.models == FIG2_MODELS
        assert spec.defenses == FIG2_DEFENSES

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            experiment_spec("table42")


class TestRunExperimentMicro:
    """End-to-end grid execution on a micro profile (seconds, not minutes)."""

    def test_micro_grid_runs_and_applies_model_overrides(self, tmp_path):
        from repro.eval import BenchmarkRunner, ScenarioCache, TrialCache
        from repro.eval.experiments import ExperimentProfile, ExperimentSpec, run_experiment

        profile = ExperimentProfile(
            name="micro",
            n_train=150,
            n_test=60,
            n_reservoir=120,
            train_epochs=2,
            spc_values=(4,),
            num_trials=1,
            num_classes_cifar=3,
            defense_kwargs={"ft": {"epochs": 1}},
            model_overrides={"preact_resnet18": {"train_lr": 0.03}},
        )
        spec = ExperimentSpec(
            "micro", "micro test", "synth_cifar", ("preact_resnet18",),
            ("badnets",), ("ft", "clp"), profile,
        )
        runner = BenchmarkRunner(
            cache=ScenarioCache(str(tmp_path / "m")),
            trial_cache=TrialCache(str(tmp_path / "t")),
            verbose=False,
        )
        result = run_experiment(spec, runner=runner)
        aggregates = result.results["preact_resnet18"]["badnets"]
        assert len(aggregates) == 2  # two defenses x one SPC
        assert {a.defense for a in aggregates} == {"ft", "clp"}
        baseline = result.baselines["preact_resnet18"]["badnets"]
        assert 0 <= baseline.acc <= 1
        # The override reached the scenario: its fingerprint differs from the
        # default-lr config.
        from repro.eval import ScenarioConfig

        default_config = ScenarioConfig(
            dataset="synth_cifar", model="preact_resnet18", attack="badnets",
            n_train=150, n_test=60, n_reservoir=120, num_classes=3, train_epochs=2,
        )
        override_config = ScenarioConfig(
            dataset="synth_cifar", model="preact_resnet18", attack="badnets",
            n_train=150, n_test=60, n_reservoir=120, num_classes=3, train_epochs=2,
            train_lr=0.03,
        )
        assert default_config.fingerprint() != override_config.fingerprint()
        assert result.table_text()  # renders


class TestExperimentResultHelpers:
    def _tiny_result(self):
        from repro.eval import AggregateResult, BackdoorMetrics

        spec = experiment_spec("table1")
        aggregates = [AggregateResult("ft", 2, 0.8, 0.0, 0.3, 0.0, 0.5, 0.0, 1)]
        return ExperimentResult(
            spec=spec,
            results={"preact_resnet18": {"badnets": aggregates}},
            baselines={"preact_resnet18": {"badnets": BackdoorMetrics(0.9, 0.99, 0.01)}},
        )

    def test_table_text_renders(self):
        text = self._tiny_result().table_text()
        assert "Table I" in text
        assert "badnets" in text

    def test_scatter_extracts_series(self):
        series = self._tiny_result().scatter("preact_resnet18")
        assert "ft" in series
        assert series["ft"]["acc_vs_asr"] == [(30.0, 80.0)]
