"""Benchmark-runner tests: scenario prep, caching, trial aggregation.

Uses a minimal scenario configuration (tiny dataset, tiny model profile,
few epochs) so the full attack→defense→metrics loop stays fast.
"""

import numpy as np
import pytest

from repro.eval import (
    AggregateResult,
    BackdoorMetrics,
    BenchmarkRunner,
    ScenarioCache,
    ScenarioConfig,
    TrialCache,
    TrialResult,
)


def tiny_config(**overrides):
    defaults = dict(
        dataset="synth_cifar",
        model="preact_resnet18",
        attack="badnets",
        n_train=200,
        n_test=80,
        n_reservoir=160,
        num_classes=4,
        train_epochs=3,
        # 3-epoch/200-sample runs are trajectory-chaotic: at the default 10%
        # poison ratio the embedded ASR swings with benign float reordering.
        # 25% keeps the backdoor comfortably above the 0.5 assertion on both
        # the engine-dispatched and reference training paths.
        poison_ratio=0.25,
        seed=0,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


@pytest.fixture()
def runner(tmp_path):
    return BenchmarkRunner(
        cache=ScenarioCache(str(tmp_path / "cache")),
        trial_cache=TrialCache(str(tmp_path / "trials")),
        verbose=False,
    )


class TestScenarioConfig:
    def test_fingerprint_stable(self):
        assert tiny_config().fingerprint() == tiny_config().fingerprint()

    def test_fingerprint_sensitive_to_fields(self):
        assert tiny_config().fingerprint() != tiny_config(attack="blended").fingerprint()


class TestScenarioPreparation:
    def test_prepare_trains_backdoored_model(self, runner):
        scenario = runner.prepare(tiny_config())
        assert scenario.baseline.asr > 0.5  # backdoor embedded
        assert len(scenario.test_set) == 80
        assert len(scenario.reservoir) == 160

    def test_cache_hit_second_time(self, runner, tmp_path):
        config = tiny_config()
        first = runner.prepare(config)
        second = runner.prepare(config)
        assert first.baseline.acc == pytest.approx(second.baseline.acc)
        a = first.backdoored_model.state_dict()
        b = second.backdoored_model.state_dict()
        for key in a:
            assert np.array_equal(a[key], b[key])

    def test_reservoir_disjoint_from_train_effects(self, runner):
        # Reservoir comes from the same distribution (same prototypes), so a
        # model trained on train-split classifies reservoir well.
        from repro.training import evaluate_accuracy

        scenario = runner.prepare(tiny_config())
        acc = evaluate_accuracy(scenario.backdoored_model, scenario.reservoir)
        assert acc > 0.3  # well above 4-class chance for this quick 3-epoch model

    def test_unknown_dataset_raises(self, runner):
        with pytest.raises(KeyError):
            runner.prepare(tiny_config(dataset="imagenet"))


class TestDefenseTrials:
    def test_single_trial(self, runner):
        from repro.eval import DefenderBudget

        scenario = runner.prepare(tiny_config())
        result = runner.run_defense_trial(
            scenario, "clp", DefenderBudget(spc=4, trial=0, seed=1)
        )
        assert isinstance(result.metrics, BackdoorMetrics)
        assert result.defense == "clp"

    def test_trial_does_not_mutate_scenario_model(self, runner):
        from repro.eval import DefenderBudget

        scenario = runner.prepare(tiny_config())
        before = {k: v.copy() for k, v in scenario.backdoored_model.state_dict().items()}
        runner.run_defense_trial(scenario, "ft", DefenderBudget(spc=4, trial=0, seed=1),
                                 defense_kwargs={"epochs": 2})
        after = scenario.backdoored_model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_run_cell_aggregates(self, runner):
        scenario = runner.prepare(tiny_config())
        agg = runner.run_cell(scenario, "clp", spc=4, num_trials=2)
        assert agg.num_trials == 2
        assert 0 <= agg.acc_mean <= 1
        assert agg.acc_std >= 0


class TestAggregateResult:
    def test_from_trials_statistics(self):
        trials = [
            TrialResult("x", 2, 0, BackdoorMetrics(0.8, 0.2, 0.6)),
            TrialResult("x", 2, 1, BackdoorMetrics(0.6, 0.4, 0.4)),
        ]
        agg = AggregateResult.from_trials(trials)
        assert agg.acc_mean == pytest.approx(0.7)
        assert agg.asr_mean == pytest.approx(0.3)
        assert agg.acc_std == pytest.approx(0.1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            AggregateResult.from_trials([])

    def test_row_format(self):
        agg = AggregateResult("x", 2, 0.9, 0.01, 0.1, 0.02, 0.8, 0.03, 5)
        row = agg.row()
        assert "90.00±1.00" in row
