"""SVG plotting tests (structure-level: valid XML-ish, right elements)."""

import pytest

from repro.eval import figure_svg, scatter_svg


def series():
    return {
        "grad_prune": {"acc_vs_asr": [(5.0, 90.0)], "ra_vs_asr": [(5.0, 85.0)]},
        "ft_sam": {"acc_vs_asr": [(10.0, 88.0), (60.0, 40.0)], "ra_vs_asr": [(10.0, 80.0), (60.0, 30.0)]},
    }


class TestScatterSvg:
    def test_valid_document(self):
        svg = scatter_svg(series(), "acc_vs_asr", title="Panel")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<svg") == svg.count("</svg>")

    def test_contains_legend_entries(self):
        svg = scatter_svg(series())
        assert ">grad_prune<" in svg
        assert ">ft_sam<" in svg

    def test_axis_labels(self):
        svg = scatter_svg(series(), "ra_vs_asr")
        assert "ASR (%)" in svg
        assert "RA (%)" in svg

    def test_point_count_matches(self):
        svg = scatter_svg(series(), "acc_vs_asr")
        # grad_prune: 1 data point + 1 legend marker (circles);
        # ft_sam: 2 data + 1 legend (squares).
        assert svg.count("<rect x=") == 3  # squares (background/frame use different attrs)

    def test_title_rendered(self):
        assert "My Title" in scatter_svg(series(), title="My Title")

    def test_unknown_series_raises(self):
        with pytest.raises(ValueError):
            scatter_svg(series(), "loss_vs_epoch")

    def test_out_of_range_values_stay_in_canvas(self):
        svg = scatter_svg({"x": {"acc_vs_asr": [(0.0, 100.0), (100.0, 0.0)], "ra_vs_asr": []}})
        assert "<circle" in svg


class TestLineSvg:
    def test_renders_polylines_and_legend(self):
        from repro.eval import line_svg

        svg = line_svg({"loss": [3.0, 2.0, 1.0], "acc": [0.1, 0.5, 0.9]}, title="Training")
        assert svg.count("<polyline") == 2
        assert ">loss<" in svg and ">acc<" in svg
        assert "Training" in svg

    def test_flat_series_does_not_divide_by_zero(self):
        from repro.eval import line_svg

        svg = line_svg({"constant": [1.0, 1.0, 1.0]})
        assert "<polyline" in svg

    def test_empty_raises(self):
        from repro.eval import line_svg

        with pytest.raises(ValueError):
            line_svg({})
        with pytest.raises(ValueError):
            line_svg({"x": []})

    def test_single_point_series(self):
        from repro.eval import line_svg

        svg = line_svg({"one": [5.0]})
        assert "<polyline" in svg


class TestPruningHistorySvg:
    def test_from_real_history(self):
        from repro.core import PruningHistory, PruningRound
        from repro.eval import pruning_history_svg
        from repro.models import FilterRef

        history = PruningHistory()
        for i in range(4):
            history.rounds.append(
                PruningRound(i, FilterRef("conv", i), 1.0, 10.0 - i, 0.9 - 0.01 * i)
            )
        svg = pruning_history_svg(history)
        assert "unlearning loss" in svg
        assert "pruning round" in svg

    def test_all_rolled_back_raises(self):
        from repro.core import PruningHistory
        from repro.eval import pruning_history_svg

        with pytest.raises(ValueError):
            pruning_history_svg(PruningHistory())


class TestFigureSvg:
    def test_two_panels(self):
        svg = figure_svg(series(), title="Figure 1")
        assert svg.count("ACC (%)") == 1
        assert svg.count("RA (%)") == 1
        assert "Figure 1 — ACC vs ASR" in svg
        assert "Figure 1 — RA vs ASR" in svg

    def test_file_writable(self, tmp_path):
        path = tmp_path / "fig.svg"
        path.write_text(figure_svg(series()))
        assert path.stat().st_size > 500
