"""Defender-budget protocol tests."""

import numpy as np
import pytest

from repro.eval import DefenderBudget, budget_trials
from tests.conftest import make_tiny_dataset


class TestBudgetDraw:
    def test_draw_respects_spc(self, tiny_attack):
        reservoir = make_tiny_dataset(120, seed=0)
        budget = DefenderBudget(spc=10, trial=0, seed=42)
        data = budget.draw(reservoir, attack=tiny_attack)
        total = len(data.clean_train) + len(data.clean_val)
        assert total == 10 * reservoir.num_classes
        assert data.attack is tiny_attack

    def test_spc2_split(self):
        reservoir = make_tiny_dataset(60, seed=0)
        data = DefenderBudget(spc=2, trial=0, seed=1).draw(reservoir)
        assert data.clean_train.class_counts().tolist() == [1] * 3
        assert data.clean_val.class_counts().tolist() == [1] * 3

    def test_same_seed_same_draw(self):
        reservoir = make_tiny_dataset(90, seed=0)
        a = DefenderBudget(spc=4, trial=0, seed=7).draw(reservoir)
        b = DefenderBudget(spc=4, trial=0, seed=7).draw(reservoir)
        assert np.array_equal(a.clean_train.images, b.clean_train.images)

    def test_backdoor_synthesis(self, tiny_attack):
        reservoir = make_tiny_dataset(60, seed=0)
        data = DefenderBudget(spc=4, trial=0, seed=3).draw(reservoir, attack=tiny_attack)
        backdoor = data.backdoor_train()
        assert np.array_equal(backdoor.labels, data.clean_train.labels)
        assert not np.array_equal(backdoor.images, data.clean_train.images)

    def test_backdoor_without_attack_raises(self):
        reservoir = make_tiny_dataset(60, seed=0)
        data = DefenderBudget(spc=4, trial=0, seed=3).draw(reservoir)
        with pytest.raises(ValueError):
            data.backdoor_train()


class TestBudgetTrials:
    def test_yields_requested_count(self):
        trials = list(budget_trials(spc=10, num_trials=5, root_seed=0))
        assert len(trials) == 5
        assert [t.trial for t in trials] == [0, 1, 2, 3, 4]

    def test_trials_have_distinct_seeds(self):
        trials = list(budget_trials(spc=10, num_trials=5, root_seed=0))
        seeds = {t.seed for t in trials}
        assert len(seeds) == 5

    def test_reproducible_across_calls(self):
        a = [t.seed for t in budget_trials(2, 3, root_seed=9)]
        b = [t.seed for t in budget_trials(2, 3, root_seed=9)]
        assert a == b

    def test_different_spc_different_seeds(self):
        a = [t.seed for t in budget_trials(2, 3, root_seed=0)]
        b = [t.seed for t in budget_trials(10, 3, root_seed=0)]
        assert a != b
