"""Tests for the extended metrics: all-to-all, per-class ASR, confusion."""

import numpy as np
import pytest

from repro.attacks import BadNetsAttack
from repro.data import ImageDataset
from repro.eval import (
    confusion_matrix,
    evaluate_all_to_all_metrics,
    per_class_asr,
)
from repro.nn import Module, Tensor


class CyclicBackdooredOracle(Module):
    """Classifies by dominant channel; trigger shifts prediction to y+1 mod 3."""

    def forward(self, x: Tensor) -> Tensor:
        data = x.data
        n = data.shape[0]
        base = data.mean(axis=(2, 3)).argmax(axis=1)
        p = 2
        corner = data[:, :, -p:, -p:]
        checker = np.indices((p, p)).sum(axis=0) % 2
        has_trigger = np.isclose(corner, checker[None, None], atol=1e-3).all(axis=(1, 2, 3))
        prediction = np.where(has_trigger, (base + 1) % 3, base)
        logits = np.zeros((n, 3), dtype=np.float32)
        logits[np.arange(n), prediction] = 1.0
        return Tensor(logits)


def make_test_set(n=60, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % 3
    images = rng.uniform(0.0, 0.2, (n, 3, 8, 8)).astype(np.float32)
    for i, cls in enumerate(labels):
        images[i, cls] += 0.5
    return ImageDataset(np.clip(images, 0, 1), labels)


@pytest.fixture()
def attack():
    return BadNetsAttack(target_class=0, image_shape=(3, 8, 8), patch_size=2)


class TestAllToAll:
    def test_perfect_cyclic_backdoor(self, attack):
        metrics = evaluate_all_to_all_metrics(CyclicBackdooredOracle(), make_test_set(), attack)
        assert metrics.acc == pytest.approx(1.0)
        assert metrics.asr == pytest.approx(1.0)
        assert metrics.ra == pytest.approx(0.0)

    def test_all_classes_scored(self, attack):
        # Unlike all-to-one, target-class samples stay in the ASR set.
        ds = make_test_set()
        metrics = evaluate_all_to_all_metrics(CyclicBackdooredOracle(), ds, attack)
        assert 0 <= metrics.asr <= 1

    def test_empty_raises(self, attack):
        empty = ImageDataset(np.zeros((0, 3, 8, 8), dtype=np.float32), np.zeros(0))
        with pytest.raises(ValueError):
            evaluate_all_to_all_metrics(CyclicBackdooredOracle(), empty, attack)


class TestPerClassASR:
    def test_breakdown_shape_and_nan_target(self, backdoored_tiny_model, tiny_test, tiny_attack):
        breakdown = per_class_asr(backdoored_tiny_model, tiny_test, tiny_attack)
        assert breakdown.shape == (3,)
        assert np.isnan(breakdown[0])  # target class
        assert np.nanmax(breakdown) <= 1.0
        assert np.nanmin(breakdown) >= 0.0

    def test_high_for_embedded_backdoor(self, backdoored_tiny_model, tiny_test, tiny_attack):
        breakdown = per_class_asr(backdoored_tiny_model, tiny_test, tiny_attack)
        assert np.nanmean(breakdown) > 0.5


class TestConfusionMatrix:
    def test_diagonal_for_oracle(self):
        matrix = confusion_matrix(CyclicBackdooredOracle(), make_test_set())
        assert matrix.shape == (3, 3)
        assert matrix.sum() == 60
        assert np.trace(matrix) == 60  # clean data: perfect

    def test_rows_sum_to_class_counts(self, backdoored_tiny_model, tiny_test):
        matrix = confusion_matrix(backdoored_tiny_model, tiny_test)
        assert np.array_equal(matrix.sum(axis=1), tiny_test.class_counts())
