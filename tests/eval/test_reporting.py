"""Report formatting and scatter-series extraction tests."""

from repro.eval import AggregateResult, BackdoorMetrics, format_table, render_scatter_text, scatter_series


def agg(defense="ours", spc=10, acc=0.9, asr=0.1, ra=0.8):
    return AggregateResult(defense, spc, acc, 0.01, asr, 0.02, ra, 0.03, 5)


class TestFormatTable:
    def test_contains_all_cells(self):
        results = {"badnets": [agg("ft", 2), agg("ours", 2), agg("ft", 10)]}
        baseline = {"badnets": BackdoorMetrics(0.92, 0.95, 0.05)}
        text = format_table(results, baseline, title="Table I")
        assert "Table I" in text
        assert "badnets" in text
        assert "baseline" in text
        assert text.count("ft") >= 2
        assert "90.00" in text  # acc mean as percent

    def test_sorted_by_spc_then_name(self):
        results = {"a": [agg("z", 10), agg("a", 2)]}
        text = format_table(results, {})
        assert text.index(" a ") < text.index(" z ")


class TestScatterSeries:
    def test_series_shapes(self):
        series = scatter_series([agg("ours"), agg("ft", asr=0.5)])
        assert set(series) == {"ours", "ft"}
        assert series["ours"]["acc_vs_asr"] == [(10.0, 90.0)]
        assert series["ft"]["ra_vs_asr"] == [(50.0, 80.0)]

    def test_multiple_points_per_defense(self):
        series = scatter_series([agg("ours", spc=2), agg("ours", spc=10)])
        assert len(series["ours"]["acc_vs_asr"]) == 2


class TestRenderScatterText:
    def test_renders_markers_and_legend(self):
        series = scatter_series([agg("ours"), agg("ft", asr=0.9, acc=0.3)])
        text = render_scatter_text(series, "acc_vs_asr")
        assert "ASR%" in text
        assert "ACC%" in text
        assert "= ours" in text
        assert "= ft" in text

    def test_ra_variant(self):
        series = scatter_series([agg("ours")])
        text = render_scatter_text(series, "ra_vs_asr")
        assert "RA%" in text

    def test_unknown_series_raises(self):
        import pytest

        with pytest.raises(ValueError):
            render_scatter_text({}, "nope")
