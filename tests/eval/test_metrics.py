"""ACC / ASR / RA metric tests (paper §V-C definitions)."""

import numpy as np
import pytest

from repro.attacks import BadNetsAttack
from repro.data import ImageDataset
from repro.eval import BackdoorMetrics, evaluate_backdoor_metrics
from repro.nn import Module, Tensor


class OracleModel(Module):
    """Classifies by dominant channel; optionally backdoored to class 0."""

    def __init__(self, backdoored: bool, patch_size: int = 2) -> None:
        super().__init__()
        self.backdoored = backdoored
        self.patch_size = patch_size

    def forward(self, x: Tensor) -> Tensor:
        data = x.data
        n = data.shape[0]
        logits = np.zeros((n, 3), dtype=np.float32)
        channel_means = data.mean(axis=(2, 3))
        logits[np.arange(n), channel_means.argmax(axis=1)] = 1.0
        if self.backdoored:
            p = self.patch_size
            corner = data[:, :, -p:, -p:]
            checker = np.indices((p, p)).sum(axis=0) % 2
            has_trigger = np.isclose(corner, checker[None, None], atol=1e-3).all(axis=(1, 2, 3))
            logits[has_trigger] = 0.0
            logits[has_trigger, 0] = 10.0
        return Tensor(logits)


def make_test_set(n=60, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % 3
    images = rng.uniform(0.0, 0.2, (n, 3, 8, 8)).astype(np.float32)
    for i, cls in enumerate(labels):
        images[i, cls] += 0.5
    return ImageDataset(np.clip(images, 0, 1), labels)


@pytest.fixture()
def attack():
    return BadNetsAttack(target_class=0, image_shape=(3, 8, 8), patch_size=2)


class TestMetricValues:
    def test_perfect_backdoored_model(self, attack):
        metrics = evaluate_backdoor_metrics(OracleModel(True), make_test_set(), attack)
        assert metrics.acc == pytest.approx(1.0)
        assert metrics.asr == pytest.approx(1.0)
        assert metrics.ra == pytest.approx(0.0)

    def test_clean_model_ignores_trigger(self, attack):
        metrics = evaluate_backdoor_metrics(OracleModel(False), make_test_set(), attack)
        assert metrics.acc == pytest.approx(1.0)
        assert metrics.asr == pytest.approx(0.0)
        assert metrics.ra == pytest.approx(1.0)

    def test_asr_plus_ra_at_most_one(self, backdoored_tiny_model, tiny_test, tiny_attack):
        metrics = evaluate_backdoor_metrics(backdoored_tiny_model, tiny_test, tiny_attack)
        assert metrics.asr + metrics.ra <= 1.0 + 1e-9

    def test_target_class_excluded_from_asr(self, attack):
        # A test set of only target-class samples must raise.
        images = np.zeros((5, 3, 8, 8), dtype=np.float32)
        ds = ImageDataset(images, np.zeros(5))
        with pytest.raises(ValueError, match="target-class"):
            evaluate_backdoor_metrics(OracleModel(True), ds, attack)

    def test_empty_test_set_raises(self, attack):
        ds = ImageDataset(np.zeros((0, 3, 8, 8), dtype=np.float32), np.zeros(0))
        with pytest.raises(ValueError, match="empty"):
            evaluate_backdoor_metrics(OracleModel(True), ds, attack)


class TestBackdoorMetricsDataclass:
    def test_percentages(self):
        m = BackdoorMetrics(acc=0.5, asr=0.25, ra=0.75).as_percentages()
        assert m.acc == 50.0
        assert m.asr == 25.0
        assert m.ra == 75.0

    def test_str(self):
        text = str(BackdoorMetrics(0.9, 0.1, 0.8))
        assert "ACC=0.9" in text
