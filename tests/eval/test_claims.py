"""Claim-verification tests with constructed aggregate grids."""

import pytest

from repro.eval import AggregateResult, BackdoorMetrics, check_table_claims, format_verdicts


def agg(defense, spc, acc, asr, ra):
    return AggregateResult(defense, spc, acc, 0.0, asr, 0.0, ra, 0.0, 1)


def good_grid():
    """A grid matching the paper's narrative."""
    return [
        agg("grad_prune", 2, 0.85, 0.30, 0.55),
        agg("grad_prune", 10, 0.88, 0.05, 0.80),
        agg("clp", 2, 0.90, 0.95, 0.04),
        agg("clp", 10, 0.90, 0.95, 0.04),
        agg("ft", 2, 0.60, 0.80, 0.15),
        agg("ft", 10, 0.85, 0.10, 0.75),
    ]


BASELINE = BackdoorMetrics(acc=0.92, asr=0.99, ra=0.01)


class TestClaimsPass:
    def test_good_grid_passes_all(self):
        verdicts = check_table_claims(good_grid(), BASELINE)
        assert all(v.passed for v in verdicts), format_verdicts(verdicts)

    def test_verdict_count_matches_claims(self):
        from repro.eval import TABLE_CLAIMS

        assert len(check_table_claims(good_grid(), BASELINE)) == len(TABLE_CLAIMS)


class TestClaimsFail:
    def test_weak_attack_fails_c1(self):
        weak_baseline = BackdoorMetrics(acc=0.92, asr=0.30, ra=0.60)
        verdicts = check_table_claims(good_grid(), weak_baseline)
        assert not next(v for v in verdicts if v.claim_id == "C1").passed

    def test_ineffective_defense_fails_c2(self):
        grid = [agg("grad_prune", 10, 0.88, 0.90, 0.05)]
        verdicts = check_table_claims(grid, BASELINE)
        assert not next(v for v in verdicts if v.claim_id == "C2").passed

    def test_metric_identity_violation_fails_c3(self):
        grid = good_grid() + [agg("nad", 10, 0.8, 0.7, 0.6)]  # 0.7+0.6 > 1
        verdicts = check_table_claims(grid, BASELINE)
        assert not next(v for v in verdicts if v.claim_id == "C3").passed

    def test_spc_varying_clp_fails_c4(self):
        grid = [
            agg("clp", 2, 0.90, 0.95, 0.04),
            agg("clp", 10, 0.90, 0.50, 0.30),  # changed with data: not data-free
            agg("grad_prune", 10, 0.88, 0.05, 0.80),
        ]
        verdicts = check_table_claims(grid, BASELINE)
        assert not next(v for v in verdicts if v.claim_id == "C4").passed

    def test_no_recovery_fails_c5(self):
        grid = [agg("grad_prune", 10, 0.88, 0.05, 0.02)]  # ASR low but RA flat
        verdicts = check_table_claims(grid, BASELINE)
        assert not next(v for v in verdicts if v.claim_id == "C5").passed

    def test_budget_regression_fails_c6(self):
        grid = [
            agg("grad_prune", 2, 0.85, 0.05, 0.80),
            agg("grad_prune", 10, 0.85, 0.60, 0.30),  # worse with more data
        ]
        verdicts = check_table_claims(grid, BASELINE)
        assert not next(v for v in verdicts if v.claim_id == "C6").passed


class TestFormatting:
    def test_format_contains_status_lines(self):
        text = format_verdicts(check_table_claims(good_grid(), BASELINE), header="badnets")
        assert "badnets" in text
        assert "[PASS]" in text
