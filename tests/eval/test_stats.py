"""Statistics-module tests."""

import numpy as np
import pytest

from repro.eval import (
    AggregateResult,
    BackdoorMetrics,
    TrialResult,
    paired_bootstrap,
    rank_defenses,
    win_tie_loss,
)


class TestPairedBootstrap:
    def test_clear_difference_is_significant(self):
        a = [0.9, 0.92, 0.91, 0.93, 0.9]
        b = [0.5, 0.52, 0.51, 0.49, 0.5]
        result = paired_bootstrap(a, b, seed=0)
        assert result.significant
        assert result.mean_difference == pytest.approx(0.4, abs=0.02)
        assert result.ci_low > 0

    def test_identical_is_not_significant(self):
        a = [0.5, 0.6, 0.7, 0.4]
        result = paired_bootstrap(a, a, seed=0)
        assert not result.significant
        assert result.mean_difference == 0.0

    def test_noisy_overlap_not_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.5, 0.2, 8)
        b = a + rng.normal(0.0, 0.3, 8)
        result = paired_bootstrap(a, b, seed=1)
        assert result.ci_low <= result.mean_difference <= result.ci_high

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            paired_bootstrap([1.0, 2.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            paired_bootstrap([], [])

    def test_deterministic_given_seed(self):
        a = [0.8, 0.7, 0.9]
        b = [0.6, 0.65, 0.7]
        r1 = paired_bootstrap(a, b, seed=5)
        r2 = paired_bootstrap(a, b, seed=5)
        assert r1.ci_low == r2.ci_low and r1.ci_high == r2.ci_high


def agg(defense, acc=0.9, asr=0.1, ra=0.8, spc=10):
    return AggregateResult(defense, spc, acc, 0.0, asr, 0.0, ra, 0.0, 5)


class TestRankDefenses:
    def test_asr_lower_is_better(self):
        rows = rank_defenses([agg("a", asr=0.5), agg("b", asr=0.1), agg("c", asr=0.3)], "asr")
        assert [r[0] for r in rows] == ["b", "c", "a"]
        assert rows[0][2] == "best"
        assert rows[1][2] == "second"
        assert rows[2][2] == ""

    def test_acc_higher_is_better(self):
        rows = rank_defenses([agg("a", acc=0.5), agg("b", acc=0.9)], "acc")
        assert rows[0][0] == "b"

    def test_override_direction(self):
        rows = rank_defenses([agg("a", acc=0.5), agg("b", acc=0.9)], "acc", ascending=True)
        assert rows[0][0] == "a"

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            rank_defenses([agg("a")], "f1")


def trial(defense, spc, index, asr):
    return TrialResult(defense, spc, index, BackdoorMetrics(0.9, asr, 0.8))


class TestWinTieLoss:
    def test_counts(self):
        a = [trial("a", 10, 0, 0.1), trial("a", 10, 1, 0.5), trial("a", 10, 2, 0.3)]
        b = [trial("b", 10, 0, 0.4), trial("b", 10, 1, 0.2), trial("b", 10, 2, 0.3)]
        counts = win_tie_loss(a, b, metric="asr")
        assert counts == {"win": 1, "loss": 1, "tie": 1}

    def test_unmatched_trials_ignored(self):
        a = [trial("a", 10, 0, 0.1), trial("a", 2, 0, 0.1)]
        b = [trial("b", 10, 0, 0.5)]
        counts = win_tie_loss(a, b)
        assert sum(counts.values()) == 1

    def test_higher_wins_for_acc(self):
        a = [TrialResult("a", 10, 0, BackdoorMetrics(0.9, 0.0, 0.0))]
        b = [TrialResult("b", 10, 0, BackdoorMetrics(0.5, 0.0, 0.0))]
        assert win_tie_loss(a, b, metric="acc")["win"] == 1
