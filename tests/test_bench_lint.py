"""Repo-policy lint: bench workloads carry wall-clock guards and stay out of tier-1.

Two standing rules, enforced as tests so they survive refactors:

1. Every file that marks tests ``pytest.mark.bench`` (open-loop soak or
   timing workloads) must reference ``hard_timeout`` — a wedged drain
   thread or timing loop has to fail loudly, never hang CI.
2. Tier-1 runs must deselect bench workloads: ``pyproject.toml`` keeps
   ``-m 'not bench'`` in ``addopts`` and declares the marker, and the
   telemetry soak test actually carries the marker so the default run
   skips it.
"""

import os
import re

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _test_files(*relative_dirs):
    found = []
    for rel in relative_dirs:
        base = os.path.join(REPO_ROOT, rel)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.startswith("test_") and name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return found


def _source(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


class TestBenchGuards:
    def test_every_bench_marked_file_uses_hard_timeout(self):
        offenders = []
        for path in _test_files("benchmarks", "tests"):
            source = _source(path)
            if "pytest.mark.bench" in source and "hard_timeout" not in source:
                offenders.append(os.path.relpath(path, REPO_ROOT))
        assert not offenders, (
            "bench-marked files without a hard_timeout wall-clock guard: "
            f"{offenders} — wrap the workload (or add an autouse guard fixture)"
        )

    def test_bench_files_exist_so_the_rule_is_not_vacuous(self):
        marked = [
            path for path in _test_files("benchmarks", "tests")
            if "pytest.mark.bench" in _source(path)
        ]
        assert marked, "expected at least one bench-marked workload in the repo"


class TestTierOneSelection:
    def _pyproject(self):
        return _source(os.path.join(REPO_ROOT, "pyproject.toml"))

    def test_addopts_deselect_bench(self):
        match = re.search(r"^addopts\s*=\s*(.+)$", self._pyproject(), re.MULTILINE)
        assert match, "pyproject.toml must set tool.pytest.ini_options.addopts"
        assert "not bench" in match.group(1)

    def test_bench_marker_is_declared(self):
        assert re.search(r'"bench:', self._pyproject())

    def test_telemetry_soak_is_bench_marked(self):
        soak = os.path.join(REPO_ROOT, "tests", "telemetry", "test_soak.py")
        assert os.path.exists(soak)
        assert re.search(
            r"^pytestmark\s*=\s*pytest\.mark\.bench", _source(soak), re.MULTILINE
        ), "the telemetry soak test must be deselected from tier-1 runs"
