"""ArtifactStore: atomic writes, checksummed loads, corruption self-healing."""

import os

import numpy as np

from repro.orchestrator.artifacts import ArtifactStore, content_hash


class TestContentHash:
    def test_stable(self):
        assert content_hash({"a": 1, "b": [2, 3]}) == content_hash({"b": [2, 3], "a": 1})

    def test_varies(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})


class TestStateArtifacts:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        state = {"w": np.arange(6, dtype=np.float32).reshape(2, 3), "b": np.zeros(3)}
        store.put_state("model1", state)
        loaded = store.get_state("model1")
        assert set(loaded) == {"w", "b"}
        assert np.array_equal(loaded["w"], state["w"])

    def test_miss_returns_none(self, tmp_path):
        assert ArtifactStore(str(tmp_path)).get_state("nope") is None

    def test_sidecar_written(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.ones(2)})
        assert os.path.exists(store.path("k", ".npz") + ".sha256")

    def test_corrupt_file_is_dropped(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.ones(2)})
        path = store.path("k", ".npz")
        with open(path, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xde\xad\xbe\xef")
        assert store.get_state("k") is None
        assert not os.path.exists(path)  # self-healed: bad artifact removed
        assert not os.path.exists(path + ".sha256")

    def test_truncated_file_is_dropped(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.arange(100)})
        path = store.path("k", ".npz")
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert store.get_state("k") is None
        assert not os.path.exists(path)

    def test_legacy_file_without_sidecar_loads(self, tmp_path):
        # Files written by older code have no checksum; still readable.
        store = ArtifactStore(str(tmp_path))
        np.savez(store.path("old", ".npz"), x=np.ones(3))
        loaded = store.get_state("old")
        assert np.array_equal(loaded["x"], np.ones(3))

    def test_no_tmp_litter(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.ones(2)})
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp." in f]
        assert leftovers == []


class TestJsonArtifacts:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_json("t1", {"acc": 0.9, "asr": 0.1})
        assert store.get_json("t1") == {"acc": 0.9, "asr": 0.1}

    def test_corrupt_json_dropped(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_json("t1", {"acc": 0.9})
        path = store.path("t1", ".json")
        with open(path, "w") as handle:
            handle.write('{"acc": 0.')  # truncated write
        assert store.get_json("t1") is None
        assert not os.path.exists(path)

    def test_overwrite(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_json("k", {"v": 1})
        store.put_json("k", {"v": 2})
        assert store.get_json("k") == {"v": 2}

    def test_delete(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_json("k", {"v": 1})
        store.delete("k", ".json")
        assert store.get_json("k") is None
        assert not os.path.exists(store.path("k", ".json") + ".sha256")
