"""ArtifactStore: atomic writes, checksummed loads, corruption self-healing."""

import os
import threading
import time

import numpy as np

from repro.orchestrator.artifacts import ArtifactStore, content_hash


class TestContentHash:
    def test_stable(self):
        assert content_hash({"a": 1, "b": [2, 3]}) == content_hash({"b": [2, 3], "a": 1})

    def test_varies(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})


class TestStateArtifacts:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        state = {"w": np.arange(6, dtype=np.float32).reshape(2, 3), "b": np.zeros(3)}
        store.put_state("model1", state)
        loaded = store.get_state("model1")
        assert set(loaded) == {"w", "b"}
        assert np.array_equal(loaded["w"], state["w"])

    def test_miss_returns_none(self, tmp_path):
        assert ArtifactStore(str(tmp_path)).get_state("nope") is None

    def test_sidecar_written(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.ones(2)})
        assert os.path.exists(store.path("k", ".npz") + ".sha256")

    def test_corrupt_file_is_dropped(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.ones(2)})
        path = store.path("k", ".npz")
        with open(path, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xde\xad\xbe\xef")
        assert store.get_state("k") is None
        assert not os.path.exists(path)  # self-healed: bad artifact removed
        assert not os.path.exists(path + ".sha256")

    def test_truncated_file_is_dropped(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.arange(100)})
        path = store.path("k", ".npz")
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert store.get_state("k") is None
        assert not os.path.exists(path)

    def test_legacy_file_without_sidecar_loads(self, tmp_path):
        # Files written by older code have no checksum; still readable.
        store = ArtifactStore(str(tmp_path))
        np.savez(store.path("old", ".npz"), x=np.ones(3))
        loaded = store.get_state("old")
        assert np.array_equal(loaded["x"], np.ones(3))

    def test_no_tmp_litter(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.ones(2)})
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp." in f]
        assert leftovers == []


class TestJsonArtifacts:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_json("t1", {"acc": 0.9, "asr": 0.1})
        assert store.get_json("t1") == {"acc": 0.9, "asr": 0.1}

    def test_corrupt_json_dropped(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_json("t1", {"acc": 0.9})
        path = store.path("t1", ".json")
        with open(path, "w") as handle:
            handle.write('{"acc": 0.')  # truncated write
        assert store.get_json("t1") is None
        assert not os.path.exists(path)

    def test_overwrite(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_json("k", {"v": 1})
        store.put_json("k", {"v": 2})
        assert store.get_json("k") == {"v": 2}

    def test_delete(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_json("k", {"v": 1})
        store.delete("k", ".json")
        assert store.get_json("k") is None
        assert not os.path.exists(store.path("k", ".json") + ".sha256")


class _RacingStore(ArtifactStore):
    """Store whose publish sequence runs a callback between atomic steps."""

    def __init__(self, root, on_step):
        super().__init__(root)
        self._on_step = on_step

    def _between_steps(self, stage):
        self._on_step(stage)


class TestConcurrentReadDuringPut:
    """A get() racing a put() of the same key never sees a partial artifact.

    Load-bearing for the serving gateway's hot-swap: the registry get()s a
    checkpoint key that a concurrent publisher may be re-put()ing.  The
    reader must observe either the old or the new artifact at every
    interleaving point of the writer's atomic steps — never a miss caused
    by the reader "self-healing" a perfectly good file mid-publish.
    """

    STAGES = ("staged", "sealed", "published", "compacted")

    def _interleaved_put(self, tmp_path, put, observe):
        seen = {}

        def on_step(stage):
            seen[stage] = observe()

        put(_RacingStore(str(tmp_path), on_step))
        assert list(seen) == list(self.STAGES)
        return seen

    def test_state_overwrite_never_misses(self, tmp_path):
        reader = ArtifactStore(str(tmp_path))
        writer_seed = ArtifactStore(str(tmp_path))
        writer_seed.put_state("k", {"x": np.zeros(4)})

        def observe():
            state = reader.get_state("k")
            assert state is not None, "reader observed a partially-visible artifact"
            return float(state["x"][0])

        seen = self._interleaved_put(
            tmp_path, lambda s: s.put_state("k", {"x": np.ones(4)}), observe
        )
        assert seen["staged"] == 0.0 and seen["sealed"] == 0.0
        assert seen["published"] == 1.0 and seen["compacted"] == 1.0
        # And the artifact file itself was never dropped by the reader.
        assert reader.get_state("k") is not None

    def test_legacy_file_overwrite_never_misses(self, tmp_path):
        # The pre-existing artifact has no sidecar (written by older code):
        # sealing must hash it so readers keep accepting it until publish.
        reader = ArtifactStore(str(tmp_path))
        seed = ArtifactStore(str(tmp_path))
        np.savez(seed.path("k", ".npz"), x=np.zeros(2))
        assert not os.path.exists(seed.path("k", ".npz") + ".sha256")

        def observe():
            state = reader.get_state("k")
            assert state is not None
            return float(state["x"][0])

        seen = self._interleaved_put(
            tmp_path, lambda s: s.put_state("k", {"x": np.ones(2)}), observe
        )
        assert seen["sealed"] == 0.0 and seen["compacted"] == 1.0

    def test_json_overwrite_never_misses(self, tmp_path):
        reader = ArtifactStore(str(tmp_path))
        ArtifactStore(str(tmp_path)).put_json("k", {"v": 1})

        def observe():
            doc = reader.get_json("k")
            assert doc is not None
            return doc["v"]

        seen = self._interleaved_put(
            tmp_path, lambda s: s.put_json("k", {"v": 2}), observe
        )
        assert seen["sealed"] == 1 and seen["compacted"] == 2

    def test_crash_between_seal_and_publish_keeps_old(self, tmp_path):
        # A writer that dies after sealing leaves old data + widened sidecar:
        # readers keep loading the old artifact, and a later put completes.
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.zeros(3)})

        class Boom(RuntimeError):
            pass

        def on_step(stage):
            if stage == "sealed":
                raise Boom()

        try:
            _RacingStore(str(tmp_path), on_step).put_state("k", {"x": np.ones(3)})
        except Boom:
            pass
        state = store.get_state("k")
        assert state is not None and state["x"][0] == 0.0
        store.put_state("k", {"x": np.full(3, 2.0)})
        assert store.get_state("k")["x"][0] == 2.0
        # Sidecar compacted back to exactly the live digest.
        with open(store.path("k", ".npz") + ".sha256") as handle:
            assert len(handle.read().split()) == 1

    def test_corruption_still_detected_after_multi_digest_era(self, tmp_path):
        # Widened sidecars must not weaken integrity checking: flip bytes in
        # the live artifact and it is still dropped as corrupt.
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.arange(50)})
        store.put_state("k", {"x": np.arange(50) * 2})
        path = store.path("k", ".npz")
        with open(path, "r+b") as handle:
            handle.seek(12)
            handle.write(b"\xba\xad")
        assert store.get_state("k") is None
        assert not os.path.exists(path)


class TestChurnedKey:
    def test_reader_never_misses_under_continuous_overwrite(self, tmp_path):
        # A hot key being re-put with alternating contents must stay readable
        # the whole time: a reader whose digest/sidecar reads straddle two
        # publish generations must retry, not misdiagnose corruption and
        # self-heal (delete) a healthy artifact.
        store = ArtifactStore(str(tmp_path))
        store.put_state("hot", {"w": np.zeros(2048, dtype=np.float32)})
        stop = threading.Event()

        def churn():
            i = 0
            while not stop.is_set():
                store.put_state("hot", {"w": np.full(2048, i % 5, dtype=np.float32)})
                i += 1

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            deadline = time.perf_counter() + 2.0
            reads = 0
            while time.perf_counter() < deadline:
                assert store.get_state("hot") is not None
                reads += 1
        finally:
            stop.set()
            writer.join(timeout=30)
        assert reads > 10
        assert os.path.exists(store.path("hot", ".npz"))

    def test_drop_corrupt_tolerates_concurrent_heal(self, tmp_path):
        # Two readers can both diagnose the same corrupt file; the loser of
        # the os.remove race must not blow up.
        store = ArtifactStore(str(tmp_path))
        store._drop_corrupt(str(tmp_path / "gone.npz"), "test")  # nothing exists

    def test_stable_corruption_still_dropped(self, tmp_path):
        # The retry logic must not weaken quiescent-corruption detection.
        store = ArtifactStore(str(tmp_path))
        store.put_state("k", {"x": np.arange(32)})
        with open(store.path("k", ".npz"), "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xde\xad\xbe\xef")
        assert store.get_state("k") is None
        assert not os.path.exists(store.path("k", ".npz"))
