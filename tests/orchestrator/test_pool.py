"""Worker pool: retries, fault injection, timeouts, worker-death recovery.

Executor functions are module-level so forked workers can run them; they
coordinate across processes through marker files in the test's tmp dir.
"""

import json
import os
import time

import pytest

from repro.orchestrator.dag import Task, TaskGraph
from repro.telemetry import TELEMETRY_DIR_ENV, emit
from repro.orchestrator.pool import (
    FAULT_RATE_ENV,
    FaultInjected,
    fault_roll,
    maybe_inject_fault,
    run_tasks,
)


def ok_executor(ctx, task, attempt):
    return {"task": task.task_id, "attempt": attempt}


def flaky_executor(ctx, task, attempt):
    """Fail (or die) on the first attempt of tasks listed in ctx."""
    if task.task_id in ctx.get("flaky", ()) and attempt == 1:
        if ctx.get("kill"):
            os._exit(17)
        raise RuntimeError(f"flaky {task.task_id}")
    return {"task": task.task_id, "attempt": attempt}


def always_fail_executor(ctx, task, attempt):
    if task.task_id in ctx.get("broken", ()):
        raise RuntimeError("permanently broken")
    return {"task": task.task_id}


def emitting_executor(ctx, task, attempt):
    emit("worker.probe", "pool-test", task=task.task_id)
    return {"task": task.task_id}


def slow_first_attempt_executor(ctx, task, attempt):
    if task.task_id in ctx.get("slow", ()) and attempt == 1:
        time.sleep(30)
    return {"task": task.task_id, "attempt": attempt}


def chain():
    return [
        Task("a", "train"),
        Task("b", "trial", deps=("a",)),
        Task("c", "trial", deps=("a",)),
        Task("d", "aggregate", deps=("b", "c")),
    ]


class Events:
    def __init__(self):
        self.log = []

    def __call__(self, event, task, **fields):
        self.log.append((event, task.task_id, fields))

    def of(self, event):
        return [entry for entry in self.log if entry[0] == event]


class TestInline:
    def test_runs_to_completion(self):
        events = Events()
        outcomes = run_tasks(TaskGraph(chain()), ok_executor, on_event=events)
        assert set(outcomes) == {"a", "b", "c", "d"}
        assert all(outcome.ok for outcome in outcomes.values())
        # Dependencies respected: a started before b/c, d last.
        started = [task_id for event, task_id, _ in events.log if event == "started"]
        assert started[0] == "a" and started[-1] == "d"

    def test_retry_then_success(self):
        events = Events()
        outcomes = run_tasks(
            TaskGraph(chain()), flaky_executor, {"flaky": ("b",)},
            retry_backoff=0.01, on_event=events,
        )
        assert outcomes["b"].ok
        assert outcomes["b"].attempts == 2
        assert len(events.of("retried")) == 1
        assert len(events.of("failed")) == 1

    def test_permanent_failure_cascades(self):
        events = Events()
        outcomes = run_tasks(
            TaskGraph(chain()), always_fail_executor, {"broken": ("b",)},
            max_retries=1, retry_backoff=0.01, on_event=events,
        )
        assert not outcomes["b"].ok
        assert outcomes["b"].error.endswith("permanently broken")
        assert not outcomes["d"].ok and outcomes["d"].error == "dep_failed:b"
        assert outcomes["a"].ok and outcomes["c"].ok  # siblings unharmed
        assert [task_id for _, task_id, _ in events.of("skipped")] == ["d"]


class TestFaultInjection:
    def test_roll_deterministic(self):
        assert fault_roll("t1", 1) == fault_roll("t1", 1)
        assert 0.0 <= fault_roll("t1", 1) < 1.0
        assert fault_roll("t1", 1) != fault_roll("t1", 2)

    def test_rate_one_always_faults(self, monkeypatch):
        monkeypatch.setenv(FAULT_RATE_ENV, "1.0")
        with pytest.raises(FaultInjected):
            maybe_inject_fault("any-task", 1, allow_kill=False)

    def test_rate_zero_never_faults(self, monkeypatch):
        monkeypatch.setenv(FAULT_RATE_ENV, "0")
        maybe_inject_fault("any-task", 1, allow_kill=False)

    def test_injected_faults_are_retried(self, monkeypatch):
        monkeypatch.setenv(FAULT_RATE_ENV, "0.5")
        events = Events()
        outcomes = run_tasks(
            TaskGraph(chain()), ok_executor,
            max_retries=8, retry_backoff=0.01, on_event=events,
        )
        # With a 0.5 rate and 9 attempts, all four tasks complete
        # (deterministic rolls; p(all fail) ~ 2^-9 per task would surface as
        # a failed outcome and break the assertion below).
        assert all(outcome.ok for outcome in outcomes.values())
        assert len(events.of("failed")) >= 1  # injection actually fired


class TestPooled:
    def test_runs_to_completion(self):
        outcomes = run_tasks(TaskGraph(chain()), ok_executor, workers=2)
        assert set(outcomes) == {"a", "b", "c", "d"}
        assert all(outcome.ok for outcome in outcomes.values())

    def test_worker_death_is_recovered(self):
        events = Events()
        outcomes = run_tasks(
            TaskGraph(chain()), flaky_executor, {"flaky": ("b",), "kill": True},
            workers=2, retry_backoff=0.01, on_event=events,
        )
        assert all(outcome.ok for outcome in outcomes.values())
        assert outcomes["b"].attempts == 2
        failed = events.of("failed")
        assert any("died" in fields.get("error", "") for _, _, fields in failed)

    def test_worker_telemetry_lands_on_disk(self, tmp_path, monkeypatch):
        # Workers exit via os._exit, which skips interpreter shutdown: only
        # the per-task flush in _worker_main makes their emits durable.
        monkeypatch.setenv(TELEMETRY_DIR_ENV, str(tmp_path))
        outcomes = run_tasks(TaskGraph(chain()), emitting_executor, workers=2)
        assert all(outcome.ok for outcome in outcomes.values())
        lines = [
            line
            for path in tmp_path.glob("telemetry-*.jsonl")
            for line in path.read_text().splitlines()
        ]
        probed = {json.loads(line)["task"] for line in lines
                  if json.loads(line)["event"] == "worker.probe"}
        assert probed == {"a", "b", "c", "d"}

    def test_timeout_kills_and_retries(self):
        events = Events()
        outcomes = run_tasks(
            TaskGraph([Task("a", "train"), Task("b", "trial", deps=("a",))]),
            slow_first_attempt_executor, {"slow": ("a",)},
            workers=1, task_timeout=1.0, retry_backoff=0.01, on_event=events,
        )
        assert outcomes["a"].ok and outcomes["a"].attempts == 2
        assert outcomes["b"].ok
        failed = events.of("failed")
        assert any("timeout" in fields.get("error", "") for _, _, fields in failed)
