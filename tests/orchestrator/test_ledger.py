"""RunLedger: append/replay fold, crash tolerance, rotation."""

import json
import os

from repro.orchestrator.ledger import RunLedger


class TestReplay:
    def test_empty(self, tmp_path):
        meta, records = RunLedger(str(tmp_path)).replay()
        assert meta == {} and records == {}

    def test_lifecycle_fold(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append("run_meta", experiment="table1", grid="abc")
        ledger.append("queued", task="t1", kind="train", scenario="fp1")
        ledger.append("started", task="t1", attempt=1, worker=0)
        ledger.append("finished", task="t1", attempt=1, worker=0, elapsed=2.5,
                      result={"baseline": {"acc": 0.9}})
        meta, records = ledger.replay()
        assert meta["experiment"] == "table1"
        assert records["t1"].status == "done"
        assert records["t1"].kind == "train"
        assert records["t1"].scenario == "fp1"
        assert records["t1"].result == {"baseline": {"acc": 0.9}}
        assert records["t1"].attempts == 1
        assert records["t1"].elapsed == 2.5

    def test_retry_then_success(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append("queued", task="t1", kind="trial")
        ledger.append("started", task="t1", attempt=1)
        ledger.append("failed", task="t1", attempt=1, error="boom")
        ledger.append("retried", task="t1", attempt=2, delay=0.5)
        ledger.append("started", task="t1", attempt=2)
        ledger.append("finished", task="t1", attempt=2, result={"m": 1})
        _, records = ledger.replay()
        assert records["t1"].status == "done"
        assert records["t1"].attempts == 2
        assert records["t1"].error == "boom"  # last failure is preserved

    def test_permanent_failure_and_skip(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append("started", task="t1", attempt=1)
        ledger.append("failed", task="t1", attempt=1, error="dead")
        ledger.append("skipped", task="t2", reason="dep_failed:t1")
        _, records = ledger.replay()
        assert records["t1"].status == "failed"
        assert records["t2"].status == "skipped"

    def test_truncated_tail_tolerated(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append("finished", task="t1", result={"v": 1})
        with open(ledger.path, "a") as handle:
            handle.write('{"event": "finished", "task": "t2", "resu')  # crash mid-line
        _, records = ledger.replay()
        assert records["t1"].status == "done"
        assert "t2" not in records

    def test_done_tasks(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append("finished", task="a", result={"v": 1})
        ledger.append("started", task="b", attempt=1)
        done = ledger.done_tasks()
        assert set(done) == {"a"}


class TestRotation:
    def test_rotate_moves_ledger_aside(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append("queued", task="t1")
        backup = ledger.rotate()
        assert backup and os.path.exists(backup)
        assert not os.path.exists(ledger.path)
        # A second rotation with a fresh file picks the next free suffix.
        ledger.append("queued", task="t2")
        backup2 = ledger.rotate()
        assert backup2 != backup

    def test_rotate_without_ledger_is_noop(self, tmp_path):
        assert RunLedger(str(tmp_path)).rotate() is None


class TestDurability:
    def test_lines_are_valid_json(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append("queued", task="t1", kind="train")
        ledger.append("finished", task="t1", result={"metrics": {"acc": 1.0}})
        with open(ledger.path) as handle:
            lines = [json.loads(line) for line in handle]
        assert all("ts" in line and "event" in line for line in lines)
