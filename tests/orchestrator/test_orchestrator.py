"""Orchestrator integration: DAG compilation, serial equivalence, fault/resume.

Uses a deliberately tiny grid (150 train samples, 2 epochs, 3 classes) so a
full train → defend → aggregate round trip stays in the seconds range.
"""

import json
import os

import pytest

from repro.eval import (
    BenchmarkRunner,
    ScenarioCache,
    TrialCache,
    run_experiment,
    scenario_configs,
)
from repro.eval.experiments import ExperimentProfile, ExperimentSpec
from repro.orchestrator import FAULT_RATE_ENV
from repro.orchestrator.orchestrator import (
    Orchestrator,
    OrchestratorConfig,
    build_experiment_dag,
)

TINY_PROFILE = ExperimentProfile(
    name="tiny",
    n_train=150,
    n_test=60,
    n_reservoir=120,
    train_epochs=2,
    spc_values=(2,),
    num_trials=2,
    num_classes_cifar=3,
    defense_kwargs={"ft": {"epochs": 1}},
)


def tiny_spec(defenses=("clp", "ft")):
    return ExperimentSpec(
        "tiny", "Tiny grid", "synth_cifar", ("preact_resnet18",), ("badnets",),
        defenses, TINY_PROFILE,
    )


def orchestrator_for(tmp_path, **overrides):
    kwargs = dict(
        workers=0,
        run_dir=str(tmp_path / "run"),
        model_cache_dir=str(tmp_path / "models"),
        trial_cache_dir=str(tmp_path / "trials"),
        retry_backoff=0.01,
        verbose=False,
    )
    kwargs.update(overrides)
    return Orchestrator(OrchestratorConfig(**kwargs))


def ledger_events(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle]


class TestDagBuilder:
    def test_structure(self):
        spec = tiny_spec()
        tasks = build_experiment_dag(spec)
        kinds = {}
        for task in tasks:
            kinds.setdefault(task.kind, []).append(task)
        # 1 scenario; 1 SPC x 2 defenses x 2 trials; 1 SPC x 2 defenses.
        assert len(kinds["train"]) == 1
        assert len(kinds["trial"]) == 4
        assert len(kinds["aggregate"]) == 2

    def test_ids_embed_fingerprint(self):
        spec = tiny_spec()
        (_, _, config), = scenario_configs(spec)
        fingerprint = config.fingerprint()
        tasks = build_experiment_dag(spec)
        assert all(task.scenario == fingerprint for task in tasks)
        assert any(task.task_id == f"train:{fingerprint}" for task in tasks)

    def test_trial_keys_match_trial_cache(self):
        spec = tiny_spec()
        (_, _, config), = scenario_configs(spec)
        for task in build_experiment_dag(spec):
            if task.kind != "trial":
                continue
            expected = TrialCache.key(
                config, task.payload["defense"], task.payload["defense_kwargs"],
                task.payload["spc"], task.payload["seed"],
            )
            assert task.payload["key"] == expected
            assert task.task_id == f"trial:{expected}"

    def test_dependencies_wired(self):
        spec = tiny_spec()
        tasks = {task.task_id: task for task in build_experiment_dag(spec)}
        for task in tasks.values():
            if task.kind == "trial":
                assert len(task.deps) == 1 and task.deps[0].startswith("train:")
            if task.kind == "aggregate":
                assert len(task.deps) == TINY_PROFILE.num_trials
                assert all(dep.startswith("trial:") for dep in task.deps)


class TestSerialEquivalence:
    def test_workers4_matches_run_experiment(self, tmp_path):
        """Acceptance: orchestrated aggregates == serial, bit for bit."""
        spec = tiny_spec()
        serial_runner = BenchmarkRunner(
            cache=ScenarioCache(str(tmp_path / "serial_models")),
            trial_cache=TrialCache(str(tmp_path / "serial_trials")),
            verbose=False,
        )
        serial = run_experiment(spec, runner=serial_runner)
        result = orchestrator_for(tmp_path, workers=4).run(spec)
        assert result.ok and result.counts == {"done": 7}

        model, attack = "preact_resnet18", "badnets"
        serial_baseline = serial.baselines[model][attack]
        orch_baseline = result.experiment.baselines[model][attack]
        assert (serial_baseline.acc, serial_baseline.asr, serial_baseline.ra) == (
            orch_baseline.acc, orch_baseline.asr, orch_baseline.ra,
        )
        serial_aggs = serial.results[model][attack]
        orch_aggs = result.experiment.results[model][attack]
        assert len(serial_aggs) == len(orch_aggs)
        for ours, theirs in zip(orch_aggs, serial_aggs):
            assert (ours.defense, ours.spc, ours.num_trials) == (
                theirs.defense, theirs.spc, theirs.num_trials,
            )
            assert (ours.acc_mean, ours.acc_std) == (theirs.acc_mean, theirs.acc_std)
            assert (ours.asr_mean, ours.asr_std) == (theirs.asr_mean, theirs.asr_std)
            assert (ours.ra_mean, ours.ra_std) == (theirs.ra_mean, theirs.ra_std)
        assert result.table_text()  # renders without the serial helper


class TestFaultInjectionAndResume:
    def test_faulted_run_resumes_without_recompute(self, tmp_path, monkeypatch):
        """Acceptance: REPRO_ORCH_FAULT_RATE>0 retries; --resume finishes the
        grid without re-executing any task the ledger marks done."""
        spec = tiny_spec(defenses=("clp",))
        monkeypatch.setenv(FAULT_RATE_ENV, "0.4")
        first = orchestrator_for(tmp_path, max_retries=2).run(spec)
        events = ledger_events(first.ledger_path)
        assert any(event["event"] == "retried" for event in events)
        done_after_first = {
            event["task"] for event in events if event["event"] == "finished"
        }
        lines_after_first = len(events)

        monkeypatch.setenv(FAULT_RATE_ENV, "0")
        second = orchestrator_for(tmp_path, resume=True).run(spec)
        assert second.ok and not second.failed_cells
        assert second.reused == len(done_after_first)
        appended = ledger_events(second.ledger_path)[lines_after_first:]
        restarted = {
            event["task"] for event in appended if event["event"] == "started"
        }
        assert not (restarted & done_after_first), "resume re-ran finished tasks"

    def test_resume_of_complete_run_is_noop(self, tmp_path):
        spec = tiny_spec(defenses=("clp",))
        first = orchestrator_for(tmp_path).run(spec)
        assert first.ok
        lines = len(ledger_events(first.ledger_path))
        second = orchestrator_for(tmp_path, resume=True).run(spec)
        assert second.ok
        assert second.reused == len(build_experiment_dag(spec))
        appended = ledger_events(second.ledger_path)[lines:]
        assert all(event["event"] == "run_meta" for event in appended)
        # Results are fully reconstructed from the ledger alone.
        assert second.experiment.results["preact_resnet18"]["badnets"]

    def test_resume_against_different_grid_starts_fresh(self, tmp_path):
        first = orchestrator_for(tmp_path).run(tiny_spec(defenses=("clp",)))
        assert first.ok
        second = orchestrator_for(tmp_path, resume=True).run(tiny_spec(defenses=("ft",)))
        assert second.ok
        assert second.reused == 0  # mismatched grid hash → rotated, not reused
        assert os.path.exists(first.ledger_path + ".bak1")


class TestGracefulDegradation:
    def test_total_failure_is_reported_not_raised(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_RATE_ENV, "1.0")
        result = orchestrator_for(tmp_path, max_retries=0).run(tiny_spec())
        assert not result.ok
        assert result.counts == {"failed": 1, "skipped": 6}
        assert any("training failed" in cell for cell in result.failed_cells)
        assert result.table_text() == ""
