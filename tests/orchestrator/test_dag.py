"""TaskGraph: readiness, cascade-skip, validation."""

import pytest

from repro.orchestrator.dag import Task, TaskGraph


def chain():
    return [
        Task("a", "train"),
        Task("b", "trial", deps=("a",)),
        Task("c", "trial", deps=("a",)),
        Task("d", "aggregate", deps=("b", "c")),
    ]


class TestValidation:
    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskGraph([Task("a", "train"), Task("a", "train")])

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            TaskGraph([Task("a", "train", deps=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph([Task("a", "x", deps=("b",)), Task("b", "x", deps=("a",))])


class TestReadiness:
    def test_roots_ready_first(self):
        graph = TaskGraph(chain())
        assert [t.task_id for t in graph.ready_tasks()] == ["a"]

    def test_deps_gate_release(self):
        graph = TaskGraph(chain())
        graph.mark_done("a")
        assert [t.task_id for t in graph.ready_tasks()] == ["b", "c"]
        graph.mark_done("b")
        assert [t.task_id for t in graph.ready_tasks()] == ["c"]
        graph.mark_done("c")
        assert [t.task_id for t in graph.ready_tasks()] == ["d"]

    def test_running_not_ready(self):
        graph = TaskGraph(chain())
        graph.mark_running("a")
        assert graph.ready_tasks() == []

    def test_requeue_restores_readiness(self):
        graph = TaskGraph(chain())
        graph.mark_running("a")
        graph.requeue("a")
        assert [t.task_id for t in graph.ready_tasks()] == ["a"]


class TestFailureCascade:
    def test_root_failure_skips_everything(self):
        graph = TaskGraph(chain())
        skipped = graph.mark_failed("a")
        assert set(skipped) == {"b", "c", "d"}
        assert graph.is_complete()
        assert graph.counts() == {"failed": 1, "skipped": 3}

    def test_partial_failure_keeps_siblings(self):
        graph = TaskGraph(chain())
        graph.mark_done("a")
        skipped = graph.mark_failed("b")
        assert skipped == ["d"]
        assert graph.state["c"] == "pending"  # sibling survives

    def test_done_dependents_untouched(self):
        graph = TaskGraph(chain())
        graph.mark_done("a")
        graph.mark_done("b")
        skipped = graph.mark_failed("c")
        assert graph.state["b"] == "done"
        assert skipped == ["d"]


class TestIntrospection:
    def test_len_and_counts(self):
        graph = TaskGraph(chain())
        assert len(graph) == 4
        assert graph.counts() == {"pending": 4}
        assert not graph.is_complete()
