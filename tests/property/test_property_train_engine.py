"""Property-based gradient-equivalence tests for the training engine path.

The engine-dispatched training backward (im2col column reuse, ``execute_tn``
reduction-split dW, planned gradient buffers) must produce the same
gradients as the reference autograd closures within float32 tolerances.
Mirrors ``test_property_engine.py``'s forcing harness: 2 thread workers,
tiny tiles, parallel threshold zeroed — so every hypothesis-drawn case
actually exercises the tiled/reduction-split code, not the inline fallback.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.pruning_utils import FilterRef, PruningMask
from repro.nn import Conv2d, ConvTranspose2d, Linear, Tensor
from repro.nn.engine import BACKEND_ENV, TILE_ENV, WORKERS_ENV, engine, reset_engine
from repro.nn.engine import gemm as gemm_mod
from repro.nn.engine.training import training_step
from repro.nn.functional import FAST_PATH_ENV

_FORCE_ENV = {WORKERS_ENV: "2", BACKEND_ENV: "thread", TILE_ENV: "8x8"}


@contextlib.contextmanager
def engine_forced():
    """Make even tiny GEMMs take the tiled 2-worker path."""
    saved = {key: os.environ.get(key) for key in (*_FORCE_ENV, FAST_PATH_ENV)}
    saved_flops = gemm_mod.MIN_PARALLEL_FLOPS
    saved_rows = gemm_mod._MIN_REDUCTION_ROWS
    os.environ.update(_FORCE_ENV)
    # The forced path must win even if the outer environment is bisecting
    # with REPRO_DISABLE_FAST_PATH=1 (each case compares against the
    # reference explicitly, so the suite stays meaningful under the flag).
    os.environ.pop(FAST_PATH_ENV, None)
    gemm_mod.MIN_PARALLEL_FLOPS = 0
    gemm_mod._MIN_REDUCTION_ROWS = 1
    try:
        yield
    finally:
        gemm_mod.MIN_PARALLEL_FLOPS = saved_flops
        gemm_mod._MIN_REDUCTION_ROWS = saved_rows
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@contextlib.contextmanager
def reference_path():
    """Force the reference kernels for the duration of the block."""
    previous = os.environ.get(FAST_PATH_ENV)
    os.environ[FAST_PATH_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAST_PATH_ENV, None)
        else:
            os.environ[FAST_PATH_ENV] = previous


@pytest.fixture(scope="module", autouse=True)
def _teardown_engine():
    yield
    reset_engine()


def _loss_backward(layer, x_data, wrap_step=False):
    """Forward + sum-loss backward; returns (loss, x.grad, {param grads})."""
    x = Tensor(x_data.copy(), requires_grad=True)
    ctx = (
        training_step((x_data.shape, x_data.dtype.str))
        if wrap_step
        else contextlib.nullcontext()
    )
    with ctx:
        out = layer(x)
        loss = (out * out).sum()
        loss.backward()
    grads = {name: p.grad.copy() for name, p in layer.named_parameters() if p.grad is not None}
    layer.zero_grad()
    return loss.item(), x.grad.copy(), grads


def _assert_grads_match(layer, x, wrap_step=False):
    with engine_forced():
        loss_f, xg_f, grads_f = _loss_backward(layer, x, wrap_step=wrap_step)
    with reference_path():
        loss_r, xg_r, grads_r = _loss_backward(layer, x)
    np.testing.assert_allclose(loss_f, loss_r, rtol=1e-4)
    np.testing.assert_allclose(xg_f, xg_r, rtol=1e-4, atol=1e-5)
    assert set(grads_f) == set(grads_r)
    for name in grads_r:
        np.testing.assert_allclose(
            grads_f[name], grads_r[name], rtol=1e-4, atol=1e-5, err_msg=name
        )


conv_cases = st.builds(
    dict,
    n=st.integers(1, 3),
    cin=st.integers(1, 6),
    cout_mult=st.integers(1, 3),
    kernel=st.integers(1, 4),
    stride=st.integers(1, 3),
    padding=st.integers(0, 2),
    size=st.integers(4, 10),
    seed=st.integers(0, 2**16),
    bias=st.booleans(),
    wrap=st.booleans(),
)


def _conv_case(case, groups):
    rng = np.random.default_rng(case["seed"])
    cin = case["cin"] * groups
    cout = case["cout_mult"] * groups
    k, s, p = case["kernel"], case["stride"], case["padding"]
    size = max(case["size"], k)
    conv = Conv2d(cin, cout, k, stride=s, padding=p, groups=groups, bias=case["bias"], rng=rng)
    x = rng.standard_normal((case["n"], cin, size, size)).astype(np.float32)
    return conv, x


@settings(max_examples=30, deadline=None)
@given(conv_cases)
def test_conv2d_backward_matches_reference(case):
    conv, x = _conv_case(case, groups=1)
    _assert_grads_match(conv, x, wrap_step=case["wrap"])


@settings(max_examples=15, deadline=None)
@given(conv_cases, st.integers(2, 4))
def test_grouped_conv_backward_matches_reference(case, groups):
    # Grouped convs stay on the einsum reference closures even with the fast
    # path enabled; this pins the gate so enabling the engine never changes
    # their gradients.
    conv, x = _conv_case(case, groups)
    _assert_grads_match(conv, x, wrap_step=case["wrap"])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 3),
    cin=st.integers(1, 5),
    cout=st.integers(1, 5),
    kernel=st.integers(1, 4),
    stride=st.integers(1, 3),
    size=st.integers(2, 7),
    seed=st.integers(0, 2**16),
    bias=st.booleans(),
    wrap=st.booleans(),
)
def test_conv_transpose2d_backward_matches_reference(
    n, cin, cout, kernel, stride, size, seed, bias, wrap
):
    rng = np.random.default_rng(seed)
    layer = ConvTranspose2d(cin, cout, kernel, stride=stride, bias=bias, rng=rng)
    x = rng.standard_normal((n, cin, size, size)).astype(np.float32)
    _assert_grads_match(layer, x, wrap_step=wrap)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 8),
    fin=st.integers(1, 12),
    fout=st.integers(1, 12),
    seed=st.integers(0, 2**16),
    bias=st.booleans(),
    wrap=st.booleans(),
)
def test_linear_backward_matches_reference(n, fin, fout, seed, bias, wrap):
    rng = np.random.default_rng(seed)
    layer = Linear(fin, fout, bias=bias, rng=rng)
    x = rng.standard_normal((n, fin)).astype(np.float32)
    _assert_grads_match(layer, x, wrap_step=wrap)


@settings(max_examples=12, deadline=None)
@given(
    mid=st.integers(2, 6),
    filter_index=st.integers(0, 5),
    seed=st.integers(0, 2**16),
)
def test_pruned_conv_backward_matches_reference(mid, filter_index, seed):
    # Pruning zeroes rows of the weight in place after the layer was built;
    # the engine path repacks weights at backward time, so a pruned filter
    # must yield identical (zero) gradient rows on both paths.
    rng = np.random.default_rng(seed)
    conv = Conv2d(3, mid, 3, padding=1, rng=rng)
    mask = PruningMask(conv)
    mask.prune(FilterRef("", filter_index % mid))
    x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
    _assert_grads_match(conv, x, wrap_step=True)


@settings(max_examples=20, deadline=None)
@given(
    r=st.integers(2, 40),
    m=st.integers(1, 12),
    n=st.integers(1, 12),
    accumulate=st.booleans(),
    seed=st.integers(0, 2**16),
)
def test_execute_tn_matches_reference_product(r, m, n, accumulate, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((r, m)).astype(np.float32)
    b = rng.standard_normal((r, n)).astype(np.float32)
    base = rng.standard_normal((m, n)).astype(np.float32)
    expected = a.T.astype(np.float64) @ b.astype(np.float64)
    with engine_forced():
        if accumulate:
            out = base.copy()
            engine().execute_tn(a, b, out=out, accumulate=True)
            expected = expected + base
        else:
            out = engine().execute_tn(a, b)
    np.testing.assert_allclose(out, expected.astype(np.float32), rtol=1e-4, atol=1e-5)


def test_backward_actually_uses_reduction_split():
    """Sanity guard: the forcing harness engages the tn dispatch."""
    rng = np.random.default_rng(11)
    conv = Conv2d(4, 8, 3, padding=1, rng=rng)
    x = rng.standard_normal((2, 4, 12, 12)).astype(np.float32)
    with engine_forced():
        out = conv(Tensor(x, requires_grad=True))
        before = engine().totals["tiled_calls"]
        (out * out).sum().backward()
        after_totals = engine().totals["tiled_calls"]
        last = engine().last
    assert after_totals > before
    assert last.get("backend") == "thread"
    conv.zero_grad()
