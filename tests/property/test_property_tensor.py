"""Property-based tests (hypothesis) for autograd invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=32
)


def small_arrays(max_dims=3, max_side=5):
    return arrays(
        dtype=np.float32,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_add_zero_identity(data):
    t = Tensor(data)
    assert np.allclose((t + 0.0).data, data, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mul_commutes_with_scalar(data):
    t = Tensor(data)
    assert np.allclose((t * 2.5).data, (2.5 * t).data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_double_negation(data):
    t = Tensor(data)
    assert np.allclose((-(-t)).data, data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_idempotent_and_nonnegative(data):
    t = Tensor(data)
    once = t.relu()
    twice = once.relu()
    assert (once.data >= 0).all()
    assert np.array_equal(once.data, twice.data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_softmax_is_distribution(data):
    if data.ndim < 1:
        return
    t = Tensor(data.reshape(1, -1))
    probs = t.softmax().data
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-4)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_grad_is_ones(data):
    t = Tensor(data, requires_grad=True)
    t.sum().backward()
    assert np.allclose(t.grad, 1.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays(), st.floats(min_value=0.1, max_value=5.0))
def test_linearity_of_gradient(data, scale):
    t1 = Tensor(data.copy(), requires_grad=True)
    (t1.sum() * scale).backward()
    t2 = Tensor(data.copy(), requires_grad=True)
    t2.sum().backward()
    assert np.allclose(t1.grad, np.float32(scale) * t2.grad, rtol=1e-4)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mean_equals_sum_over_count(data):
    t = Tensor(data)
    assert np.allclose(t.mean().item(), t.sum().item() / data.size, rtol=1e-4, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_clamp_bounds_respected(data):
    out = Tensor(data).clamp(-1.0, 1.0).data
    assert out.min() >= -1.0
    assert out.max() <= 1.0


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sigmoid_range_and_symmetry(data):
    t = Tensor(data)
    s = t.sigmoid().data
    assert np.all((s > 0) & (s < 1))
    s_neg = (-t).sigmoid().data
    assert np.allclose(s + s_neg, 1.0, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2))
def test_reshape_preserves_sum_grad(data):
    t = Tensor(data, requires_grad=True)
    t.reshape(-1).sum().backward()
    assert np.allclose(t.grad, 1.0)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float32, (3, 4), elements=finite_floats),
    arrays(np.float32, (3, 4), elements=finite_floats),
)
def test_add_backward_distributes(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    assert np.allclose(ta.grad, 1.0)
    assert np.allclose(tb.grad, 1.0)
