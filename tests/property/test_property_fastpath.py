"""Property-based equivalence tests for the inference fast path.

Each property drives both the fast kernels (single-GEMM conv, workspace
arena, conv–BN folding) and the reference path (forced via
``REPRO_DISABLE_FAST_PATH``) over hypothesis-drawn shapes, strides, and
paddings, and requires agreement within float32 tolerance.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.pruning_utils import FilterRef, PruningMask
from repro.nn import BatchNorm2d, Conv2d, Linear, Module, ReLU, Tensor, no_grad
from repro.nn.functional import FAST_PATH_ENV, conv_output_size
from repro.nn.inference import compile_for_inference


@contextlib.contextmanager
def reference_path():
    """Force the reference kernels for the duration of the block."""
    previous = os.environ.get(FAST_PATH_ENV)
    os.environ[FAST_PATH_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAST_PATH_ENV, None)
        else:
            os.environ[FAST_PATH_ENV] = previous


conv_cases = st.builds(
    dict,
    n=st.integers(1, 3),
    cin=st.integers(1, 6),
    cout_mult=st.integers(1, 3),
    kernel=st.integers(1, 4),
    stride=st.integers(1, 3),
    padding=st.integers(0, 2),
    size=st.integers(4, 10),
    seed=st.integers(0, 2**16),
    bias=st.booleans(),
)


def _conv_forward(case, groups):
    rng = np.random.default_rng(case["seed"])
    cin = case["cin"] * groups
    cout = case["cout_mult"] * groups
    k, s, p = case["kernel"], case["stride"], case["padding"]
    size = max(case["size"], k)  # guarantee a positive output size
    conv = Conv2d(cin, cout, k, stride=s, padding=p, groups=groups, bias=case["bias"], rng=rng)
    x = rng.standard_normal((case["n"], cin, size, size)).astype(np.float32)
    with no_grad():
        fast = conv(Tensor(x)).data
    with reference_path():
        with no_grad():
            reference = conv(Tensor(x)).data
    return fast, reference


@settings(max_examples=30, deadline=None)
@given(conv_cases)
def test_single_gemm_conv_matches_reference(case):
    fast, reference = _conv_forward(case, groups=1)
    np.testing.assert_allclose(fast, reference, rtol=1e-4, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(conv_cases, st.integers(2, 4))
def test_grouped_conv_matches_reference(case, groups):
    fast, reference = _conv_forward(case, groups=groups)
    np.testing.assert_allclose(fast, reference, rtol=1e-4, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(
    channels=st.integers(1, 8),
    kernel=st.integers(1, 4),
    stride=st.integers(1, 2),
    size=st.integers(4, 9),
    seed=st.integers(0, 2**16),
)
def test_depthwise_conv_matches_reference(channels, kernel, stride, size, seed):
    rng = np.random.default_rng(seed)
    size = max(size, kernel)
    conv = Conv2d(channels, channels, kernel, stride=stride, padding=kernel // 2,
                  groups=channels, rng=rng)
    x = rng.standard_normal((2, channels, size, size)).astype(np.float32)
    with no_grad():
        fast = conv(Tensor(x)).data
    with reference_path():
        with no_grad():
            reference = conv(Tensor(x)).data
    np.testing.assert_allclose(fast, reference, rtol=1e-4, atol=1e-5)


class _FoldNet(Module):
    def __init__(self, cin, mid, size, seed):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv = Conv2d(cin, mid, 3, padding=1, rng=rng)
        self.bn = BatchNorm2d(mid)
        self.relu = ReLU()
        self.fc = Linear(mid * size * size, 4, rng=rng)
        # Non-trivial BN statistics, otherwise folding is an identity map.
        self.bn.running_mean[:] = rng.standard_normal(mid).astype(np.float32)
        self.bn.running_var[:] = (0.5 + rng.uniform(0.1, 2.0, mid)).astype(np.float32)
        self.bn.weight.data[:] = rng.standard_normal(mid).astype(np.float32)
        self.bn.bias.data[:] = rng.standard_normal(mid).astype(np.float32)

    def forward(self, x):
        h = self.relu(self.bn(self.conv(x)))
        return self.fc(h.reshape(h.shape[0], -1))


@settings(max_examples=15, deadline=None)
@given(
    cin=st.integers(1, 4),
    mid=st.integers(1, 6),
    size=st.integers(3, 7),
    n=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_folded_model_matches_reference(cin, mid, size, n, seed):
    model = _FoldNet(cin, mid, size, seed)
    model.eval()
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((n, cin, size, size)).astype(np.float32)
    with reference_path():
        with no_grad():
            reference = model(Tensor(x)).data
    compiled = compile_for_inference(model, Tensor(x[:1]))
    assert compiled.num_folded == 1
    np.testing.assert_allclose(compiled(Tensor(x)).data, reference, rtol=1e-3, atol=1e-4)


@settings(max_examples=15, deadline=None)
@given(
    mid=st.integers(2, 6),
    filter_index=st.integers(0, 5),
    seed=st.integers(0, 2**16),
)
def test_fold_invalidated_by_prune_unprune_roundtrip(mid, filter_index, seed):
    model = _FoldNet(3, mid, 5, seed)
    model.eval()
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((2, 3, 5, 5)).astype(np.float32)
    compiled = compile_for_inference(model, Tensor(x[:1]))
    baseline = compiled(Tensor(x)).data.copy()

    mask = PruningMask(model)
    target = FilterRef("conv", filter_index % mid)
    saved = mask.prune(target)
    with reference_path():
        with no_grad():
            pruned_reference = model(Tensor(x)).data
    np.testing.assert_allclose(
        compiled(Tensor(x)).data, pruned_reference, rtol=1e-3, atol=1e-4
    )
    mask.unprune(target, saved)
    np.testing.assert_allclose(compiled(Tensor(x)).data, baseline, rtol=1e-5, atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    input_size=st.integers(1, 20),
    kernel=st.integers(1, 6),
    stride=st.integers(1, 4),
    padding=st.integers(0, 3),
)
def test_conv_output_size_positive_or_raises(input_size, kernel, stride, padding):
    expected = (input_size + 2 * padding - kernel) // stride + 1
    if expected <= 0:
        try:
            conv_output_size(input_size, kernel, stride, padding)
        except ValueError:
            return
        raise AssertionError("conv_output_size accepted a non-positive output size")
    assert conv_output_size(input_size, kernel, stride, padding) == expected
