"""Property-based tests for optimizer and loss invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import SGD, Parameter, Tensor, cross_entropy

finite = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, width=32)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float32, (6,), elements=finite),
    st.floats(min_value=1e-4, max_value=0.5),
)
def test_sgd_step_moves_against_gradient(initial, lr):
    param = Parameter(initial.copy())
    opt = SGD([param], lr=lr)
    (param * param).sum().backward()
    before = param.data.copy()
    grad = param.grad.copy()
    opt.step()
    # w' = w - lr * grad, exactly, for vanilla SGD.
    assert np.allclose(param.data, before - np.float32(lr) * grad, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float32, (4, 5), elements=finite))
def test_cross_entropy_nonnegative(logits):
    labels = np.arange(4) % 5
    loss = cross_entropy(Tensor(logits), labels)
    assert loss.item() >= -1e-6


@settings(max_examples=30, deadline=None)
@given(arrays(np.float32, (3, 4), elements=finite))
def test_cross_entropy_shift_invariance(logits):
    # Softmax CE is invariant to adding a constant to every logit of a row.
    labels = np.array([0, 1, 2])
    base = cross_entropy(Tensor(logits), labels).item()
    shifted = cross_entropy(Tensor(logits + 3.5), labels).item()
    assert abs(base - shifted) < 1e-4


@settings(max_examples=30, deadline=None)
@given(arrays(np.float32, (2, 3), elements=finite))
def test_cross_entropy_grad_rows_sum_to_zero(logits):
    # dCE/dlogits = softmax - onehot: each row sums to zero.
    t = Tensor(logits, requires_grad=True)
    cross_entropy(t, np.array([0, 2]), reduction="sum").backward()
    assert np.allclose(t.grad.sum(axis=1), 0.0, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=40))
def test_momentum_velocity_bounded_on_constant_gradient(steps):
    # With grad = 1 and momentum m, velocity converges to 1/(1-m): the
    # update magnitude must never exceed lr/(1-m) + eps.
    param = Parameter(np.zeros(1, dtype=np.float32))
    momentum = 0.9
    lr = 0.1
    opt = SGD([param], lr=lr, momentum=momentum)
    previous = param.data.copy()
    for _ in range(steps):
        param.zero_grad()
        param.sum().backward()  # grad = 1
        opt.step()
        delta = abs(float(param.data[0] - previous[0]))
        assert delta <= lr / (1 - momentum) + 1e-5
        previous = param.data.copy()
