"""Property-based equivalence tests for the tiled GEMM engine.

Mirrors ``test_property_fastpath.py`` but forces the tiled executor to
engage (2 workers, tiny tile override, parallel-threshold zeroed) so that
every hypothesis-drawn conv actually exercises the tile split and the fused
bias/ReLU epilogue, then requires agreement with the reference kernels
within the PR 2 float32 tolerances.  The thread backend is used here so
each example stays cheap; the process backend shares the same tile kernel
and is covered by tests/nn/test_engine.py.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.pruning_utils import FilterRef, PruningMask
from repro.nn import BatchNorm2d, Conv2d, Linear, Module, ReLU, Tensor, no_grad
from repro.nn.engine import BACKEND_ENV, TILE_ENV, WORKERS_ENV, engine, reset_engine
from repro.nn.engine import gemm as gemm_mod
from repro.nn.functional import FAST_PATH_ENV
from repro.nn.inference import compile_for_inference

_FORCE_ENV = {WORKERS_ENV: "2", BACKEND_ENV: "thread", TILE_ENV: "8x8"}


@contextlib.contextmanager
def engine_forced():
    """Make even tiny GEMMs take the tiled 2-worker path."""
    saved = {key: os.environ.get(key) for key in _FORCE_ENV}
    saved_flops = gemm_mod.MIN_PARALLEL_FLOPS
    os.environ.update(_FORCE_ENV)
    gemm_mod.MIN_PARALLEL_FLOPS = 0
    try:
        yield
    finally:
        gemm_mod.MIN_PARALLEL_FLOPS = saved_flops
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@contextlib.contextmanager
def reference_path():
    """Force the reference kernels for the duration of the block."""
    previous = os.environ.get(FAST_PATH_ENV)
    os.environ[FAST_PATH_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAST_PATH_ENV, None)
        else:
            os.environ[FAST_PATH_ENV] = previous


@pytest.fixture(scope="module", autouse=True)
def _teardown_engine():
    yield
    reset_engine()


conv_cases = st.builds(
    dict,
    n=st.integers(1, 3),
    cin=st.integers(1, 6),
    cout_mult=st.integers(1, 3),
    kernel=st.integers(1, 4),
    stride=st.integers(1, 3),
    padding=st.integers(0, 2),
    size=st.integers(4, 10),
    seed=st.integers(0, 2**16),
    bias=st.booleans(),
)


def _conv_case(case, groups):
    rng = np.random.default_rng(case["seed"])
    cin = case["cin"] * groups
    cout = case["cout_mult"] * groups
    k, s, p = case["kernel"], case["stride"], case["padding"]
    size = max(case["size"], k)  # guarantee a positive output size
    conv = Conv2d(cin, cout, k, stride=s, padding=p, groups=groups, bias=case["bias"], rng=rng)
    x = rng.standard_normal((case["n"], cin, size, size)).astype(np.float32)
    return conv, x


@settings(max_examples=30, deadline=None)
@given(conv_cases)
def test_tiled_conv_matches_reference(case):
    conv, x = _conv_case(case, groups=1)
    with engine_forced(), no_grad():
        tiled = conv(Tensor(x)).data
    with reference_path(), no_grad():
        reference = conv(Tensor(x)).data
    np.testing.assert_allclose(tiled, reference, rtol=1e-4, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(conv_cases, st.integers(2, 4))
def test_grouped_conv_under_engine_matches_reference(case, groups):
    conv, x = _conv_case(case, groups)
    with engine_forced(), no_grad():
        tiled = conv(Tensor(x)).data
    with reference_path(), no_grad():
        reference = conv(Tensor(x)).data
    np.testing.assert_allclose(tiled, reference, rtol=1e-4, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(conv_cases)
def test_fused_relu_epilogue_matches_separate_relu(case):
    conv, x = _conv_case(case, groups=1)
    conv._fused_activation = "relu"
    try:
        with engine_forced(), no_grad():
            fused = conv(Tensor(x)).data
    finally:
        conv._fused_activation = None
    with reference_path(), no_grad():
        reference = conv(Tensor(x)).relu().data
    np.testing.assert_allclose(fused, reference, rtol=1e-4, atol=1e-5)


class _FoldNet(Module):
    def __init__(self, cin, mid, size, seed):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv = Conv2d(cin, mid, 3, padding=1, rng=rng)
        self.bn = BatchNorm2d(mid)
        self.relu = ReLU()
        self.fc = Linear(mid * size * size, 4, rng=rng)
        # Non-trivial BN statistics, otherwise folding is an identity map.
        self.bn.running_mean[:] = rng.standard_normal(mid).astype(np.float32)
        self.bn.running_var[:] = (0.5 + rng.uniform(0.1, 2.0, mid)).astype(np.float32)
        self.bn.weight.data[:] = rng.standard_normal(mid).astype(np.float32)
        self.bn.bias.data[:] = rng.standard_normal(mid).astype(np.float32)

    def forward(self, x):
        h = self.relu(self.bn(self.conv(x)))
        return self.fc(h.reshape(h.shape[0], -1))


@settings(max_examples=15, deadline=None)
@given(
    cin=st.integers(1, 4),
    mid=st.integers(1, 6),
    size=st.integers(3, 7),
    n=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_folded_fused_model_matches_reference(cin, mid, size, n, seed):
    model = _FoldNet(cin, mid, size, seed)
    model.eval()
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((n, cin, size, size)).astype(np.float32)
    with reference_path(), no_grad():
        reference = model(Tensor(x)).data
    compiled = compile_for_inference(model, Tensor(x[:1]))
    assert compiled.num_folded == 1
    assert compiled.num_fused_activations == 1
    with engine_forced():
        out = compiled(Tensor(x)).data
    np.testing.assert_allclose(out, reference, rtol=1e-3, atol=1e-4)


@settings(max_examples=12, deadline=None)
@given(
    mid=st.integers(2, 6),
    filter_index=st.integers(0, 5),
    seed=st.integers(0, 2**16),
)
def test_pruned_filters_under_engine_match_reference(mid, filter_index, seed):
    model = _FoldNet(3, mid, 5, seed)
    model.eval()
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((2, 3, 5, 5)).astype(np.float32)
    compiled = compile_for_inference(model, Tensor(x[:1]))
    with engine_forced():
        baseline = compiled(Tensor(x)).data.copy()

    mask = PruningMask(model)
    target = FilterRef("conv", filter_index % mid)
    saved = mask.prune(target)
    with reference_path(), no_grad():
        pruned_reference = model(Tensor(x)).data
    with engine_forced():
        pruned = compiled(Tensor(x)).data
    np.testing.assert_allclose(pruned, pruned_reference, rtol=1e-3, atol=1e-4)
    mask.unprune(target, saved)
    with engine_forced():
        restored = compiled(Tensor(x)).data
    np.testing.assert_allclose(restored, baseline, rtol=1e-5, atol=1e-6)


def test_large_conv_actually_tiles():
    """Sanity guard: the forcing harness really engages the tiled path."""
    rng = np.random.default_rng(7)
    conv = Conv2d(8, 16, 3, padding=1, rng=rng)
    x = rng.standard_normal((4, 8, 16, 16)).astype(np.float32)
    with engine_forced(), no_grad():
        conv(Tensor(x))
    last = engine().last
    assert last.get("backend") == "thread"
    assert last.get("workers") == 2
    assert last.get("tiles", 0) > 1
