"""Property-based tests for the Dirichlet client partitioner."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated import split_dataset_dirichlet, split_dataset_iid
from tests.conftest import make_tiny_dataset

num_clients = st.integers(min_value=2, max_value=6)
alphas = st.floats(min_value=0.05, max_value=5.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=30, deadline=None)
@given(num_clients, alphas, seeds)
def test_exact_partition_every_sample_exactly_once(clients, alpha, seed):
    ds = make_tiny_dataset(90, seed=0)
    shards = split_dataset_dirichlet(ds, clients, alpha=alpha, rng=np.random.default_rng(seed))
    assert len(shards) == clients
    assert sum(len(s) for s in shards) == len(ds)
    # Per-class mass is preserved: the shards' class histograms sum back to
    # the dataset's (an exact partition, not a resample).
    total = np.zeros(ds.num_classes, dtype=int)
    for shard in shards:
        total += np.bincount(shard.labels, minlength=ds.num_classes)
    assert np.array_equal(total, ds.class_counts())


@settings(max_examples=30, deadline=None)
@given(num_clients, alphas, seeds)
def test_no_client_left_empty(clients, alpha, seed):
    ds = make_tiny_dataset(60, seed=1)
    shards = split_dataset_dirichlet(ds, clients, alpha=alpha, rng=np.random.default_rng(seed))
    assert all(len(s) >= 1 for s in shards)


@settings(max_examples=30, deadline=None)
@given(num_clients, alphas, seeds)
def test_seed_determinism(clients, alpha, seed):
    ds = make_tiny_dataset(60, seed=2)
    a = split_dataset_dirichlet(ds, clients, alpha=alpha, rng=np.random.default_rng(seed))
    b = split_dataset_dirichlet(ds, clients, alpha=alpha, rng=np.random.default_rng(seed))
    for sa, sb in zip(a, b):
        assert np.array_equal(sa.labels, sb.labels)
        assert np.array_equal(sa.images, sb.images)


def _mean_dominance(shards):
    """Average fraction of a shard owned by its most common class."""
    values = []
    for shard in shards:
        counts = shard.class_counts()
        values.append(counts.max() / max(counts.sum(), 1))
    return float(np.mean(values))


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_small_alpha_more_skewed_than_iid(seed):
    ds = make_tiny_dataset(300, seed=3)
    dirichlet = split_dataset_dirichlet(ds, 3, alpha=0.05, rng=np.random.default_rng(seed))
    iid = split_dataset_iid(ds, 3, np.random.default_rng(seed))
    # alpha -> 0 concentrates classes on few clients; IID shards mirror the
    # overall (uniform) label distribution.
    assert _mean_dominance(dirichlet) > _mean_dominance(iid)
