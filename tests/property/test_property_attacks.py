"""Property-based tests for attack invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attacks import ATTACK_REGISTRY, build_attack

SHAPE = (3, 8, 8)

unit_images = arrays(
    dtype=np.float32,
    shape=(2, *SHAPE),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
)

attack_names = st.sampled_from(sorted(ATTACK_REGISTRY))


@settings(max_examples=30, deadline=None)
@given(unit_images, attack_names)
def test_triggered_images_stay_in_unit_range(images, name):
    attack = build_attack(name, image_shape=SHAPE)
    out = attack.apply(images)
    assert out.min() >= 0.0
    assert out.max() <= 1.0


@settings(max_examples=30, deadline=None)
@given(unit_images, attack_names)
def test_trigger_application_deterministic(images, name):
    attack = build_attack(name, image_shape=SHAPE)
    assert np.array_equal(attack.apply(images), attack.apply(images))


@settings(max_examples=30, deadline=None)
@given(unit_images, attack_names)
def test_input_never_mutated(images, name):
    attack = build_attack(name, image_shape=SHAPE)
    before = images.copy()
    attack.apply(images)
    assert np.array_equal(images, before)


@settings(max_examples=30, deadline=None)
@given(unit_images)
def test_badnets_patch_identical_across_inputs(images):
    attack = build_attack("badnets", image_shape=SHAPE, patch_size=2)
    out = attack.apply(images)
    patch0 = out[0, :, -2:, -2:]
    patch1 = out[1, :, -2:, -2:]
    assert np.array_equal(patch0, patch1)


@settings(max_examples=30, deadline=None)
@given(unit_images)
def test_blended_bounded_distance(images):
    ratio = 0.2
    attack = build_attack("blended", image_shape=SHAPE, blend_ratio=ratio)
    out = attack.apply(images)
    # Blend moves each pixel at most `ratio` toward the pattern.
    assert np.abs(out - images).max() <= ratio + 1e-5


@settings(max_examples=30, deadline=None)
@given(unit_images)
def test_lf_perturbation_bounded(images):
    amplitude = 0.15
    attack = build_attack("lf", image_shape=SHAPE, amplitude=amplitude)
    out = attack.apply(images)
    assert np.abs(out - images).max() <= amplitude + 1e-5


@settings(max_examples=30, deadline=None)
@given(unit_images, st.integers(min_value=1, max_value=4))
def test_bpp_quantization_level_count(images, depth):
    attack = build_attack("bpp", image_shape=SHAPE, bit_depth=depth)
    out = attack.apply(images)
    assert len(np.unique(out)) <= 2 ** depth
