"""Property-based tests for data splitting and pruning invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ImageDataset, defender_split, spc_subset
from repro.models import FilterRef, PruningMask, count_filters
from repro.nn import Conv2d, Sequential


def dataset_of(per_class: int, num_classes: int, seed: int) -> ImageDataset:
    n = per_class * num_classes
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(num_classes), per_class)
    return ImageDataset(rng.uniform(0, 1, (n, 3, 4, 4)).astype(np.float32), labels)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),   # spc
    st.integers(min_value=2, max_value=5),   # num_classes
    st.integers(min_value=0, max_value=100), # seed
)
def test_spc_subset_always_balanced(spc, num_classes, seed):
    ds = dataset_of(per_class=10, num_classes=num_classes, seed=seed)
    subset = spc_subset(ds, spc, np.random.default_rng(seed))
    assert subset.class_counts().tolist() == [spc] * num_classes


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from([2, 4, 10, 20]),
    st.integers(min_value=0, max_value=100),
)
def test_defender_split_partitions_budget(spc, seed):
    ds = dataset_of(per_class=25, num_classes=3, seed=seed)
    train, val = defender_split(ds, spc, np.random.default_rng(seed))
    assert len(train) + len(val) == spc * 3
    assert len(train) >= 1 and len(val) >= 1
    # Every class is represented in validation (stratification property).
    assert (val.class_counts() >= 1).all()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=6, unique=True))
def test_pruning_mask_len_matches_pruned_set(indices):
    net = Sequential(Conv2d(3, 6, 3, rng=np.random.default_rng(0)))
    mask = PruningMask(net)
    for index in indices:
        mask.prune(FilterRef("0", index))
    assert len(mask) == len(indices)
    assert mask.sparsity() == len(indices) / count_filters(net)
    mask.apply()
    for index in indices:
        assert np.all(net[0].weight.data[index] == 0)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=5))
def test_prune_unprune_is_identity(index):
    net = Sequential(Conv2d(3, 6, 3, rng=np.random.default_rng(1)))
    original = net[0].weight.data.copy()
    mask = PruningMask(net)
    ref = FilterRef("0", index)
    saved = mask.prune(ref)
    mask.unprune(ref, saved)
    assert np.array_equal(net[0].weight.data, original)
    assert len(mask) == 0
