"""Telemetry soak: sustained emission under rotation stays bounded and lossless.

Marked ``bench`` so tier-1 runs (``-m 'not bench'``) deselect it; run with
``pytest tests/telemetry/test_soak.py -m bench``.  Wrapped in
``hard_timeout`` like every other bench-marked workload (see
tests/test_bench_lint.py for the rule).
"""

import json
import os

import pytest

from repro.telemetry import JsonlSink, TelemetryBus
from repro.utils.timing import hard_timeout

pytestmark = pytest.mark.bench

GUARD_SECONDS = 120.0
EVENTS = 20_000
MAX_BYTES = 64 * 1024
BACKUPS = 3


def test_sustained_emission_rotates_and_bounds_disk(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    bus = TelemetryBus()
    sink = bus.attach(JsonlSink(str(path), max_bytes=MAX_BYTES, backups=BACKUPS))
    with hard_timeout(GUARD_SECONDS, "telemetry soak wedged"):
        for i in range(EVENTS):
            bus.emit(
                "prune_round", "soak",
                round=i, layer=f"conv{i % 7}", val_loss=1.0 / (i + 1),
                val_acc=0.9, num_pruned=i,
            )
        bus.close()

    # The sink never dropped or detached: every emit was delivered.
    assert bus.metrics.counter("telemetry.dropped").value == 0
    assert bus.snapshot()["bus"]["events_emitted"] == EVENTS

    # Disk usage is bounded by the rotation budget (live file + backups),
    # with slack for the final partially-filled live file.
    files = [path] + [tmp_path / f"telemetry.jsonl.{i}" for i in range(1, BACKUPS + 1)]
    existing = [f for f in files if f.exists()]
    assert path.exists()
    assert len(existing) == BACKUPS + 1, "soak volume must have filled every backup slot"
    assert not (tmp_path / f"telemetry.jsonl.{BACKUPS + 1}").exists()
    total = sum(os.path.getsize(f) for f in existing)
    assert total <= (BACKUPS + 2) * MAX_BYTES

    # Rotation never tears a line: every surviving record parses, and the
    # sequence numbers on the live tail are the newest ones.
    seqs = []
    for candidate in existing:
        for line in candidate.read_text().splitlines():
            seqs.append(json.loads(line)["seq"])
    assert seqs, "soak left no readable records"
    assert max(seqs) == EVENTS
