"""TelemetryBus wiring: emit, sinks, subscribers, metrics, failure isolation."""

import json
import os

import pytest

from repro.telemetry import (
    TELEMETRY_DIR_ENV,
    JsonlSink,
    MemorySink,
    TelemetryBus,
    TelemetryEvent,
    telemetry_run,
)
from repro.telemetry.bus import _MAX_FAILURES


@pytest.fixture
def fresh_bus():
    return TelemetryBus()


class TestFastPath:
    def test_inactive_emit_returns_none(self, fresh_bus):
        assert fresh_bus.active is False
        assert fresh_bus.emit("e", "s", x=1) is None

    def test_inactive_emit_does_not_advance_seq(self, fresh_bus):
        fresh_bus.emit("e")
        sink = fresh_bus.attach(MemorySink())
        fresh_bus.emit("e2")
        assert sink.events[0].seq == 1

    def test_attach_detach_toggles_active(self, fresh_bus):
        sink = fresh_bus.attach(MemorySink())
        assert fresh_bus.active is True
        fresh_bus.detach(sink)
        assert fresh_bus.active is False


class TestDelivery:
    def test_sink_receives_event_with_fields(self, fresh_bus):
        sink = fresh_bus.attach(MemorySink())
        record = fresh_bus.emit("prune_round", "core.pruner", round=3, loss=0.5)
        assert isinstance(record, TelemetryEvent)
        assert sink.events[0].fields == {"round": 3, "loss": 0.5}
        assert sink.events[0].source == "core.pruner"

    def test_seq_monotonic_across_emits(self, fresh_bus):
        sink = fresh_bus.attach(MemorySink())
        for _ in range(5):
            fresh_bus.emit("e")
        assert [e.seq for e in sink.events] == [1, 2, 3, 4, 5]

    def test_subscriber_called(self, fresh_bus):
        seen = []
        fresh_bus.subscribe(seen.append)
        fresh_bus.emit("e", x=1)
        assert len(seen) == 1 and seen[0].fields == {"x": 1}

    def test_fan_out_to_multiple_sinks(self, fresh_bus):
        first, second = fresh_bus.attach(MemorySink()), fresh_bus.attach(MemorySink())
        fresh_bus.emit("e")
        assert len(first.events) == len(second.events) == 1

    def test_memory_sink_named_filter(self, fresh_bus):
        sink = fresh_bus.attach(MemorySink())
        fresh_bus.emit("a")
        fresh_bus.emit("b")
        fresh_bus.emit("a")
        assert len(sink.named("a")) == 2


class TestFailureIsolation:
    def test_failing_subscriber_never_raises_into_emitter(self, fresh_bus):
        def bad(_event):
            raise RuntimeError("observer bug")

        fresh_bus.subscribe(bad)
        fresh_bus.emit("e")  # must not raise

    def test_failing_sink_detached_after_max_failures(self, fresh_bus):
        class BadSink(MemorySink):
            def write(self, event):
                raise OSError("disk gone")

        good = fresh_bus.attach(MemorySink())
        fresh_bus.attach(BadSink())
        for _ in range(_MAX_FAILURES + 2):
            fresh_bus.emit("e")
        # Good sink saw everything; the bad one is gone and the bus settles.
        assert len(good.events) == _MAX_FAILURES + 2
        assert fresh_bus.snapshot()["bus"]["sinks"] == 1

    def test_dropped_counter_increments(self, fresh_bus):
        def bad(_event):
            raise ValueError("no")

        fresh_bus.subscribe(bad)
        fresh_bus.emit("e")
        assert fresh_bus.metrics.counter("telemetry.dropped").value == 1


class TestMetricsSnapshot:
    def test_snapshot_shape(self, fresh_bus):
        fresh_bus.metrics.counter("c").inc(2)
        fresh_bus.metrics.gauge("g").set(1.5)
        fresh_bus.metrics.histogram("h").observe(3.0)
        snap = fresh_bus.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["bus"]["events_emitted"] == 0

    def test_snapshot_is_json_clean(self, fresh_bus):
        fresh_bus.metrics.histogram("h").observe(1.0)
        json.dumps(fresh_bus.snapshot(), allow_nan=False)

    def test_metric_type_collision_raises(self, fresh_bus):
        fresh_bus.metrics.counter("x")
        with pytest.raises(TypeError):
            fresh_bus.metrics.gauge("x")


class TestJsonlSinkRotation:
    def test_writes_valid_jsonl(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.write(TelemetryEvent(event="e", seq=1, fields={"loss": float("nan")}))
        sink.close()
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["loss"] == "nan"

    def test_rotation_shifts_backups(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(str(path), max_bytes=200, backups=2)
        for i in range(50):
            sink.write(TelemetryEvent(event="e", seq=i, fields={"pad": "x" * 40}))
        sink.close()
        assert path.exists()
        assert (tmp_path / "t.jsonl.1").exists()
        assert (tmp_path / "t.jsonl.2").exists()
        assert not (tmp_path / "t.jsonl.3").exists()
        # Every surviving line is intact JSON (rotation never tears a line).
        for candidate in (path, tmp_path / "t.jsonl.1", tmp_path / "t.jsonl.2"):
            for line in candidate.read_text().splitlines():
                json.loads(line)

    def test_write_after_close_is_noop(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.write(TelemetryEvent(event="e"))  # must not raise

    def test_creates_parent_directory(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "deep" / "er" / "t.jsonl"))
        sink.write(TelemetryEvent(event="e"))
        sink.close()
        assert (tmp_path / "deep" / "er" / "t.jsonl").exists()


class TestRunContext:
    def test_telemetry_run_attaches_and_detaches(self, tmp_path, fresh_bus):
        with telemetry_run(str(tmp_path), target=fresh_bus):
            assert fresh_bus.active
            fresh_bus.emit("e", x=1)
        assert not fresh_bus.active
        lines = (tmp_path / "telemetry.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["x"] == 1

    def test_env_dir_attaches_per_pid_sink(self, tmp_path, monkeypatch):
        from repro.telemetry import bus as bus_accessor
        from repro.telemetry import emit, reset_bus

        monkeypatch.setenv(TELEMETRY_DIR_ENV, str(tmp_path))
        reset_bus()
        try:
            emit("env_event", "test", x=2)
            bus_accessor().close()
            expected = tmp_path / f"telemetry-{os.getpid()}.jsonl"
            assert expected.exists()
            assert json.loads(expected.read_text().splitlines()[0])["x"] == 2
        finally:
            monkeypatch.delenv(TELEMETRY_DIR_ENV)
            reset_bus()

    def test_close_detaches_everything(self, fresh_bus):
        fresh_bus.attach(MemorySink())
        fresh_bus.subscribe(lambda e: None)
        fresh_bus.close()
        assert not fresh_bus.active
