"""Sanitization and record-formatting edge cases for telemetry events."""

import json
import math

import numpy as np
import pytest

from repro.telemetry import RESERVED_KEYS, TelemetryEvent, sanitize_value


class TestSanitizeValue:
    def test_passthrough_primitives(self):
        for value in (None, True, False, 0, -3, "text", 1.5):
            assert sanitize_value(value) == value

    def test_nan_becomes_string(self):
        assert sanitize_value(float("nan")) == "nan"

    def test_infinities_become_strings(self):
        assert sanitize_value(float("inf")) == "inf"
        assert sanitize_value(float("-inf")) == "-inf"

    def test_numpy_scalars_become_native(self):
        assert sanitize_value(np.float32(1.5)) == pytest.approx(1.5)
        assert sanitize_value(np.int64(7)) == 7
        assert isinstance(sanitize_value(np.int64(7)), int)
        assert sanitize_value(np.bool_(True)) is True

    def test_numpy_nan_scalar(self):
        assert sanitize_value(np.float64("nan")) == "nan"

    def test_numpy_array_becomes_list(self):
        out = sanitize_value(np.array([1.0, float("nan"), 3.0]))
        assert out == [1.0, "nan", 3.0]

    def test_nested_dict_recurses(self):
        out = sanitize_value({"a": {"b": float("inf")}, "c": [1, float("nan")]})
        assert out == {"a": {"b": "inf"}, "c": [1, "nan"]}

    def test_non_string_keys_coerced(self):
        assert sanitize_value({1: "x", (2, 3): "y"}) == {"1": "x", "(2, 3)": "y"}

    def test_unicode_keys_pass_through(self):
        out = sanitize_value({"ξ_score": 0.5, "прун": 1})
        assert out == {"ξ_score": 0.5, "прун": 1}

    def test_tuple_and_set_become_lists(self):
        assert sanitize_value((1, 2)) == [1, 2]
        assert sorted(sanitize_value({1, 2})) == [1, 2]

    def test_bytes_decoded_with_replacement(self):
        assert sanitize_value(b"ok") == "ok"
        assert "�" in sanitize_value(b"\xff\xfe")

    def test_depth_cap_flattens(self):
        deep = {"k": None}
        for _ in range(10):
            deep = {"k": deep}
        out = sanitize_value(deep)
        # Walk to the cap: the remainder must be a string, not a dict.
        node = out
        while isinstance(node, dict):
            node = node["k"]
        assert isinstance(node, str)

    def test_arbitrary_object_falls_back_to_str(self):
        class Odd:
            def __str__(self):
                return "odd!"

        assert sanitize_value(Odd()) == "odd!"

    def test_everything_survives_strict_json(self):
        payload = sanitize_value(
            {
                "nan": float("nan"),
                "inf": float("inf"),
                "arr": np.arange(3),
                "nested": {"deep": (float("-inf"), np.float32(2.0))},
                1: b"\xff",
            }
        )
        text = json.dumps(payload, allow_nan=False)
        assert json.loads(text)["nan"] == "nan"


class TestTelemetryEvent:
    def test_to_json_envelope(self):
        event = TelemetryEvent(event="e", source="s", ts=123.456789, seq=9, fields={"x": 1})
        record = event.to_json()
        assert record["event"] == "e"
        assert record["source"] == "s"
        assert record["seq"] == 9
        assert record["ts"] == pytest.approx(123.4568)
        assert record["x"] == 1

    def test_reserved_field_keys_are_prefixed(self):
        record = TelemetryEvent(event="e", fields={"ts": "boom", "event": "shadow"}).to_json()
        assert record["event"] == "e"
        assert record["field_ts"] == "boom"
        assert record["field_event"] == "shadow"
        assert RESERVED_KEYS <= set(record)

    def test_non_finite_fields_round_trip_strict_json(self):
        record = TelemetryEvent(
            event="e", fields={"loss": float("nan"), "score": float("inf")}
        ).to_json()
        decoded = json.loads(json.dumps(record, allow_nan=False))
        assert decoded["loss"] == "nan"
        assert decoded["score"] == "inf"

    def test_default_timestamp_is_now(self):
        import time

        record = TelemetryEvent(event="e").to_json()
        assert abs(record["ts"] - time.time()) < 5.0

    def test_math_nan_variants(self):
        assert sanitize_value(math.nan) == "nan"
        assert sanitize_value(math.inf) == "inf"
