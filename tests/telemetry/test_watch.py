"""JsonlTail incremental reading and WatchState folding/rendering."""

import io
import json

import pytest

from repro.telemetry.watch import (
    JsonlTail,
    WatchState,
    discover_streams,
    render_dashboard,
    sparkline,
    watch_paths,
)


def _write(path, records, mode="a"):
    with open(path, mode) as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestJsonlTail:
    def test_missing_file_returns_empty(self, tmp_path):
        assert JsonlTail(str(tmp_path / "nope.jsonl")).poll() == []

    def test_incremental_reads(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        tail = JsonlTail(path)
        _write(path, [{"event": "a"}])
        assert [r["event"] for r in tail.poll()] == ["a"]
        assert tail.poll() == []
        _write(path, [{"event": "b"}, {"event": "c"}])
        assert [r["event"] for r in tail.poll()] == ["b", "c"]

    def test_partial_trailing_line_buffered(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        tail = JsonlTail(path)
        full = json.dumps({"event": "whole"}) + "\n"
        half = json.dumps({"event": "split"})
        with open(path, "w") as handle:
            handle.write(full + half[:7])
        assert [r["event"] for r in tail.poll()] == ["whole"]
        with open(path, "a") as handle:
            handle.write(half[7:] + "\n")
        assert [r["event"] for r in tail.poll()] == ["split"]

    def test_garbage_lines_skipped(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with open(path, "w") as handle:
            handle.write('{"event": "ok"}\nnot json at all\n[1, 2]\n')
        events = JsonlTail(path).poll()
        assert [r.get("event") for r in events] == ["ok"]

    def test_truncation_resets_offset(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        tail = JsonlTail(path)
        _write(path, [{"event": "old-%d" % i, "pad": "x" * 50} for i in range(5)])
        tail.poll()
        _write(path, [{"event": "fresh"}], mode="w")  # rotation/truncate
        assert [r["event"] for r in tail.poll()] == ["fresh"]


class TestDiscoverStreams:
    def test_single_file_target(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("")
        assert discover_streams(str(path)) == [str(path)]

    def test_run_dir_globs_ledger_and_telemetry(self, tmp_path):
        (tmp_path / "ledger.jsonl").write_text("")
        (tmp_path / "telemetry-123.jsonl").write_text("")
        (tmp_path / "telemetry-456.jsonl").write_text("")
        (tmp_path / "unrelated.log").write_text("")
        found = discover_streams(str(tmp_path))
        assert len(found) == 3
        assert all("unrelated" not in p for p in found)


class TestWatchStateFolding:
    def test_task_lifecycle_counts(self):
        state = WatchState()
        for record in [
            {"event": "queued", "task": "t1", "kind": "train"},
            {"event": "queued", "task": "t2", "kind": "trial"},
            {"event": "started", "task": "t1"},
            {"event": "finished", "task": "t1", "ts": 10.0, "elapsed": 1.0},
            {"event": "started", "task": "t2"},
            {"event": "failed", "task": "t2", "error": "boom"},
            {"event": "retried", "task": "t2"},
        ]:
            state.apply(record)
        counts = state.task_counts()
        assert counts["done"] == 1
        assert counts["queued"] == 1  # retried re-queues
        assert state.retries == 1

    def test_trial_metrics_folded_from_finished_results(self):
        state = WatchState()
        state.apply(
            {
                "event": "finished",
                "task": "trial:x",
                "ts": 1.0,
                "result": {"key": "x", "metrics": {"acc": 0.9, "asr": 0.05, "ra": 0.8}},
            }
        )
        assert state.trial_metrics == [{"acc": 0.9, "asr": 0.05, "ra": 0.8}]

    def test_prune_rounds_folded(self):
        state = WatchState()
        state.apply({"event": "prune_started", "policy": "adaptive"})
        for i in range(3):
            state.apply(
                {
                    "event": "prune_round",
                    "round": i,
                    "layer": "conv1",
                    "val_loss": 1.0 - 0.1 * i,
                    "val_acc": 0.9,
                    "num_pruned": i + 1,
                }
            )
        state.apply({"event": "prune_finished", "stop_reason": "plateau"})
        assert state.prune_rounds == 3
        assert state.num_pruned == 3
        assert state.per_layer["conv1"] == 3
        assert state.prune_policy == "adaptive"
        assert state.prune_stop_reason == "plateau"

    def test_new_prune_run_resets_trajectories(self):
        state = WatchState()
        state.apply({"event": "prune_round", "round": 0, "val_loss": 1.0, "layer": "a"})
        state.apply({"event": "prune_started", "policy": "patience"})
        assert state.prune_rounds == 0
        assert len(state.prune_losses) == 0

    def test_rolled_back_round_not_counted_per_layer(self):
        state = WatchState()
        state.apply(
            {"event": "prune_round", "round": 0, "layer": "a", "rolled_back": True}
        )
        assert state.per_layer == {}

    def test_eta_from_completion_rate(self):
        state = WatchState()
        for i in range(4):
            state.apply({"event": "queued", "task": f"t{i}"})
        # 2 done, 1 second apart -> 1 task/s -> 2 remaining ~ 2 s.
        state.apply({"event": "finished", "task": "t0", "ts": 100.0})
        state.apply({"event": "finished", "task": "t1", "ts": 101.0})
        eta = state.eta_seconds(now=101.0)
        assert eta is not None and 1.0 < eta < 3.0

    def test_eta_none_without_enough_signal(self):
        state = WatchState()
        state.apply({"event": "queued", "task": "t0"})
        assert state.eta_seconds() is None

    def test_non_dict_safe(self):
        state = WatchState()
        state.apply({"no_event_key": 1})
        state.apply({"event": 42})
        assert state.events == 0

    def test_federated_rounds_folded(self):
        state = WatchState()
        for i in range(3):
            state.apply(
                {
                    "event": "federated.round",
                    "round": i,
                    "rounds": 5,
                    "clients": 64,
                    "acc": 0.5 + 0.1 * i,
                    "asr": 0.9 - 0.1 * i,
                    "agg_norm": 2.0,
                }
            )
        assert state.fed_rounds == 3
        assert state.fed_total_rounds == 5
        assert state.fed_clients == 64
        assert list(state.fed_asrs) == pytest.approx([0.9, 0.8, 0.7])
        assert state.fed_agg_norm == 2.0
        # Hot event: kept out of the recent-events footer.
        assert not any("federated.round" in entry for entry in state.recent)

    def test_federated_defense_latest_per_arm(self):
        state = WatchState()
        state.apply({"event": "federated.defense", "defense": "fed_unlearn",
                     "asr": 0.5, "acc": 0.6})
        state.apply({"event": "federated.defense", "defense": "fed_unlearn",
                     "asr": 0.2, "acc": 0.7})
        state.apply({"event": "federated.defense", "defense": "grad_prune",
                     "asr": 0.1, "acc": 0.8})
        assert state.fed_defenses["fed_unlearn"] == {"asr": 0.2, "acc": 0.7}
        assert set(state.fed_defenses) == {"fed_unlearn", "grad_prune"}


class TestRender:
    def _folded_state(self):
        state = WatchState()
        state.apply({"event": "run_meta", "experiment": "table1", "workers": 4})
        state.apply({"event": "queued", "task": "t0", "kind": "train"})
        state.apply({"event": "finished", "task": "t0", "ts": 1.0,
                     "result": {"metrics": {"acc": 0.91, "asr": 0.04, "ra": 0.8}}})
        state.apply({"event": "prune_started", "policy": "adaptive"})
        state.apply({"event": "prune_round", "round": 0, "layer": "conv2",
                     "val_loss": 0.7, "val_acc": 0.88, "num_pruned": 1})
        return state

    def test_render_contains_key_sections(self):
        frame = render_dashboard(self._folded_state(), width=78, now=2.0)
        assert "table1" in frame
        assert "tasks" in frame
        assert "ASR" in frame and "ACC" in frame
        assert "prune" in frame
        assert "policy=adaptive" in frame

    def test_render_federated_section(self):
        state = self._folded_state()
        state.apply({"event": "federated.round", "round": 1, "rounds": 3,
                     "clients": 64, "acc": 0.6, "asr": 0.8, "agg_norm": 1.25})
        state.apply({"event": "federated.defense", "defense": "fed_unlearn",
                     "asr": 0.3, "acc": 0.62})
        frame = render_dashboard(state, width=78, now=2.0)
        assert "fed" in frame
        assert "round 2/3" in frame
        assert "clients=64" in frame
        assert "fed_unlearn" in frame

    def test_render_respects_width(self):
        frame = render_dashboard(self._folded_state(), width=60, now=2.0)
        assert all(len(line) <= 60 for line in frame.splitlines())

    def test_sparkline_monotone_series(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] < line[-1]

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        assert len(set(sparkline([2.0, 2.0, 2.0]))) == 1

    def test_sparkline_truncates_to_width(self):
        assert len(sparkline(range(100), width=10)) == 10


class TestWatchPaths:
    def test_once_renders_current_contents(self, tmp_path):
        _write(str(tmp_path / "ledger.jsonl"), [
            {"event": "run_meta", "experiment": "exp9"},
            {"event": "queued", "task": "t0"},
            {"event": "finished", "task": "t0", "ts": 1.0},
        ])
        out = io.StringIO()
        state = watch_paths(str(tmp_path), once=True, out=out)
        assert state.events == 3
        assert "exp9" in out.getvalue()

    def test_once_merges_multiple_streams(self, tmp_path):
        _write(str(tmp_path / "ledger.jsonl"), [{"event": "queued", "task": "t0"}])
        _write(str(tmp_path / "telemetry-1.jsonl"),
               [{"event": "prune_round", "round": 0, "val_loss": 1.0}])
        state = watch_paths(str(tmp_path), once=True, out=io.StringIO())
        assert state.events == 2
        assert state.prune_rounds == 1
