"""Model-summary tests."""

import numpy as np
import pytest

from repro.models import build_model, count_filters, summarize
from tests.conftest import TinyConvNet


class TestSummarize:
    def test_rows_cover_leaf_layers(self):
        model = TinyConvNet()
        summary = summarize(model, input_shape=(3, 8, 8))
        type_names = {r.type_name for r in summary.rows}
        assert "Conv2d" in type_names
        assert "BatchNorm2d" in type_names
        assert "Linear" in type_names

    def test_totals_match_model(self):
        model = TinyConvNet()
        summary = summarize(model, input_shape=(3, 8, 8))
        assert summary.total_params == model.num_parameters()
        assert summary.conv_filters == count_filters(model)
        assert sum(r.num_params for r in summary.rows) == summary.total_params

    def test_output_shapes_recorded(self):
        model = TinyConvNet()
        summary = summarize(model, input_shape=(3, 8, 8))
        first_conv = next(r for r in summary.rows if r.type_name == "Conv2d")
        assert first_conv.output_shape == (8, 8, 8)

    def test_table_renders(self):
        summary = summarize(TinyConvNet(), input_shape=(3, 8, 8))
        text = summary.table()
        assert "total parameters" in text
        assert "Conv2d" in text

    def test_training_mode_restored(self):
        model = TinyConvNet()
        model.train()
        summarize(model, input_shape=(3, 8, 8))
        assert model.training
        model.eval()
        summarize(model, input_shape=(3, 8, 8))
        assert not model.training

    @pytest.mark.parametrize("name", ["preact_resnet18", "vgg19_bn"])
    def test_zoo_models_summarize(self, name):
        model = build_model(name)
        summary = summarize(model, input_shape=(3, 32, 32))
        assert len(summary.rows) > 10
        assert summary.total_params > 0

    def test_no_hooks_left_behind(self):
        model = TinyConvNet()
        summarize(model, input_shape=(3, 8, 8))
        for module in model.modules():
            assert not module._forward_hooks
