"""Model zoo tests: shapes, determinism, registry, train/eval stability."""

import numpy as np
import pytest

from repro.models import (
    MODEL_NAMES,
    EfficientNetB3,
    MobileNetV3Large,
    PreActResNet18,
    VGG19BN,
    build_model,
    count_filters,
)
from repro.nn import Tensor, cross_entropy, no_grad


def batch(n=2, size=32, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.uniform(0, 1, (n, 3, size, size)).astype(np.float32))


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestAllModels:
    def test_forward_shape(self, name):
        model = build_model(name, num_classes=7)
        model.eval()
        assert model(batch()).shape == (2, 7)

    def test_deterministic_construction(self, name):
        a = build_model(name, seed=3)
        b = build_model(name, seed=3)
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            assert np.array_equal(pa.data, pb.data)

    def test_different_seeds_differ(self, name):
        a = build_model(name, seed=1)
        b = build_model(name, seed=2)
        diffs = [
            not np.array_equal(pa.data, pb.data)
            for pa, pb in zip(a.parameters(), b.parameters())
            if pa.data.std() > 0
        ]
        assert any(diffs)

    def test_backward_produces_grads(self, name):
        model = build_model(name)
        model.train()
        logits = model(batch())
        cross_entropy(logits, np.array([0, 1])).backward()
        conv_grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert len(conv_grads) > 0
        # The first conv must receive gradient (whole graph connected).
        first = next(iter(model.parameters()))
        assert first.grad is not None
        assert np.isfinite(first.grad).all()

    def test_has_prunable_filters(self, name):
        model = build_model(name)
        assert count_filters(model) > 10

    def test_eval_deterministic(self, name):
        model = build_model(name)
        model.eval()
        with no_grad():
            a = model(batch()).data
            b = model(batch()).data
        assert np.array_equal(a, b)


class TestRegistry:
    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet50")

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            build_model("vgg19_bn", profile="huge")

    def test_paper_profile_is_larger(self):
        quick = build_model("preact_resnet18", profile="quick")
        paper_kwargs_model = build_model("preact_resnet18", base_width=32)
        assert paper_kwargs_model.num_parameters() > quick.num_parameters()

    def test_override_kwargs(self):
        model = build_model("preact_resnet18", base_width=4)
        assert model.conv1.out_channels == 4


class TestArchitectureSpecifics:
    def test_preact_shortcut_on_shape_change(self):
        model = PreActResNet18(base_width=8)
        assert not model.blocks[0].has_shortcut  # same shape
        assert model.blocks[2].has_shortcut  # stride 2 entry

    def test_vgg_layer_count(self):
        model = VGG19BN(width_mult=0.0625)
        conv_count = sum(
            1 for _, m in model.named_modules() if m.__class__.__name__ == "Conv2d"
        )
        assert conv_count == 16  # VGG-19 has 16 conv layers

    def test_efficientnet_has_se_and_depthwise(self):
        model = EfficientNetB3(width_mult=0.2, depth_mult=0.15)
        has_se = any(m.__class__.__name__ == "SqueezeExcite" for m in model.modules())
        has_dw = any(
            m.__class__.__name__ == "Conv2d" and m.groups > 1 for m in model.modules()
        )
        assert has_se and has_dw

    def test_mobilenet_residual_blocks(self):
        model = MobileNetV3Large(width_mult=0.25, max_blocks=6)
        residuals = [b.use_residual for b in model.blocks]
        assert any(residuals)
        assert not residuals[1]  # stride-2 block can't be residual

    def test_mobilenet_max_blocks_truncates(self):
        small = MobileNetV3Large(max_blocks=3)
        large = MobileNetV3Large(max_blocks=10)
        assert len(small.blocks) == 3
        assert len(large.blocks) == 10

    def test_smaller_inputs_supported(self):
        # Defense unit tests run on 8x8 images; strides must not collapse.
        model = PreActResNet18(base_width=4)
        model.eval()
        assert model(batch(size=8)).shape == (2, 10)
