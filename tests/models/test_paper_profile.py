"""Paper-profile construction tests (full-width architectures).

Only construction and parameter accounting — no forward pass (a full-width
forward is benchmark territory).  Verifies the paper profile actually
builds the published configurations.
"""

import pytest

from repro.models import MODEL_NAMES, build_model, count_filters


class TestPaperProfile:
    def test_preact_resnet18_paper_width(self):
        model = build_model("preact_resnet18", profile="paper")
        # Published PreactResNet-18 for CIFAR: ~11.2M parameters.
        assert 10_000_000 < model.num_parameters() < 12_000_000
        assert model.conv1.out_channels == 64

    def test_vgg19_paper_width(self):
        model = build_model("vgg19_bn", profile="paper")
        first_conv = model.features[0]
        assert first_conv.out_channels == 64
        # Conv stack of VGG-19 on 32x32 (small classifier head): ~20M params.
        assert model.num_parameters() > 15_000_000

    def test_efficientnet_b3_paper_structure(self):
        model = build_model("efficientnet_b3", profile="paper")
        # B3 has 26 MBConv blocks (2+3+3+5+5+6+2).
        assert len(model.blocks) == 26
        assert model.num_parameters() > 8_000_000

    def test_mobilenet_v3_paper_structure(self):
        model = build_model("mobilenet_v3_large", profile="paper")
        assert len(model.blocks) == 15
        assert model.num_parameters() > 3_000_000

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_paper_has_more_filters_than_quick(self, name):
        paper = build_model(name, profile="paper")
        quick = build_model(name, profile="quick")
        assert count_filters(paper) > count_filters(quick)
