"""Tests for filter enumeration, pruning, restoring, and masking."""

import numpy as np
import pytest

from repro.models import (
    FilterRef,
    PruningMask,
    count_filters,
    iter_conv_layers,
    prune_filter,
    restore_filter,
)
from repro.nn import SGD, Conv2d, Module, Sequential, Tensor, cross_entropy


def make_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 4, 3, padding=1, rng=rng),
        Conv2d(4, 6, 3, padding=1, rng=rng),
    )


class TestEnumeration:
    def test_iter_conv_layers_names(self):
        net = make_net()
        names = [name for name, _ in iter_conv_layers(net)]
        assert names == ["0", "1"]

    def test_count_filters(self):
        assert count_filters(make_net()) == 10

    def test_nested_names(self):
        class Wrap(Module):
            def __init__(self):
                super().__init__()
                self.body = make_net()

            def forward(self, x):
                return self.body(x)

        names = [name for name, _ in iter_conv_layers(Wrap())]
        assert names == ["body.0", "body.1"]


class TestPruneRestore:
    def test_prune_zeroes_weight_and_bias(self):
        net = make_net()
        ref = FilterRef("0", 1)
        prune_filter(net, ref)
        assert np.all(net[0].weight.data[1] == 0)
        assert net[0].bias.data[1] == 0

    def test_other_filters_untouched(self):
        net = make_net()
        before = net[0].weight.data[0].copy()
        prune_filter(net, FilterRef("0", 1))
        assert np.array_equal(net[0].weight.data[0], before)

    def test_restore_round_trip(self):
        net = make_net()
        original = net[0].weight.data[2].copy()
        saved = prune_filter(net, FilterRef("0", 2))
        restore_filter(net, FilterRef("0", 2), saved)
        assert np.array_equal(net[0].weight.data[2], original)

    def test_bad_layer_raises(self):
        with pytest.raises(KeyError):
            prune_filter(make_net(), FilterRef("99", 0))

    def test_bad_index_raises(self):
        with pytest.raises(IndexError):
            prune_filter(make_net(), FilterRef("0", 50))

    def test_pruned_filter_kills_output_channel(self):
        net = make_net()
        net.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 5, 5)).astype(np.float32))
        prune_filter(net, FilterRef("0", 0))
        out = net[0](x)
        assert np.all(out.data[:, 0] == 0)


class TestPruningMask:
    def test_len_and_sparsity(self):
        net = make_net()
        mask = PruningMask(net)
        assert len(mask) == 0
        mask.prune(FilterRef("0", 0))
        mask.prune(FilterRef("1", 3))
        assert len(mask) == 2
        assert mask.sparsity() == pytest.approx(0.2)

    def test_is_pruned(self):
        net = make_net()
        mask = PruningMask(net)
        ref = FilterRef("1", 2)
        assert not mask.is_pruned(ref)
        mask.prune(ref)
        assert mask.is_pruned(ref)

    def test_unprune_forgets(self):
        net = make_net()
        mask = PruningMask(net)
        ref = FilterRef("0", 1)
        saved = mask.prune(ref)
        mask.unprune(ref, saved)
        assert not mask.is_pruned(ref)
        assert len(mask) == 0

    def test_apply_rezeroes_after_training_step(self):
        net = make_net()
        mask = PruningMask(net)
        mask.prune(FilterRef("0", 0))
        # One SGD step regrows the filter via its gradient...
        opt = SGD(net.parameters(), lr=0.5)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3, 5, 5)).astype(np.float32))
        out = net(x).mean(axis=(2, 3))
        cross_entropy(out, np.array([0, 1, 2, 3])).backward()
        opt.step()
        assert not np.all(net[0].weight.data[0] == 0)
        # ...and apply() restores the prune.
        mask.apply()
        assert np.all(net[0].weight.data[0] == 0)
        assert net[0].bias.data[0] == 0

    def test_pruned_refs_listing(self):
        net = make_net()
        mask = PruningMask(net)
        mask.prune(FilterRef("0", 2))
        mask.prune(FilterRef("1", 5))
        refs = {str(r) for r in mask.pruned_refs}
        assert refs == {"0[2]", "1[5]"}
