"""Checkpoint save/load for modules (npz-backed state dicts)."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Save a state dict to ``path`` (``.npz``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Load a state dict saved by :func:`save_state`."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def save_module(module: Module, path: str) -> None:
    """Save a module's parameters and buffers."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str, strict: bool = True) -> Module:
    """Load parameters and buffers into ``module`` in place."""
    module.load_state_dict(load_state(path), strict=strict)
    return module
