"""Checkpoint save/load for modules (npz-backed state dicts).

Writes are atomic: the archive is serialized to a temporary file in the
target directory and moved into place with :func:`os.replace`, so a
process killed mid-write can never leave a truncated ``.npz`` under the
final name.  Loads validate the archive and raise :class:`CheckpointError`
(naming the offending path) instead of leaking raw ``zipfile`` internals.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from typing import Dict

import numpy as np

from .module import Module

__all__ = ["CheckpointError", "save_state", "load_state", "save_module", "load_module"]


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, or not an npz archive."""


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Atomically save a state dict to ``path`` (``.npz``)."""
    if not path.endswith(".npz"):
        path += ".npz"  # np.savez would append it anyway; keep tmp/final in sync
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # The tmp name must end in .npz or np.savez silently appends the suffix.
    tmp = f"{path}.tmp.{os.getpid()}.npz"
    try:
        np.savez(tmp, **state)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Load a state dict saved by :func:`save_state`.

    Raises
    ------
    CheckpointError
        If ``path`` does not exist, is not an npz archive, or is truncated
        (e.g. a partial write from a killed process).
    """
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            return {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, zlib.error, ValueError, KeyError, EOFError, OSError) as exc:
        raise CheckpointError(
            f"corrupt or non-npz checkpoint at {path}: {type(exc).__name__}: {exc}"
        ) from exc


def save_module(module: Module, path: str) -> None:
    """Save a module's parameters and buffers."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str, strict: bool = True) -> Module:
    """Load parameters and buffers into ``module`` in place.

    Raises :class:`CheckpointError` for unreadable checkpoint files (see
    :func:`load_state`); state-dict key mismatches still surface from
    ``load_state_dict`` under ``strict=True``.
    """
    module.load_state_dict(load_state(path), strict=strict)
    return module
