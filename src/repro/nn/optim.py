"""Optimizers: SGD (momentum / Nesterov / weight decay), Adam, AdamW.

The sharpness-aware minimization (SAM) wrapper used by the FT-SAM baseline
lives in :mod:`repro.nn.sam`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW"]


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self, set_to_none: bool = True) -> None:
        for param in self.params:
            param.zero_grad(set_to_none=set_to_none)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, Nesterov, and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel = self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = grad + self.momentum * vel if self.nesterov else vel
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction; ``decoupled=True`` gives AdamW behaviour."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled: bool = False,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay and not self.decoupled:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay and self.decoupled:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr, betas, eps, weight_decay, decoupled=True)
