"""Convolution, pooling, and padding primitives with autograd support.

The convolution implementation uses im2col/col2im so that both forward and
backward passes reduce to dense matrix multiplications, which is the fastest
strategy available to a pure-numpy engine.  Grouped and depthwise convolution
(needed by EfficientNet and MobileNetV3) are supported via the ``groups``
argument.

Inference fast path
-------------------
When gradients are not required (inside :class:`repro.nn.tensor.no_grad`, or
when no conv input requires grad), :func:`conv2d` takes a dedicated no-tape
path: the im2col unfold is written into a reused, shape-keyed
:class:`Workspace` buffer in ``(C_in*kh*kw, N*L)`` layout so that one large
BLAS GEMM replaces N small batched matmuls.  Reusing buffers avoids the
page-fault cost of freshly mmap'd allocations, which on this engine is
larger than the GEMM themselves for early layers.  The GEMM itself runs
through :mod:`repro.nn.engine` — cache-blocked (M, N) tiles on a persistent
multicore worker pool, with the conv bias (post-folding: the BN affine) and
an optionally fused ReLU applied inside each tile — and degrades to the
single inline BLAS call when one worker is configured.  Set
``REPRO_DISABLE_FAST_PATH=1`` to force the reference path (useful for
bisecting regressions between kernel and orchestration layers).
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "conv2d",
    "conv_transpose2d",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "batch_norm2d_train",
    "batch_norm2d_eval",
    "pad2d",
    "im2col",
    "col2im",
    "Workspace",
    "workspace",
    "current_arena",
    "use_arena",
    "train_workspace",
    "current_train_arena",
    "use_train_arena",
    "fast_path_enabled",
]

IntPair = Union[int, Tuple[int, int]]

FAST_PATH_ENV = "REPRO_DISABLE_FAST_PATH"


def fast_path_enabled() -> bool:
    """Whether the no-grad inference fast path is active.

    Opt out with ``REPRO_DISABLE_FAST_PATH=1`` (also accepts ``true``/``yes``/
    ``on``); the environment is consulted on every call so tests can flip the
    flag without reloading the module.
    """
    return os.environ.get(FAST_PATH_ENV, "").strip().lower() not in ("1", "true", "yes", "on")


class Workspace:
    """Arena of reusable scratch slabs, one growable byte buffer per tag.

    The inference fast path needs large intermediates (padded inputs, im2col
    matrices, GEMM outputs) on every conv call.  Fresh numpy allocations of
    multi-MB arrays are mmap-backed, so writing them incurs a page fault per
    4 KiB; recycling a slab avoids that.  Crucially the slab is shared
    *across layers* — :meth:`get` hands out a view of the per-tag buffer
    regardless of the requested shape — so consecutive convs of different
    sizes hit the same hot pages instead of each pinning their own
    cold-by-next-round buffer (keying slabs by shape was measurably slower
    than plain malloc recycling due to cache/TLB pressure).

    Buffers are only handed out for intermediates that are fully consumed
    before the op returns — results that escape an op are always freshly
    allocated.  Two concurrent ``get``s of the same tag alias each other.

    Not thread-safe; the engine is single-threaded by design (BLAS provides
    the parallelism).
    """

    def __init__(self) -> None:
        self._slabs: Dict[str, np.ndarray] = {}

    def get(self, tag: str, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """Return a reusable uninitialized ``(shape, dtype)`` view for ``tag``."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        slab = self._slabs.get(tag)
        if slab is None or slab.nbytes < nbytes:
            slab = np.empty(nbytes, dtype=np.uint8)
            self._slabs[tag] = slab
        return slab[:nbytes].view(dtype).reshape(shape)

    def release(self, tag: str) -> None:
        """Lifetime mark: ``tag``'s buffer is dead.  No-op here; the static
        planner (:class:`repro.nn.engine.PlannedArena`) uses these marks to
        let lifetime-disjoint tags share one slab."""

    def clear(self) -> None:
        """Drop every cached slab (frees the memory)."""
        self._slabs.clear()

    def __len__(self) -> int:
        return len(self._slabs)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(slab.nbytes for slab in self._slabs.values())


_WORKSPACE = Workspace()


def workspace() -> Workspace:
    """The process-wide workspace arena used by the inference fast path."""
    return _WORKSPACE


_ARENA_STACK: List[Workspace] = []


def current_arena() -> Workspace:
    """The arena fast-path kernels should allocate from.

    Defaults to the process-wide :func:`workspace`; a compiled model pushes
    its own planned arena for the duration of each forward via
    :func:`use_arena`.
    """
    return _ARENA_STACK[-1] if _ARENA_STACK else _WORKSPACE


@contextlib.contextmanager
def use_arena(arena):
    """Route fast-path scratch allocations to ``arena`` inside the block."""
    _ARENA_STACK.append(arena)
    try:
        yield arena
    finally:
        _ARENA_STACK.pop()


# Training-side scratch is kept separate from the inference arena stack: a
# training step's backward temporaries (flattened upstream gradients, packed
# weights, col2im scatter scratch) are alive while inference-style no-grad
# evaluations may interleave (e.g. the pruning loop scores with gradients,
# then evaluates the compiled model), and the two must never alias.
_TRAIN_WORKSPACE = Workspace()

_TRAIN_ARENA_STACK: List[Workspace] = []


def train_workspace() -> Workspace:
    """The process-wide arena used by the training fast path's temporaries."""
    return _TRAIN_WORKSPACE


def current_train_arena() -> Workspace:
    """The arena training-path kernels should allocate scratch from.

    Defaults to the process-wide :func:`train_workspace`; hot loops push a
    planned arena for the duration of each forward+backward pass via
    :func:`use_train_arena` (see :func:`repro.nn.engine.training_step`).
    """
    return _TRAIN_ARENA_STACK[-1] if _TRAIN_ARENA_STACK else _TRAIN_WORKSPACE


@contextlib.contextmanager
def use_train_arena(arena):
    """Route training-path scratch allocations to ``arena`` inside the block."""
    _TRAIN_ARENA_STACK.append(arena)
    try:
        yield arena
    finally:
        _TRAIN_ARENA_STACK.pop()


def _after_fork_in_child() -> None:
    """Reset fast-path state inherited over ``fork``.

    Orchestrator (and tile-pool) children must never serve views of a slab
    the parent is concurrently writing, and must never talk to worker pools
    they do not own: drop every arena buffer and forget — without tearing
    down — the engine singleton's inherited pool handles.
    """
    _WORKSPACE.clear()
    del _ARENA_STACK[:]
    _TRAIN_WORKSPACE.clear()
    del _TRAIN_ARENA_STACK[:]
    import sys

    if "repro.nn.engine.gemm" in sys.modules:
        from .engine.gemm import reset_engine

        reset_engine(in_child=True)
    if "repro.nn.engine.planner" in sys.modules:
        from .engine.planner import clear_all_arenas

        clear_all_arenas()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_after_fork_in_child)


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        if len(value) != 2:
            raise ValueError(f"expected an int or a length-2 tuple, got {value!r}")
        return value
    return (value, value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window.

    Raises
    ------
    ValueError
        If the window does not fit, i.e. the output size would be <= 0.
    """
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size {out} is non-positive: input size {size} with "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def _pad_spatial(x: np.ndarray, ph: int, pw: int, arena: Optional[Workspace] = None) -> np.ndarray:
    """Zero-pad (N, C, H, W) spatially; optionally into a reused arena buffer."""
    if not (ph or pw):
        return x
    if arena is None:
        return np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    n, c, h, w = x.shape
    buf = arena.get("pad", (n, c, h + 2 * ph, w + 2 * pw), x.dtype)
    if ph:
        buf[:, :, :ph, :] = 0.0
        buf[:, :, h + ph :, :] = 0.0
    if pw:
        buf[:, :, :, :pw] = 0.0
        buf[:, :, :, w + pw :] = 0.0
    buf[:, :, ph : ph + h, pw : pw + w] = x
    return buf


def _window_view(
    x_padded: np.ndarray, n: int, c: int, out_h: int, out_w: int, kh: int, kw: int, sh: int, sw: int
) -> np.ndarray:
    """Read-only sliding-window view (N, C, out_h, out_w, kh, kw)."""
    s = x_padded.strides
    return np.lib.stride_tricks.as_strided(
        x_padded,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s[0], s[1], s[2] * sh, s[3] * sw, s[2], s[3]),
        writeable=False,
    )


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out: Optional[np.ndarray] = None,
    return_padded: bool = False,
    arena: Optional[Workspace] = None,
):
    """Unfold ``x`` (N, C, H, W) into columns of shape (N, C*kh*kw, L).

    ``L = out_h * out_w`` is the number of sliding-window positions.  The
    result is laid out so that a convolution becomes ``weight_matrix @ cols``.
    The copy is skipped entirely when the unfolded view is already contiguous
    (1x1 kernels with unit stride).

    Parameters
    ----------
    out:
        Optional preallocated destination of shape ``(N, C*kh*kw, L)``.
    return_padded:
        When True, also return the zero-padded input so callers can recycle
        its buffer (e.g. :func:`conv2d` reuses it as col2im scratch in the
        backward pass).
    arena:
        Optional workspace whose ``"pad"`` slab holds the zero-padded input
        (fast path only — the padded array must not outlive the op).
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    padded = _pad_spatial(x, ph, pw, arena=arena)

    windows = _window_view(padded, n, c, out_h, out_w, kh, kw, sh, sw)
    # (N, C, out_h, out_w, kh, kw) -> (N, C, kh, kw, out_h, out_w)
    view = windows.transpose(0, 1, 4, 5, 2, 3)
    if out is not None:
        np.copyto(out.reshape(n, c, kh, kw, out_h, out_w), view)
        cols = out.reshape(n, c * kh * kw, out_h * out_w)
    else:
        # reshape copies only when the view is non-contiguous.
        cols = view.reshape(n, c * kh * kw, out_h * out_w)
    if return_padded:
        return cols, padded
    return cols


def _im2col_gemm(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    arena: Workspace,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unfold ``x`` directly in single-GEMM layout ``(N*L, kh*kw*C)``.

    Writing the unfold into a recycled arena buffer in patch-major order
    means the subsequent convolution is one large ``(N*L, K) @ (K, C_out)``
    GEMM instead of N small batched matmuls, and — because padding is
    materialized in channels-last ``(N, H, W, C)`` storage — each unfold row
    gathers ``kh*kw`` *contiguous* ``C``-runs from an L1-resident window of
    the padded image, instead of sweeping the whole batch per kernel tap.
    ``x`` itself may be in any storage order (the fast path hands conv
    outputs around as channels-last views, making the transpose here free).

    ``out`` overrides the destination (the training path unfolds into fresh
    memory so the columns can survive into the backward closure, where the
    dW GEMM reuses them); the padded image still comes from ``arena``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    if ph or pw:
        padded = arena.get("pad", (n, h + 2 * ph, w + 2 * pw, c), x.dtype)
        if ph:
            padded[:, :ph] = 0.0
            padded[:, h + ph :] = 0.0
        if pw:
            padded[:, :, :pw] = 0.0
            padded[:, :, w + pw :] = 0.0
        padded[:, ph : ph + h, pw : pw + w, :] = x.transpose(0, 2, 3, 1)
    else:
        padded = x.transpose(0, 2, 3, 1)
    s = padded.strides
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, out_h, out_w, kh, kw, c),
        strides=(s[0], s[1] * sh, s[2] * sw, s[1], s[2], s[3]),
        writeable=False,
    )
    buf = out if out is not None else arena.get(
        "cols_gemm", (n * out_h * out_w, kh * kw * c), x.dtype
    )
    np.copyto(buf.reshape(n, out_h, out_w, kh, kw, c), view)
    arena.release("pad")  # the unfold was the padded image's last reader
    return buf


def _col2im_gemm(
    cols2d: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    arena: Workspace,
) -> np.ndarray:
    """Fold single-GEMM-layout columns ``(N*L, kh*kw*C)`` back, summing overlaps.

    The channels-last counterpart of :func:`col2im`, consuming the patch-major
    layout the training fast path's dX GEMM produces.  The scatter-add runs in
    ``(N, H, W, C)`` storage — each kernel-tap slice adds contiguous ``C``-runs
    — and the returned array is a logically-``(N, C, H, W)`` transpose view of
    the arena's ``"bwd_pad"`` slab, so the caller must consume it (accumulate
    into ``.grad``) before the next op touches the arena.
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    if (kh, kw) == (1, 1) and (sh, sw) == (1, 1) and not (ph or pw):
        # Pointwise stride-1 conv: the columns ARE the gradient, one view.
        return cols2d.reshape(n, h, w, c).transpose(0, 3, 1, 2)
    padded = arena.get("bwd_pad", (n, h + 2 * ph, w + 2 * pw, c), cols2d.dtype)
    padded.fill(0.0)
    cols6 = cols2d.reshape(n, out_h, out_w, kh, kw, c)
    for i in range(kh):
        h_end = i + sh * out_h
        for j in range(kw):
            w_end = j + sw * out_w
            padded[:, i:h_end:sh, j:w_end:sw, :] += cols6[:, :, :, i, j, :]
    core = padded[:, ph : ph + h, pw : pw + w, :] if (ph or pw) else padded
    return core.transpose(0, 3, 1, 2)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fold columns produced by :func:`im2col` back, summing overlaps.

    ``out`` may supply a scratch buffer of the *padded* shape
    ``(N, C, H+2ph, W+2pw)``; it is zeroed before accumulation.  The conv
    backward pass recycles its forward padding buffer this way.
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    padded_shape = (n, c, h + 2 * ph, w + 2 * pw)
    if out is not None and out.shape == padded_shape and out.dtype == cols.dtype:
        padded = out
        padded.fill(0.0)
    else:
        padded = np.zeros(padded_shape, dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        h_end = i + sh * out_h
        for j in range(kw):
            w_end = j + sw * out_w
            padded[:, :, i:h_end:sh, j:w_end:sw] += cols[:, :, i, j]
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


def _conv2d_infer(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    groups: int,
    out_h: int,
    out_w: int,
    activation: Optional[str] = None,
) -> np.ndarray:
    """No-grad conv forward: arena-backed unfold + one tiled GEMM.

    The GEMM computes ``(N*L, K) @ (K, C_out)`` and its result is *kept* in
    channels-last (NHWC) storage: the returned array is a logically-``(N,
    C_out, H, W)`` transpose view of the freshly written ``(N*L, C_out)``
    buffer, so no un-transpose pass is ever paid.  Numpy ufuncs preserve
    that layout through the BN/activation/residual ops that follow, and the
    next conv's unfold reads it back for free, so the layout is
    self-sustaining across a whole eval forward.  All intermediates (padded
    input, unfolded columns, transposed weights) live in the active arena;
    only the GEMM result, which escapes into the caller's graph, is freshly
    allocated.  The GEMM plus its bias/``activation`` epilogue runs through
    the tiled multicore engine (:mod:`repro.nn.engine`), which degrades to
    the same single inline BLAS call when one worker is configured.
    """
    from .engine.gemm import engine as _engine

    arena = current_arena()
    n, c_in = x.shape[0], x.shape[1]
    c_out, c_in_per_group, kh, kw = weight.shape
    length = out_h * out_w

    if groups == 1:
        if kh == 1 and kw == 1 and padding == (0, 0):
            # Pointwise conv: subsample spatially, then the channels-last
            # view *is* the column matrix (free when storage is already
            # channels-last; reshape copies otherwise), and the weight
            # transpose is handled by BLAS without a copy.
            xs = x if stride == (1, 1) else x[:, :, :: stride[0], :: stride[1]]
            cols = xs.transpose(0, 2, 3, 1).reshape(n * length, c_in)
            w_mat = weight.reshape(c_out, c_in).transpose()
        else:
            cols = _im2col_gemm(x, (kh, kw), stride, padding, arena)  # (N*L, K)
            k_flat = c_in * kh * kw
            # (C_out, C, kh, kw) -> (kh, kw, C, C_out) to match unfold order.
            # Pre-packed weights (e.g. folded by CompiledInference) already
            # store this order physically, so the transpose is a free view.
            wt = weight.transpose(2, 3, 1, 0)
            if wt.flags.c_contiguous:
                w_mat = wt.reshape(k_flat, c_out)
            else:
                w_mat = arena.get("wmat", (k_flat, c_out), weight.dtype)
                np.copyto(w_mat.reshape(kh, kw, c_in, c_out), wt)
        gemm = _engine().execute(cols, w_mat, bias=bias, activation=activation)
        arena.release("cols_gemm")
        arena.release("wmat")
        return gemm.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    k_per_group = c_in_per_group * kh * kw
    buf = arena.get("cols", (n, c_in * kh * kw, length), x.dtype)
    cols = im2col(x, (kh, kw), stride, padding, out=buf, arena=arena)
    arena.release("pad")  # out= forces a copy, so the unfold never aliases pad
    cols_g = cols.reshape(n, groups, k_per_group, length)
    w_mat = weight.reshape(groups, c_out // groups, -1)
    out = np.einsum("gok,ngkl->ngol", w_mat, cols_g, optimize=True)
    out = np.ascontiguousarray(out).reshape(n, c_out, out_h, out_w)
    arena.release("cols")
    if bias is not None:
        out += bias.reshape(1, c_out, 1, 1)
    if activation == "relu":
        np.maximum(out, 0.0, out=out)
    return out


def _conv2d_train(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out_h: int,
    out_w: int,
) -> Tensor:
    """Gradient-path conv forward+backward on the tiled GEMM engine.

    The forward is the same single-GEMM channels-last formulation as
    :func:`_conv2d_infer`, except the unfolded columns are written to fresh
    memory and *captured by the backward closure*: the dW GEMM consumes them
    directly instead of re-materializing the unfold.  Backward issues three
    engine GEMMs —

    - ``dW(K, C_out) = cols.T @ grad2d`` via the reduction-split
      ``execute_tn`` dispatch (the output is too small to tile; parallelism
      comes from chunking the shared ``N*L`` reduction into per-worker
      partial sums);
    - ``grad_cols(N*L, K) = grad2d @ W_packedᵀ`` via the output-tiled
      ``execute``;
    - the channels-last col2im scatter folding ``grad_cols`` into dX.

    All backward temporaries (the flattened upstream gradient, packed
    weights, dW product, col2im scratch) live in the *training* arena
    (:func:`current_train_arena`) — everything accumulated into ``.grad``
    is either copied or added by ``Tensor._accumulate`` before the arena
    recycles, and the tape walk is serial, so tags can be reused across
    layers.  Only ``cols`` and the forward GEMM output, which outlive the
    op, are fresh allocations.
    """
    from .engine.gemm import engine as _engine

    arena = current_train_arena()
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    length = out_h * out_w
    k_flat = c_in * kh * kw
    dtype = x.data.dtype

    if kh == 1 and kw == 1 and padding == (0, 0):
        xs = x.data if stride == (1, 1) else x.data[:, :, :: stride[0], :: stride[1]]
        # A contiguous channels-last input makes this reshape a view of
        # x.data; activations are never mutated in place between forward and
        # backward, so capturing the view is as safe as the reference path's.
        cols = xs.transpose(0, 2, 3, 1).reshape(n * length, c_in)
    else:
        cols = np.empty((n * length, k_flat), dtype=dtype)
        _im2col_gemm(x.data, (kh, kw), stride, padding, arena, out=cols)

    # (C_out, C, kh, kw) -> (kh, kw, C, C_out): the unfold's patch-major order.
    wt = weight.data.transpose(2, 3, 1, 0)
    if wt.flags.c_contiguous:
        w_mat = wt.reshape(k_flat, c_out)
    else:
        w_mat = arena.get("wmat", (k_flat, c_out), dtype)
        np.copyto(w_mat.reshape(kh, kw, c_in, c_out), wt)
    bias_data = None if bias is None else bias.data
    out2d = _engine().execute(cols, w_mat, bias=bias_data)
    arena.release("wmat")
    # Materialize contiguous NCHW: training-mode consumers (BatchNorm batch
    # statistics, ReLU masks, residual adds) reduce over this output many
    # times, and feeding them the NHWC-storage transpose view makes every
    # one of those reductions strided — measurably slower than this single
    # well-vectorized copy.  (The no-grad inference path keeps the view: its
    # consumers are channels-last aware.)
    out = np.ascontiguousarray(out2d.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2))

    x_shape = x.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        eng = _engine()
        bwd_arena = current_train_arena()
        grad2d = bwd_arena.get("grad2d", (n * length, c_out), grad.dtype)
        np.copyto(grad2d.reshape(n, out_h, out_w, c_out), grad.transpose(0, 2, 3, 1))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad2d.sum(axis=0))
        if weight.requires_grad:
            dw = eng.execute_tn(cols, grad2d, out=bwd_arena.get("dw", (k_flat, c_out), dtype))
            weight._accumulate(dw.reshape(kh, kw, c_in, c_out).transpose(3, 2, 0, 1))
            bwd_arena.release("dw")
        if x.requires_grad:
            # Repack from weight.data at backward time: reference semantics
            # (pruning masks and SAM perturbations mutate weights in place).
            w_bwd = bwd_arena.get("wmat_bwd", (c_out, k_flat), dtype)
            np.copyto(w_bwd.reshape(c_out, kh, kw, c_in), weight.data.transpose(0, 2, 3, 1))
            grad_cols = eng.execute(
                grad2d, w_bwd, out=bwd_arena.get("grad_cols", (n * length, k_flat), dtype)
            )
            x._accumulate(
                _col2im_gemm(grad_cols, x_shape, (kh, kw), stride, padding, bwd_arena)
            )
            bwd_arena.release("grad_cols")
            bwd_arena.release("wmat_bwd")
            bwd_arena.release("bwd_pad")
        bwd_arena.release("grad2d")

    return Tensor._make(out, parents, backward)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    groups: int = 1,
    activation: Optional[str] = None,
) -> Tensor:
    """2-D cross-correlation over a batch of images.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in // groups, kH, kW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Int or (h, w) pair.
    groups:
        Channel groups; ``groups == C_in`` with ``C_out == C_in`` gives a
        depthwise convolution.
    activation:
        Optional epilogue activation (``"relu"``) fused into the GEMM tile
        loop.  Inference-only: set by :class:`repro.nn.inference
        .CompiledInference` for traced conv→BN→ReLU chains; requesting it
        on a gradient-requiring call is an error (no backward is recorded
        for the fused activation).
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_per_group, kh, kw = weight.shape
    if c_in != c_in_per_group * groups:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in} channels but weight expects "
            f"{c_in_per_group * groups} (groups={groups})"
        )
    if c_out % groups:
        raise ValueError(f"c_out={c_out} not divisible by groups={groups}")

    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])
    c_out_per_group = c_out // groups

    needs_grad = is_grad_enabled() and (
        x.requires_grad
        or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    if activation is not None and needs_grad:
        raise ValueError(
            "conv2d(activation=...) is an inference-only fusion; it cannot be "
            "used on a gradient-requiring call"
        )
    if not needs_grad and fast_path_enabled():
        out = _conv2d_infer(
            x.data,
            weight.data,
            None if bias is None else bias.data,
            stride,
            padding,
            groups,
            out_h,
            out_w,
            activation,
        )
        return Tensor(out)

    if needs_grad and groups == 1 and fast_path_enabled():
        # Training fast path: engine-dispatched forward and backward GEMMs
        # with column reuse.  Grouped convs stay on the einsum reference
        # path (same split as _conv2d_infer); REPRO_DISABLE_FAST_PATH=1
        # forces the reference kernels below.
        return _conv2d_train(x, weight, bias, stride, padding, out_h, out_w)

    cols, padded = im2col(x.data, (kh, kw), stride, padding, return_padded=True)
    length = out_h * out_w
    # The padded copy is dead after the unfold; keep it as col2im scratch for
    # the backward pass.  Never reuse the input itself (padding == 0 returns
    # ``x.data`` unchanged) or a buffer the unfold aliases (1x1 kernels can
    # reshape to a view instead of copying).
    scratch = (
        padded
        if (padding[0] or padding[1]) and not np.shares_memory(cols, padded)
        else None
    )

    if groups == 1:
        w_mat = weight.data.reshape(c_out, -1)  # (C_out, C_in*kh*kw)
        out = np.matmul(w_mat[None], cols)  # batched GEMM -> (N, C_out, L)
    else:
        cols_g = cols.reshape(n, groups, c_in_per_group * kh * kw, length)
        w_mat = weight.data.reshape(groups, c_out_per_group, -1)
        out = np.einsum("gok,ngkl->ngol", w_mat, cols_g, optimize=True)
        out = out.reshape(n, c_out, length)

    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)
    if activation == "relu":  # no-grad only: the needs_grad case raised above
        out = np.maximum(out, 0.0)

    x_shape = x.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, c_out, length)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=(0, 2)))
        if groups == 1:
            if weight.requires_grad:
                grad_w = np.matmul(grad_flat, cols.transpose(0, 2, 1)).sum(axis=0)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                w_mat_local = weight.data.reshape(c_out, -1)
                grad_cols = np.matmul(w_mat_local.T[None], grad_flat)
                x._accumulate(
                    col2im(grad_cols, x_shape, (kh, kw), stride, padding, out=scratch)
                )
        else:
            grad_g = grad_flat.reshape(n, groups, c_out_per_group, length)
            cols_g_local = cols.reshape(n, groups, c_in_per_group * kh * kw, length)
            if weight.requires_grad:
                grad_w = np.einsum("ngol,ngkl->gok", grad_g, cols_g_local, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                w_mat_local = weight.data.reshape(groups, c_out_per_group, -1)
                grad_cols = np.einsum("gok,ngol->ngkl", w_mat_local, grad_g, optimize=True)
                grad_cols = grad_cols.reshape(n, c_in_per_group * groups * kh * kw, length)
                x._accumulate(
                    col2im(grad_cols, x_shape, (kh, kw), stride, padding, out=scratch)
                )

    return Tensor._make(out, parents, backward)


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D transposed convolution (a.k.a. deconvolution).

    The forward pass is exactly the data-gradient of :func:`conv2d`, so the
    implementation reuses ``col2im``; the backward pass reuses ``im2col``.
    Used by decoder networks (e.g. the LIRA-style trigger generator).

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_in, C_out, kH, kW)`` (PyTorch's transposed
        layout: the *input* channel leads).
    bias:
        Optional per-output-channel bias ``(C_out,)``.
    stride, padding:
        Stride/padding of the *corresponding forward convolution*: output
        spatial size is ``(H - 1) * stride - 2 * padding + kernel``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_in_w, c_out, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(
            f"conv_transpose2d channel mismatch: input has {c_in}, weight expects {c_in_w}"
        )
    out_h = (h - 1) * stride[0] - 2 * padding[0] + kh
    out_w = (w - 1) * stride[1] - 2 * padding[1] + kw
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"non-positive output size {(out_h, out_w)}")

    length = h * w
    # Treat x as the "gradient" flowing into a conv over the output image:
    # cols[n, c_out*kh*kw, l] = W^T @ x, then fold with col2im.
    w_mat = weight.data.reshape(c_in, c_out * kh * kw)  # (C_in, K)
    x_flat = x.data.reshape(n, c_in, length)
    cols = np.matmul(w_mat.T[None], x_flat)  # (N, C_out*kh*kw, L)
    out = col2im(cols, (n, c_out, out_h, out_w), (kh, kw), stride, padding)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    k_flat = c_out * kh * kw
    use_fast = fast_path_enabled()

    def backward(grad: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        grad_cols = im2col(grad, (kh, kw), stride, padding)  # (N, C_out*kh*kw, L)
        if not use_fast:
            if weight.requires_grad:
                grad_w = np.matmul(x_flat, grad_cols.transpose(0, 2, 1)).sum(axis=0)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                grad_x = np.matmul(w_mat[None], grad_cols)  # (N, C_in, L)
                x._accumulate(grad_x.reshape(n, c_in, h, w))
            return
        # Engine path: both backward products collapse the batch into one
        # GEMM over (N*L) rows — dW through the reduction-split dispatch,
        # dX through the output-tiled one.
        from .engine.gemm import engine as _engine

        eng = _engine()
        arena = current_train_arena()
        cols_rows = arena.get("grad2d", (n * length, k_flat), grad_cols.dtype)
        np.copyto(
            cols_rows.reshape(n, length, k_flat), grad_cols.transpose(0, 2, 1)
        )
        if weight.requires_grad:
            x_rows = arena.get("x_rows", (n * length, c_in), x_flat.dtype)
            np.copyto(x_rows.reshape(n, length, c_in), x_flat.transpose(0, 2, 1))
            # dW(C_in, K) = sum_{n,l} x[n,:,l] ⊗ grad_cols[n,:,l]
            dw = eng.execute_tn(
                x_rows, cols_rows, out=arena.get("dw", (c_in, k_flat), x_flat.dtype)
            )
            weight._accumulate(dw.reshape(weight.shape))
            arena.release("dw")
            arena.release("x_rows")
        if x.requires_grad:
            grad_x = eng.execute(
                cols_rows,
                w_mat.T,  # (K, C_in)
                out=arena.get("grad_cols", (n * length, c_in), grad_cols.dtype),
            )
            x._accumulate(
                grad_x.reshape(n, length, c_in).transpose(0, 2, 1).reshape(n, c_in, h, w)
            )
            arena.release("grad_cols")
        arena.release("grad2d")

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out.astype(x.data.dtype), parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight.T (+ bias)`` with forward/backward matmuls on the engine.

    ``weight`` is ``(out_features, in_features)`` (the torch layout).  The
    2-D case — every classifier head in the model zoo — runs both the
    forward product and its backward pair (dW via the reduction-split
    ``execute_tn``, dX via the output-tiled ``execute``) through the tiled
    GEMM engine; most heads are small enough that the engine degrades to
    the same inline BLAS calls the reference composition issues, so the
    dispatch costs nothing on 1 core.  Non-2-D inputs and
    ``REPRO_DISABLE_FAST_PATH=1`` fall back to composing
    :meth:`Tensor.matmul` + add.
    """
    if x.data.ndim != 2 or not fast_path_enabled():
        out = x.matmul(weight.transpose())
        if bias is not None:
            out = out + bias
        return out

    from .engine.gemm import engine as _engine

    out = _engine().execute(
        x.data, weight.data.T, bias=None if bias is None else bias.data
    )

    def backward(grad: np.ndarray) -> None:
        eng = _engine()
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))
        if weight.requires_grad:
            # dW(out, in) = grad.T @ x — exactly the reduction-split shape.
            weight._accumulate(eng.execute_tn(grad, x.data))
        if x.requires_grad:
            x._accumulate(eng.execute(grad, weight.data))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> Tensor:
    """Max pooling over (N, C, H, W)."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])

    data = x.data
    if padding[0] or padding[1]:
        data = np.pad(
            data,
            ((0, 0), (0, 0), (padding[0], padding[0]), (padding[1], padding[1])),
            constant_values=-np.inf,
        )
    strides = data.strides
    windows = np.lib.stride_tricks.as_strided(
        data,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride[0],
            strides[3] * stride[1],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kh * kw)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    x_shape = x.shape

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_padded = np.zeros(
            (n, c, h + 2 * padding[0], w + 2 * padding[1]), dtype=grad.dtype
        )
        ki, kj = np.unravel_index(arg, (kh, kw))
        oi = np.arange(out_h).reshape(1, 1, out_h, 1) * stride[0]
        oj = np.arange(out_w).reshape(1, 1, 1, out_w) * stride[1]
        rows = (oi + ki).reshape(n, c, -1)
        cols_idx = (oj + kj).reshape(n, c, -1)
        ni = np.arange(n).reshape(n, 1, 1)
        ci = np.arange(c).reshape(1, c, 1)
        np.add.at(grad_padded, (ni, ci, rows, cols_idx), grad.reshape(n, c, -1))
        if padding[0] or padding[1]:
            grad_padded = grad_padded[
                :, :, padding[0] : padding[0] + h, padding[1] : padding[1] + w
            ]
        x._accumulate(grad_padded.reshape(x_shape))

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


def avg_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> Tensor:
    """Average pooling over (N, C, H, W)."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])
    scale = 1.0 / (kh * kw)

    data = x.data
    if padding[0] or padding[1]:
        data = np.pad(data, ((0, 0), (0, 0), (padding[0], padding[0]), (padding[1], padding[1])))
    strides = data.strides
    windows = np.lib.stride_tricks.as_strided(
        data,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride[0],
            strides[3] * stride[1],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    out = windows.mean(axis=(-1, -2))
    x_shape = x.shape

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_padded = np.zeros((n, c, h + 2 * padding[0], w + 2 * padding[1]), dtype=grad.dtype)
        spread = grad * scale
        for i in range(kh):
            for j in range(kw):
                grad_padded[
                    :, :, i : i + stride[0] * out_h : stride[0], j : j + stride[1] * out_w : stride[1]
                ] += spread
        if padding[0] or padding[1]:
            grad_padded = grad_padded[
                :, :, padding[0] : padding[0] + h, padding[1] : padding[1] + w
            ]
        x._accumulate(grad_padded.reshape(x_shape))

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: IntPair = 1) -> Tensor:
    """Adaptive average pooling; only output sizes that evenly divide are supported."""
    oh, ow = _pair(output_size)
    _, _, h, w = x.shape
    if h % oh or w % ow:
        raise ValueError(f"adaptive_avg_pool2d requires divisible sizes, got {(h, w)} -> {(oh, ow)}")
    return avg_pool2d(x, kernel=(h // oh, w // ow))


def batch_norm2d_train(
    x: Tensor, weight: Tensor, bias: Tensor, eps: float
) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Fused training-mode batch norm over (N, C, H, W).

    Normalizes with batch statistics and returns ``(out, batch_mean,
    batch_var)`` so the layer can update its running buffers.  The backward
    pass uses the closed-form batch-norm gradient, which is several times
    faster than composing it from primitive autograd ops.
    """
    n, c, h, w = x.shape
    count = n * h * w
    mean = x.data.mean(axis=(0, 2, 3))
    var = x.data.var(axis=(0, 2, 3))
    inv_std = 1.0 / np.sqrt(var + eps)
    mean_b = mean.reshape(1, c, 1, 1)
    inv_b = inv_std.reshape(1, c, 1, 1)
    x_hat = (x.data - mean_b) * inv_b
    out = x_hat * weight.data.reshape(1, c, 1, 1) + bias.data.reshape(1, c, 1, 1)

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            gamma = weight.data.reshape(1, c, 1, 1)
            grad_xhat = grad * gamma
            sum_g = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
            sum_gx = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
            grad_x = inv_b / count * (count * grad_xhat - sum_g - x_hat * sum_gx)
            x._accumulate(grad_x.astype(x.data.dtype))

    result = Tensor._make(out.astype(x.data.dtype), (x, weight, bias), backward)
    return result, mean, var


def batch_norm2d_eval(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    eps: float,
) -> Tensor:
    """Fused eval-mode batch norm using stored running statistics."""
    c = x.shape[1]
    inv_std = (1.0 / np.sqrt(running_var + eps)).astype(x.data.dtype)
    scale = weight.data * inv_std
    shift = bias.data - running_mean * scale
    # One fresh allocation; the shift is added in place to avoid a second
    # output-sized temporary (this op runs once per BN layer per eval batch).
    d = x.data
    nhwc = d.transpose(0, 2, 3, 1)
    if fast_path_enabled() and not d.flags.c_contiguous and nhwc.flags.c_contiguous:
        # Channels-last storage (the fast conv path's native layout): the
        # per-channel affine is a contiguous 2D broadcast over (N*H*W, C),
        # which streams ~2x faster than broadcasting along a strided axis.
        flat = nhwc.reshape(-1, c)
        out2d = flat * scale
        out2d += shift
        out = out2d.reshape(nhwc.shape).transpose(0, 3, 1, 2)
    else:
        out = d * scale.reshape(1, c, 1, 1)
        out += shift.reshape(1, c, 1, 1)
    if out.dtype != x.data.dtype:
        out = out.astype(x.data.dtype)
    x_data = x.data

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            x_hat = (x_data - running_mean.reshape(1, c, 1, 1)) * inv_std.reshape(1, c, 1, 1)
            weight._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            x._accumulate(grad * scale.reshape(1, c, 1, 1))

    return Tensor._make(out, (x, weight, bias), backward)


def pad2d(x: Tensor, padding: IntPair) -> Tensor:
    """Zero-pad the spatial dimensions of (N, C, H, W)."""
    ph, pw = _pair(padding)
    out = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    _, _, h, w = x.shape

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad[:, :, ph : ph + h, pw : pw + w])

    return Tensor._make(out, (x,), backward)
