"""Convolution, pooling, and padding primitives with autograd support.

The convolution implementation uses im2col/col2im so that both forward and
backward passes reduce to dense matrix multiplications, which is the fastest
strategy available to a pure-numpy engine.  Grouped and depthwise convolution
(needed by EfficientNet and MobileNetV3) are supported via the ``groups``
argument.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "conv2d",
    "conv_transpose2d",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "batch_norm2d_train",
    "batch_norm2d_eval",
    "pad2d",
    "im2col",
    "col2im",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]
) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into columns of shape (N, C*kh*kw, L).

    ``L = out_h * out_w`` is the number of sliding-window positions.  The
    result is laid out so that a convolution becomes ``weight_matrix @ cols``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(strides[0], strides[1], strides[2] * sh, strides[3] * sw, strides[2], strides[3]),
        writeable=False,
    )
    # (N, C, kh, kw, out_h, out_w) -> (N, C*kh*kw, L)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Fold columns produced by :func:`im2col` back, summing overlaps."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        h_end = i + sh * out_h
        for j in range(kw):
            w_end = j + sw * out_w
            padded[:, :, i:h_end:sh, j:w_end:sw] += cols[:, :, i, j]
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    groups: int = 1,
) -> Tensor:
    """2-D cross-correlation over a batch of images.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in // groups, kH, kW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Int or (h, w) pair.
    groups:
        Channel groups; ``groups == C_in`` with ``C_out == C_in`` gives a
        depthwise convolution.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_per_group, kh, kw = weight.shape
    if c_in != c_in_per_group * groups:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in} channels but weight expects "
            f"{c_in_per_group * groups} (groups={groups})"
        )
    if c_out % groups:
        raise ValueError(f"c_out={c_out} not divisible by groups={groups}")

    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])
    c_out_per_group = c_out // groups

    cols = im2col(x.data, (kh, kw), stride, padding)  # (N, C_in*kh*kw, L)
    length = out_h * out_w

    if groups == 1:
        w_mat = weight.data.reshape(c_out, -1)  # (C_out, C_in*kh*kw)
        out = np.matmul(w_mat[None], cols)  # batched GEMM -> (N, C_out, L)
    else:
        cols_g = cols.reshape(n, groups, c_in_per_group * kh * kw, length)
        w_mat = weight.data.reshape(groups, c_out_per_group, -1)
        out = np.einsum("gok,ngkl->ngol", w_mat, cols_g, optimize=True)
        out = out.reshape(n, c_out, length)

    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    x_shape = x.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, c_out, length)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=(0, 2)))
        if groups == 1:
            if weight.requires_grad:
                grad_w = np.matmul(grad_flat, cols.transpose(0, 2, 1)).sum(axis=0)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                w_mat_local = weight.data.reshape(c_out, -1)
                grad_cols = np.matmul(w_mat_local.T[None], grad_flat)
                x._accumulate(col2im(grad_cols, x_shape, (kh, kw), stride, padding))
        else:
            grad_g = grad_flat.reshape(n, groups, c_out_per_group, length)
            cols_g_local = cols.reshape(n, groups, c_in_per_group * kh * kw, length)
            if weight.requires_grad:
                grad_w = np.einsum("ngol,ngkl->gok", grad_g, cols_g_local, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                w_mat_local = weight.data.reshape(groups, c_out_per_group, -1)
                grad_cols = np.einsum("gok,ngol->ngkl", w_mat_local, grad_g, optimize=True)
                grad_cols = grad_cols.reshape(n, c_in_per_group * groups * kh * kw, length)
                x._accumulate(col2im(grad_cols, x_shape, (kh, kw), stride, padding))

    return Tensor._make(out, parents, backward)


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D transposed convolution (a.k.a. deconvolution).

    The forward pass is exactly the data-gradient of :func:`conv2d`, so the
    implementation reuses ``col2im``; the backward pass reuses ``im2col``.
    Used by decoder networks (e.g. the LIRA-style trigger generator).

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_in, C_out, kH, kW)`` (PyTorch's transposed
        layout: the *input* channel leads).
    bias:
        Optional per-output-channel bias ``(C_out,)``.
    stride, padding:
        Stride/padding of the *corresponding forward convolution*: output
        spatial size is ``(H - 1) * stride - 2 * padding + kernel``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_in_w, c_out, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(
            f"conv_transpose2d channel mismatch: input has {c_in}, weight expects {c_in_w}"
        )
    out_h = (h - 1) * stride[0] - 2 * padding[0] + kh
    out_w = (w - 1) * stride[1] - 2 * padding[1] + kw
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"non-positive output size {(out_h, out_w)}")

    length = h * w
    # Treat x as the "gradient" flowing into a conv over the output image:
    # cols[n, c_out*kh*kw, l] = W^T @ x, then fold with col2im.
    w_mat = weight.data.reshape(c_in, c_out * kh * kw)  # (C_in, K)
    x_flat = x.data.reshape(n, c_in, length)
    cols = np.matmul(w_mat.T[None], x_flat)  # (N, C_out*kh*kw, L)
    out = col2im(cols, (n, c_out, out_h, out_w), (kh, kw), stride, padding)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    def backward(grad: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        grad_cols = im2col(grad, (kh, kw), stride, padding)  # (N, C_out*kh*kw, L)
        if weight.requires_grad:
            grad_w = np.matmul(x_flat, grad_cols.transpose(0, 2, 1)).sum(axis=0)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_x = np.matmul(w_mat[None], grad_cols)  # (N, C_in, L)
            x._accumulate(grad_x.reshape(n, c_in, h, w))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out.astype(x.data.dtype), parents, backward)


def max_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> Tensor:
    """Max pooling over (N, C, H, W)."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])

    data = x.data
    if padding[0] or padding[1]:
        data = np.pad(
            data,
            ((0, 0), (0, 0), (padding[0], padding[0]), (padding[1], padding[1])),
            constant_values=-np.inf,
        )
    strides = data.strides
    windows = np.lib.stride_tricks.as_strided(
        data,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride[0],
            strides[3] * stride[1],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kh * kw)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    x_shape = x.shape

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_padded = np.zeros(
            (n, c, h + 2 * padding[0], w + 2 * padding[1]), dtype=grad.dtype
        )
        ki, kj = np.unravel_index(arg, (kh, kw))
        oi = np.arange(out_h).reshape(1, 1, out_h, 1) * stride[0]
        oj = np.arange(out_w).reshape(1, 1, 1, out_w) * stride[1]
        rows = (oi + ki).reshape(n, c, -1)
        cols_idx = (oj + kj).reshape(n, c, -1)
        ni = np.arange(n).reshape(n, 1, 1)
        ci = np.arange(c).reshape(1, c, 1)
        np.add.at(grad_padded, (ni, ci, rows, cols_idx), grad.reshape(n, c, -1))
        if padding[0] or padding[1]:
            grad_padded = grad_padded[
                :, :, padding[0] : padding[0] + h, padding[1] : padding[1] + w
            ]
        x._accumulate(grad_padded.reshape(x_shape))

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


def avg_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> Tensor:
    """Average pooling over (N, C, H, W)."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])
    scale = 1.0 / (kh * kw)

    data = x.data
    if padding[0] or padding[1]:
        data = np.pad(data, ((0, 0), (0, 0), (padding[0], padding[0]), (padding[1], padding[1])))
    strides = data.strides
    windows = np.lib.stride_tricks.as_strided(
        data,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride[0],
            strides[3] * stride[1],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    out = windows.mean(axis=(-1, -2))
    x_shape = x.shape

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_padded = np.zeros((n, c, h + 2 * padding[0], w + 2 * padding[1]), dtype=grad.dtype)
        spread = grad * scale
        for i in range(kh):
            for j in range(kw):
                grad_padded[
                    :, :, i : i + stride[0] * out_h : stride[0], j : j + stride[1] * out_w : stride[1]
                ] += spread
        if padding[0] or padding[1]:
            grad_padded = grad_padded[
                :, :, padding[0] : padding[0] + h, padding[1] : padding[1] + w
            ]
        x._accumulate(grad_padded.reshape(x_shape))

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: IntPair = 1) -> Tensor:
    """Adaptive average pooling; only output sizes that evenly divide are supported."""
    oh, ow = _pair(output_size)
    _, _, h, w = x.shape
    if h % oh or w % ow:
        raise ValueError(f"adaptive_avg_pool2d requires divisible sizes, got {(h, w)} -> {(oh, ow)}")
    return avg_pool2d(x, kernel=(h // oh, w // ow))


def batch_norm2d_train(
    x: Tensor, weight: Tensor, bias: Tensor, eps: float
) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Fused training-mode batch norm over (N, C, H, W).

    Normalizes with batch statistics and returns ``(out, batch_mean,
    batch_var)`` so the layer can update its running buffers.  The backward
    pass uses the closed-form batch-norm gradient, which is several times
    faster than composing it from primitive autograd ops.
    """
    n, c, h, w = x.shape
    count = n * h * w
    mean = x.data.mean(axis=(0, 2, 3))
    var = x.data.var(axis=(0, 2, 3))
    inv_std = 1.0 / np.sqrt(var + eps)
    mean_b = mean.reshape(1, c, 1, 1)
    inv_b = inv_std.reshape(1, c, 1, 1)
    x_hat = (x.data - mean_b) * inv_b
    out = x_hat * weight.data.reshape(1, c, 1, 1) + bias.data.reshape(1, c, 1, 1)

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            gamma = weight.data.reshape(1, c, 1, 1)
            grad_xhat = grad * gamma
            sum_g = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
            sum_gx = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
            grad_x = inv_b / count * (count * grad_xhat - sum_g - x_hat * sum_gx)
            x._accumulate(grad_x.astype(x.data.dtype))

    result = Tensor._make(out.astype(x.data.dtype), (x, weight, bias), backward)
    return result, mean, var


def batch_norm2d_eval(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    eps: float,
) -> Tensor:
    """Fused eval-mode batch norm using stored running statistics."""
    c = x.shape[1]
    inv_std = (1.0 / np.sqrt(running_var + eps)).astype(x.data.dtype)
    scale = weight.data * inv_std
    shift = bias.data - running_mean * scale
    out = x.data * scale.reshape(1, c, 1, 1) + shift.reshape(1, c, 1, 1)
    x_data = x.data

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            x_hat = (x_data - running_mean.reshape(1, c, 1, 1)) * inv_std.reshape(1, c, 1, 1)
            weight._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            x._accumulate(grad * scale.reshape(1, c, 1, 1))

    return Tensor._make(out.astype(x.data.dtype), (x, weight, bias), backward)


def pad2d(x: Tensor, padding: IntPair) -> Tensor:
    """Zero-pad the spatial dimensions of (N, C, H, W)."""
    ph, pw = _pair(padding)
    out = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    _, _, h, w = x.shape

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad[:, :, ph : ph + h, pw : pw + w])

    return Tensor._make(out, (x,), backward)
