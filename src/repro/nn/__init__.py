"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

Provides reverse-mode autodiff (:class:`Tensor`), modules and layers,
losses, optimizers (including SAM), schedulers, and serialization.  This
replaces PyTorch in the reproduction; see DESIGN.md §2.
"""

from .tensor import Tensor, no_grad, is_grad_enabled
from .module import Module, ModuleList, Parameter, Sequential
from .layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Flatten,
    HardSigmoid,
    HardSwish,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    SiLU,
    Tanh,
)
from .losses import cross_entropy, kl_div_loss, mse_loss, nll_loss, soft_cross_entropy
from .optim import SGD, Adam, AdamW, Optimizer
from .sam import SAM
from .scheduler import CosineAnnealingLR, MultiStepLR, StepLR
from .serialization import CheckpointError, load_module, load_state, save_module, save_state
from . import functional
from . import engine
from .functional import Workspace, current_arena, fast_path_enabled, use_arena, workspace
from .inference import (
    CompiledInference,
    FoldChain,
    compile_for_inference,
    invalidate_compiled,
    trace_fold_chains,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Conv2d",
    "ConvTranspose2d",
    "Linear",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Dropout",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "SiLU",
    "HardSwish",
    "HardSigmoid",
    "Identity",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "kl_div_loss",
    "soft_cross_entropy",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "SAM",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "CheckpointError",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
    "functional",
    "engine",
    "Workspace",
    "workspace",
    "current_arena",
    "use_arena",
    "fast_path_enabled",
    "CompiledInference",
    "FoldChain",
    "compile_for_inference",
    "invalidate_compiled",
    "trace_fold_chains",
]
