"""Learning-rate schedulers."""

from __future__ import annotations

import math
from typing import List

from .optim import Optimizer

__all__ = ["StepLR", "CosineAnnealingLR", "MultiStepLR"]


class _Scheduler:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class MultiStepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: List[int], gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if self.epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * t / self.t_max))
