"""Reverse-mode automatic differentiation on numpy arrays.

This module provides :class:`Tensor`, the fundamental value type of the
``repro.nn`` substrate.  A :class:`Tensor` wraps a ``numpy.ndarray`` and
records, for every differentiable operation, a backward closure on a tape.
Calling :meth:`Tensor.backward` walks the tape in reverse topological order
and accumulates gradients into ``.grad``.

The engine is intentionally small but complete enough to train convolutional
classifiers: broadcasting-aware arithmetic, matmul, reductions, shape
manipulation, indexing, and the nonlinearities used by the model zoo.
Convolution and pooling live in :mod:`repro.nn.functional` but plug into the
same tape mechanism.

Example
-------
>>> import numpy as np
>>> from repro.nn.tensor import Tensor
>>> x = Tensor(np.ones((2, 3)), requires_grad=True)
>>> y = (x * 2.0 + 1.0).sum()
>>> y.backward()
>>> x.grad
array([[2., 2., 2.],
       [2., 2., 2.]], dtype=float32)
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

Scalar = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Scalar, Sequence]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient recording.

    Mirrors ``torch.no_grad``: inside the block, operations on tensors do not
    build the autograd tape, which saves memory and time during inference.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _as_array(value: TensorLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum leading dims added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum dims that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like initial value; converted to ``float32`` unless it is
        already a floating numpy array.
    requires_grad:
        When True, gradients flowing to this tensor are accumulated into
        ``.grad`` during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward_fn", "_parents", "name")

    def __init__(
        self,
        data: TensorLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if isinstance(data, np.floating):
            # 0-d array ops return numpy scalars; keep their precision.
            data = np.asarray(data)
        elif not isinstance(data, np.ndarray):
            data = np.asarray(data, dtype=np.float32)
        elif data.dtype not in (np.float32, np.float64):
            data = data.astype(np.float32)
        self.data: np.ndarray = data
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = requires_grad and _GRAD_ENABLED
        self._backward_fn = _backward_fn
        self._parents = _parents
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # order="C", not the astype default "K": incoming grads may be
            # transpose views (e.g. the engine conv backward's channels-last
            # col2im slab), and "K" would preserve that strided layout,
            # making every later read of .grad strided too.
            self.grad = grad.astype(self.data.dtype, order="C", copy=True)
        else:
            self.grad += grad

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear the accumulated gradient.

        ``set_to_none=False`` zeroes the existing ``.grad`` buffer in place
        instead of dropping it, so the next backward accumulates into the
        same (hot) memory rather than paying a fresh page-faulting
        allocation — the repeated-backward loops (per-round filter scoring,
        SAM's two backwards per step) use this.
        """
        if set_to_none or self.grad is None:
            self.grad = None
        else:
            self.grad.fill(0.0)

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ones for scalar outputs; required
            for non-scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar output; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op-result tensor, recording the tape edge when enabled."""
        parents = tuple(parents)
        needs_grad = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not needs_grad:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward_fn=backward_fn)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: TensorLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        return self + (-other)

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return Tensor(_as_array(other)) + (-self)

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        return self * other.pow(-1.0)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return Tensor(_as_array(other)) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        """Elementwise power with a constant exponent."""
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    __pow__ = pow

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self.pow(0.5)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clamp(self, min_value: Optional[float] = None, max_value: Optional[float] = None) -> "Tensor":
        """Clip values to ``[min_value, max_value]``; gradient is a pass-through mask."""
        out_data = np.clip(self.data, min_value, max_value)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = np.ones_like(self.data)
                if min_value is not None:
                    mask = mask * (self.data >= min_value)
                if max_value is not None:
                    mask = mask * (self.data <= max_value)
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._make(np.asarray(out_data), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu).pow(2.0)
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly across ties to keep the op well-defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._make(np.asarray(out_data), (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        """Flatten dimensions from ``start_dim`` onwards."""
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(np.ascontiguousarray(out_data), (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` with gradient routing."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(out_data, tensors, backward)

    # ------------------------------------------------------------------
    # Nonlinearities (kept here because they are single-input elementwise)
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        # The backward mask is derived lazily from ``self.data`` so no-grad
        # inference pays for exactly one allocation (the output).
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        out_data = np.where(self.data > 0.0, self.data, self.data * negative_slope)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                scale = np.where(self.data > 0.0, 1.0, negative_slope).astype(self.data.dtype)
                self._accumulate(grad * scale)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Two-branch form avoids exp overflow for large-magnitude inputs.
        x = self.data
        out_data = np.where(
            x >= 0,
            1.0 / (1.0 + np.exp(-np.abs(x))),
            np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))),
        ).astype(x.dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (self,), backward)

    def hard_sigmoid(self) -> "Tensor":
        """ReLU6(x + 3) / 6 — MobileNetV3's h-sigmoid."""
        out_data = np.clip(self.data + 3.0, 0.0, 6.0) / 6.0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = ((self.data > -3.0) & (self.data < 3.0)).astype(self.data.dtype) / 6.0
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def hard_swish(self) -> "Tensor":
        """x * h-sigmoid(x) — MobileNetV3's h-swish."""
        hsig = np.clip(self.data + 3.0, 0.0, 6.0) / 6.0
        out_data = self.data * hsig

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inner = ((self.data > -3.0) & (self.data < 3.0)).astype(self.data.dtype) / 6.0
                local = hsig + self.data * inner
                self._accumulate(grad * local)

        return Tensor._make(out_data, (self,), backward)

    def silu(self) -> "Tensor":
        """x * sigmoid(x) — the swish used by EfficientNet."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out_data = self.data * sig

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                local = sig * (1.0 + self.data * (1.0 - sig))
                self._accumulate(grad * local)

        return Tensor._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                softmax = np.exp(out_data)
                self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()

    # ------------------------------------------------------------------
    # Convenience predicates (non-differentiable)
    # ------------------------------------------------------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)
