"""Compile-for-inference pass: conv–BN folding over a traced model.

The pruning loop (paper §IV-B) is evaluation-bound: every round re-runs
eval-mode forward passes over the validation splits.  In eval mode a
``BatchNorm2d`` is an affine per-channel map ``y = x * scale + shift`` with

    scale = gamma / sqrt(running_var + eps)
    shift = beta - running_mean * scale

so whenever a convolution's output feeds *only* that batch norm, the map can
be folded into the convolution itself:

    W' = W * scale[:, None, None, None]        b' = shift + scale * b

eliminating one full output-sized elementwise pass per BN layer.

:class:`CompiledInference` discovers foldable (conv, bn) pairs by *tracing*
one forward pass — recording, per module call, the identity of its input and
output tensors — rather than by pattern-matching the module tree, so it is
correct for any ``forward`` control flow the models express.  A pair is
folded only when the BN is the sole traced consumer of the conv's output and
both modules run exactly once per forward.  Tracing finds folds that
structural conv→BN matching would miss: in a pre-activation ResNet block no
conv feeds "its own" BN, yet each block's first conv output is consumed
solely by the *next* BN (``conv2(bn2(conv1(x)).relu())``), which folds the
same way.  Models with no qualifying pairs compile to zero folds and still
benefit from the kernel-level fast path in :mod:`repro.nn.functional`.

Folded weights are cached and **invalidated automatically** when
``repro.models.pruning_utils`` mutates conv filters (prune/unprune/mask
re-application); the next call refolds from the live parameters.  Code that
mutates weights through other channels must call :func:`invalidate_compiled`
(or :meth:`CompiledInference.invalidate`) itself.

The original model is never left modified: folded tensors are swapped in
around each compiled call and restored in a ``finally`` block, so external
snapshots (state dicts, pruning saves) always observe the true parameters.

Set ``REPRO_DISABLE_FAST_PATH=1`` to make compiled models run the plain
reference forward, which bisects regressions between the kernel layer and
this orchestration layer.
"""

from __future__ import annotations

import weakref
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from .functional import fast_path_enabled
from .layers import BatchNorm2d, Conv2d
from .module import Module
from .tensor import Tensor, no_grad

__all__ = [
    "CompiledInference",
    "compile_for_inference",
    "trace_conv_bn_pairs",
    "fold_conv_bn_arrays",
    "invalidate_compiled",
]

# model -> weak set of CompiledInference instances whose folded caches track it.
_COMPILED: "weakref.WeakKeyDictionary[Module, weakref.WeakSet]" = weakref.WeakKeyDictionary()


def invalidate_compiled(model: Module) -> None:
    """Drop cached folded weights of every compiled view of ``model``.

    Called by the pruning utilities after any in-place filter mutation; safe
    to call for models that were never compiled.
    """
    for compiled in _COMPILED.get(model, ()):  # pragma: no branch
        compiled.invalidate()


def _register(model: Module, compiled: "CompiledInference") -> None:
    bucket = _COMPILED.get(model)
    if bucket is None:
        bucket = weakref.WeakSet()
        _COMPILED[model] = bucket
    bucket.add(compiled)


def trace_conv_bn_pairs(model: Module, example_input: Tensor) -> List[Tuple[Conv2d, BatchNorm2d]]:
    """Run one traced eval forward and return foldable (conv, bn) pairs.

    Every module's ``forward`` is temporarily wrapped to record the identity
    of its (single-tensor) input and output.  A pair qualifies when:

    - an eval-mode :class:`BatchNorm2d` consumed exactly the output tensor of
      a :class:`Conv2d`,
    - that tensor was consumed by no other traced module, and
    - both modules ran exactly once (weight-shared reuse is not foldable).

    The trace only sees *module* boundaries: a conv output that additionally
    feeds raw tensor arithmetic (e.g. a residual add) outside any module
    cannot be detected.  No architecture in the model zoo does this — conv
    outputs either go straight into a BN or the pattern is rejected because
    another module consumed the tensor first.
    """
    calls: List[Tuple[Module, Optional[int], Optional[Tensor]]] = []
    keep: List[Tuple[Optional[Tensor], object]] = []  # pin tensors so ids stay unique
    wrapped: List[Module] = []
    seen: set = set()
    for _, module in model.named_modules():
        if id(module) in seen:
            continue
        seen.add(id(module))
        original = module.forward

        def _make_wrapper(mod: Module, orig):
            def _wrapper(*args, **kwargs):
                out = orig(*args, **kwargs)
                inp = args[0] if args and isinstance(args[0], Tensor) else None
                calls.append(
                    (mod, id(inp) if inp is not None else None, out if isinstance(out, Tensor) else None)
                )
                keep.append((inp, out))
                return out

            return _wrapper

        module.forward = _make_wrapper(module, original)
        wrapped.append(module)

    try:
        with no_grad():
            model(example_input)
    finally:
        for module in wrapped:
            module.__dict__.pop("forward", None)

    call_counts = Counter(id(mod) for mod, _, _ in calls)
    consumers: Dict[int, List[Module]] = defaultdict(list)
    producers: Dict[int, Conv2d] = {}
    for mod, inp_id, out in calls:
        if inp_id is not None:
            consumers[inp_id].append(mod)
        if isinstance(mod, Conv2d) and out is not None:
            producers[id(out)] = mod

    pairs: List[Tuple[Conv2d, BatchNorm2d]] = []
    claimed: set = set()
    for mod, inp_id, _ in calls:
        if not isinstance(mod, BatchNorm2d) or mod.training or inp_id is None:
            continue
        conv = producers.get(inp_id)
        if conv is None:
            continue
        if call_counts[id(conv)] != 1 or call_counts[id(mod)] != 1:
            continue
        if len(consumers[inp_id]) != 1:
            continue
        if id(conv) in claimed or id(mod) in claimed:
            continue
        pairs.append((conv, mod))
        claimed.add(id(conv))
        claimed.add(id(mod))
    return pairs


def fold_conv_bn_arrays(
    conv: Conv2d, bn: BatchNorm2d
) -> Tuple[np.ndarray, np.ndarray]:
    """Folded ``(weight, bias)`` arrays for a conv followed by an eval BN."""
    inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
    scale = (bn.weight.data * inv_std).astype(conv.weight.data.dtype)
    weight = conv.weight.data * scale.reshape(-1, 1, 1, 1)
    # Store the folded weight physically in (kh, kw, C_in, C_out) unfold
    # order, exposed as a logical (C_out, C_in, kh, kw) transpose view: the
    # fast conv kernel then uses it as its GEMM operand without repacking.
    weight = np.ascontiguousarray(weight.transpose(2, 3, 1, 0)).transpose(3, 2, 0, 1)
    bias = bn.bias.data - bn.running_mean * scale
    if conv.bias is not None:
        bias = bias + scale * conv.bias.data
    return weight, bias.astype(weight.dtype)


class CompiledInference:
    """An inference-only view of a model with conv–BN pairs folded.

    Parameters
    ----------
    model:
        The model to compile.  It is put in eval mode (folding is meaningless
        under batch statistics) and traced once with ``example_input``.
    example_input:
        A representative input batch (a :class:`Tensor` or array); only its
        layout matters, a single sample suffices.

    Calling the compiled object runs the underlying model inside
    :class:`repro.nn.tensor.no_grad` with folded weights swapped in; the
    original parameters are restored before the call returns, even on error.
    Folded arrays are cached across calls and recomputed lazily after
    :meth:`invalidate` (triggered automatically by the pruning utilities).
    """

    def __init__(self, model: Module, example_input) -> None:
        if not isinstance(example_input, Tensor):
            example_input = Tensor(np.asarray(example_input, dtype=np.float32))
        self.model = model
        model.eval()
        self._pairs = trace_conv_bn_pairs(model, example_input)
        self._folded: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None
        self._stack: Optional[List[Tuple[np.ndarray, Optional[Tensor]]]] = None
        _register(model, self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_folded(self) -> int:
        """Number of conv–BN pairs folded by this compilation."""
        return len(self._pairs)

    @property
    def pairs(self) -> List[Tuple[Conv2d, BatchNorm2d]]:
        return list(self._pairs)

    def invalidate(self) -> None:
        """Forget cached folded weights; the next call refolds from live params."""
        self._folded = None

    # ------------------------------------------------------------------
    # Folding mechanics
    # ------------------------------------------------------------------
    def _ensure_folded(self) -> None:
        if self._folded is None:
            self._folded = [fold_conv_bn_arrays(conv, bn) for conv, bn in self._pairs]

    def _swap_in(self) -> None:
        stack: List[Tuple[np.ndarray, Optional[Tensor]]] = []
        for (conv, bn), (weight, bias) in zip(self._pairs, self._folded):
            stack.append((conv.weight.data, conv.bias))
            conv.weight.data = weight
            # A plain Tensor (not Parameter) dodges _parameters registration,
            # so state-dict keys are untouched while folded.
            object.__setattr__(conv, "bias", Tensor(bias))
            bn._folded_passthrough = True
        self._stack = stack

    def _swap_out(self) -> None:
        for (conv, bn), (weight_data, bias_obj) in zip(self._pairs, self._stack):
            conv.weight.data = weight_data
            object.__setattr__(conv, "bias", bias_obj)
            bn._folded_passthrough = False
        self._stack = None

    # ------------------------------------------------------------------
    # Model protocol
    # ------------------------------------------------------------------
    def __call__(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float32))
        if not self._pairs or not fast_path_enabled():
            with no_grad():
                return self.model(x)
        self._ensure_folded()
        self._swap_in()
        try:
            with no_grad():
                return self.model(x)
        finally:
            self._swap_out()

    def eval(self) -> "CompiledInference":
        """Keep the wrapped model in eval mode (mirrors the Module protocol)."""
        self.model.eval()
        return self

    def train(self, mode: bool = True) -> "CompiledInference":
        if mode:
            raise RuntimeError(
                "CompiledInference is eval-only; train the underlying model directly"
            )
        return self.eval()

    def __repr__(self) -> str:
        return f"CompiledInference(num_folded={self.num_folded}, model={type(self.model).__name__})"


def compile_for_inference(model: Module, example_input) -> CompiledInference:
    """Compile ``model`` for fast eval-mode inference (see :class:`CompiledInference`)."""
    return CompiledInference(model, example_input)
