"""Compile-for-inference pass: conv–BN folding over a traced model.

The pruning loop (paper §IV-B) is evaluation-bound: every round re-runs
eval-mode forward passes over the validation splits.  In eval mode a
``BatchNorm2d`` is an affine per-channel map ``y = x * scale + shift`` with

    scale = gamma / sqrt(running_var + eps)
    shift = beta - running_mean * scale

so whenever a convolution's output feeds *only* that batch norm, the map can
be folded into the convolution itself:

    W' = W * scale[:, None, None, None]        b' = shift + scale * b

eliminating one full output-sized elementwise pass per BN layer.

:class:`CompiledInference` discovers foldable (conv, bn) pairs by *tracing*
one forward pass — recording, per module call, the identity of its input and
output tensors — rather than by pattern-matching the module tree, so it is
correct for any ``forward`` control flow the models express.  A pair is
folded only when the BN is the sole traced consumer of the conv's output and
both modules run exactly once per forward.  Tracing finds folds that
structural conv→BN matching would miss: in a pre-activation ResNet block no
conv feeds "its own" BN, yet each block's first conv output is consumed
solely by the *next* BN (``conv2(bn2(conv1(x)).relu())``), which folds the
same way.  Models with no qualifying pairs compile to zero folds and still
benefit from the kernel-level fast path in :mod:`repro.nn.functional`.

When a folded BN's output feeds exactly one traced :class:`ReLU` module,
the activation is *fused* as well: the conv runs with ``activation="relu"``
so the tiled GEMM engine applies the BN affine (now the conv bias) and the
ReLU inside each output tile, and the ReLU module becomes a passthrough —
folded inference never materializes an un-activated intermediate.
Architectures that call the tensor-method ``.relu()`` (pre-activation
ResNets) fold without activation fusion, which is merely the PR 2 behavior.

Folded weights are cached and **invalidated automatically** when
``repro.models.pruning_utils`` mutates conv filters (prune/unprune/mask
re-application); the next call refolds from the live parameters.  Code that
mutates weights through other channels must call :func:`invalidate_compiled`
(or :meth:`CompiledInference.invalidate`) itself.

The original model is never left modified: folded tensors are swapped in
around each compiled call and restored in a ``finally`` block, so external
snapshots (state dicts, pruning saves) always observe the true parameters.

Set ``REPRO_DISABLE_FAST_PATH=1`` to make compiled models run the plain
reference forward, which bisects regressions between the kernel layer and
this orchestration layer.
"""

from __future__ import annotations

import weakref
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .engine import PlannedArena
from .functional import fast_path_enabled, use_arena
from .layers import BatchNorm2d, Conv2d, ReLU
from .module import Module
from .tensor import Tensor, no_grad

__all__ = [
    "CompiledInference",
    "FoldChain",
    "compile_for_inference",
    "trace_conv_bn_pairs",
    "trace_fold_chains",
    "fold_conv_bn_arrays",
    "invalidate_compiled",
]


@dataclass(frozen=True)
class FoldChain:
    """One traced conv→BN(→ReLU) chain eligible for folding.

    ``relu`` is the downstream :class:`ReLU` module when the BN's output is
    consumed by exactly one traced module, that module is a ReLU, and it
    runs once per forward — in which case the activation is fused into the
    convolution's GEMM epilogue and the ReLU becomes a passthrough while
    folded.  ``None`` when the activation is applied some other way (e.g.
    the tensor-method ``.relu()`` the pre-activation ResNets use, which the
    module-boundary trace cannot see).
    """

    conv: Conv2d
    bn: BatchNorm2d
    relu: Optional[ReLU] = None

# model -> weak set of CompiledInference instances whose folded caches track it.
_COMPILED: "weakref.WeakKeyDictionary[Module, weakref.WeakSet]" = weakref.WeakKeyDictionary()


def invalidate_compiled(model: Module) -> None:
    """Drop cached folded weights of every compiled view of ``model``.

    Called by the pruning utilities after any in-place filter mutation; safe
    to call for models that were never compiled.
    """
    for compiled in _COMPILED.get(model, ()):  # pragma: no branch
        compiled.invalidate()


def _register(model: Module, compiled: "CompiledInference") -> None:
    bucket = _COMPILED.get(model)
    if bucket is None:
        bucket = weakref.WeakSet()
        _COMPILED[model] = bucket
    bucket.add(compiled)


def trace_conv_bn_pairs(model: Module, example_input: Tensor) -> List[Tuple[Conv2d, BatchNorm2d]]:
    """Back-compat view of :func:`trace_fold_chains` as (conv, bn) pairs."""
    return [(chain.conv, chain.bn) for chain in trace_fold_chains(model, example_input)]


def trace_fold_chains(model: Module, example_input: Tensor) -> List[FoldChain]:
    """Run one traced eval forward and return foldable conv→BN(→ReLU) chains.

    Every module's ``forward`` is temporarily wrapped to record the identity
    of its (single-tensor) input and output.  A pair qualifies when:

    - an eval-mode :class:`BatchNorm2d` consumed exactly the output tensor of
      a :class:`Conv2d`,
    - that tensor was consumed by no other traced module, and
    - both modules ran exactly once (weight-shared reuse is not foldable).

    A qualifying pair is extended to a chain when the BN's own output is
    consumed by exactly one traced module, that module is a :class:`ReLU`,
    and it runs exactly once (a weight-shared ReLU reused across layers
    cannot be turned into a passthrough for just one of its call sites).

    The trace only sees *module* boundaries: a conv output that additionally
    feeds raw tensor arithmetic (e.g. a residual add) outside any module
    cannot be detected.  No architecture in the model zoo does this — conv
    outputs either go straight into a BN or the pattern is rejected because
    another module consumed the tensor first.
    """
    calls: List[Tuple[Module, Optional[int], Optional[Tensor]]] = []
    keep: List[Tuple[Optional[Tensor], object]] = []  # pin tensors so ids stay unique
    wrapped: List[Module] = []
    seen: set = set()
    for _, module in model.named_modules():
        if id(module) in seen:
            continue
        seen.add(id(module))
        original = module.forward

        def _make_wrapper(mod: Module, orig):
            def _wrapper(*args, **kwargs):
                out = orig(*args, **kwargs)
                inp = args[0] if args and isinstance(args[0], Tensor) else None
                calls.append(
                    (mod, id(inp) if inp is not None else None, out if isinstance(out, Tensor) else None)
                )
                keep.append((inp, out))
                return out

            return _wrapper

        module.forward = _make_wrapper(module, original)
        wrapped.append(module)

    try:
        with no_grad():
            model(example_input)
    finally:
        for module in wrapped:
            module.__dict__.pop("forward", None)

    call_counts = Counter(id(mod) for mod, _, _ in calls)
    consumers: Dict[int, List[Module]] = defaultdict(list)
    producers: Dict[int, Conv2d] = {}
    for mod, inp_id, out in calls:
        if inp_id is not None:
            consumers[inp_id].append(mod)
        if isinstance(mod, Conv2d) and out is not None:
            producers[id(out)] = mod

    chains: List[FoldChain] = []
    claimed: set = set()
    for mod, inp_id, out in calls:
        if not isinstance(mod, BatchNorm2d) or mod.training or inp_id is None:
            continue
        conv = producers.get(inp_id)
        if conv is None:
            continue
        if call_counts[id(conv)] != 1 or call_counts[id(mod)] != 1:
            continue
        if len(consumers[inp_id]) != 1:
            continue
        if id(conv) in claimed or id(mod) in claimed:
            continue
        relu: Optional[ReLU] = None
        if out is not None:
            bn_consumers = consumers.get(id(out), [])
            if (
                len(bn_consumers) == 1
                and isinstance(bn_consumers[0], ReLU)
                and call_counts[id(bn_consumers[0])] == 1
                and id(bn_consumers[0]) not in claimed
            ):
                relu = bn_consumers[0]
                claimed.add(id(relu))
        chains.append(FoldChain(conv, mod, relu))
        claimed.add(id(conv))
        claimed.add(id(mod))
    return chains


def fold_conv_bn_arrays(
    conv: Conv2d, bn: BatchNorm2d
) -> Tuple[np.ndarray, np.ndarray]:
    """Folded ``(weight, bias)`` arrays for a conv followed by an eval BN."""
    inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
    scale = (bn.weight.data * inv_std).astype(conv.weight.data.dtype)
    weight = conv.weight.data * scale.reshape(-1, 1, 1, 1)
    # Store the folded weight physically in (kh, kw, C_in, C_out) unfold
    # order, exposed as a logical (C_out, C_in, kh, kw) transpose view: the
    # fast conv kernel then uses it as its GEMM operand without repacking.
    weight = np.ascontiguousarray(weight.transpose(2, 3, 1, 0)).transpose(3, 2, 0, 1)
    bias = bn.bias.data - bn.running_mean * scale
    if conv.bias is not None:
        bias = bias + scale * conv.bias.data
    return weight, bias.astype(weight.dtype)


class CompiledInference:
    """An inference-only view of a model with conv–BN pairs folded.

    Parameters
    ----------
    model:
        The model to compile.  It is put in eval mode (folding is meaningless
        under batch statistics) and traced once with ``example_input``.
    example_input:
        A representative input batch (a :class:`Tensor` or array); only its
        layout matters, a single sample suffices.

    Calling the compiled object runs the underlying model inside
    :class:`repro.nn.tensor.no_grad` with folded weights swapped in; the
    original parameters are restored before the call returns, even on error.
    Folded arrays are cached across calls and recomputed lazily after
    :meth:`invalidate` (triggered automatically by the pruning utilities).
    """

    def __init__(self, model: Module, example_input) -> None:
        if not isinstance(example_input, Tensor):
            example_input = Tensor(np.asarray(example_input, dtype=np.float32))
        self.model = model
        model.eval()
        self._chains = trace_fold_chains(model, example_input)
        self._folded: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None
        self._stack: Optional[List[Tuple[np.ndarray, Optional[Tensor]]]] = None
        # Per-model scratch plan: the first call under each (shape, dtype)
        # records the fast path's allocation trace, then every later call
        # serves all conv intermediates from preallocated lifetime-shared
        # slabs (see repro.nn.engine.planner).
        self._arena = PlannedArena()
        _register(model, self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_folded(self) -> int:
        """Number of conv–BN pairs folded by this compilation."""
        return len(self._chains)

    @property
    def num_fused_activations(self) -> int:
        """Folded chains whose ReLU is fused into the conv GEMM epilogue."""
        return sum(1 for chain in self._chains if chain.relu is not None)

    @property
    def pairs(self) -> List[Tuple[Conv2d, BatchNorm2d]]:
        return [(chain.conv, chain.bn) for chain in self._chains]

    @property
    def chains(self) -> List[FoldChain]:
        return list(self._chains)

    def invalidate(self) -> None:
        """Forget cached folded weights; the next call refolds from live params."""
        self._folded = None

    # ------------------------------------------------------------------
    # Hot-swap preparation
    # ------------------------------------------------------------------
    def prefold(self) -> "CompiledInference":
        """Fold eagerly instead of on the first call.

        The serving gateway prepares a replacement checkpoint *off* the
        request path: folding here means the first post-swap batch pays no
        fold latency.
        """
        self._ensure_folded()
        return self

    def warmup(self, example_input) -> "CompiledInference":
        """Prefold and run one folded forward to trace the arena plan.

        After this, the first production batch of the same shape runs
        entirely from preplanned slabs.  The warmup output is discarded.
        """
        self.prefold()
        self(example_input)
        return self

    # ------------------------------------------------------------------
    # Folding mechanics
    # ------------------------------------------------------------------
    def _ensure_folded(self) -> None:
        if self._folded is None:
            self._folded = [
                fold_conv_bn_arrays(chain.conv, chain.bn) for chain in self._chains
            ]

    def _swap_in(self) -> None:
        stack: List[Tuple[np.ndarray, Optional[Tensor]]] = []
        for chain, (weight, bias) in zip(self._chains, self._folded):
            conv, bn = chain.conv, chain.bn
            stack.append((conv.weight.data, conv.bias))
            conv.weight.data = weight
            # A plain Tensor (not Parameter) dodges _parameters registration,
            # so state-dict keys are untouched while folded.
            object.__setattr__(conv, "bias", Tensor(bias))
            bn._folded_passthrough = True
            if chain.relu is not None:
                # ReLU runs inside the conv's GEMM tile loop; the module
                # becomes an identity so the activated output passes through.
                conv._fused_activation = "relu"
                chain.relu._folded_passthrough = True
        self._stack = stack

    def _swap_out(self) -> None:
        for chain, (weight_data, bias_obj) in zip(self._chains, self._stack):
            chain.conv.weight.data = weight_data
            object.__setattr__(chain.conv, "bias", bias_obj)
            chain.bn._folded_passthrough = False
            if chain.relu is not None:
                chain.conv._fused_activation = None
                chain.relu._folded_passthrough = False
        self._stack = None

    # ------------------------------------------------------------------
    # Model protocol
    # ------------------------------------------------------------------
    def __call__(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float32))
        if not self._chains or not fast_path_enabled():
            with no_grad():
                return self.model(x)
        self._ensure_folded()
        self._arena.begin((x.data.shape, x.data.dtype.str))
        self._swap_in()
        try:
            with use_arena(self._arena), no_grad():
                return self.model(x)
        finally:
            self._swap_out()
            self._arena.end()

    def eval(self) -> "CompiledInference":
        """Keep the wrapped model in eval mode (mirrors the Module protocol)."""
        self.model.eval()
        return self

    def train(self, mode: bool = True) -> "CompiledInference":
        if mode:
            raise RuntimeError(
                "CompiledInference is eval-only; train the underlying model directly"
            )
        return self.eval()

    def __repr__(self) -> str:
        return (
            f"CompiledInference(num_folded={self.num_folded}, "
            f"num_fused_activations={self.num_fused_activations}, "
            f"model={type(self.model).__name__})"
        )


def compile_for_inference(model: Module, example_input) -> CompiledInference:
    """Compile ``model`` for fast eval-mode inference (see :class:`CompiledInference`)."""
    return CompiledInference(model, example_input)
