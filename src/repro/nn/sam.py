"""Sharpness-aware minimization (SAM), the optimizer behind FT-SAM.

SAM (Foret et al., 2021) seeks parameters in flat loss regions by a two-step
update: (1) ascend to the adversarial point ``w + ρ·g/||g||`` within an
L2 ball, (2) compute the gradient there and apply the base optimizer update
at the original weights.  Zhu et al. (2023) showed fine-tuning a backdoored
model with SAM (FT-SAM) shrinks backdoor-related neuron weights far more
effectively than vanilla fine-tuning; we reproduce that baseline with this
wrapper.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

import numpy as np

from .module import Parameter
from .optim import Optimizer

__all__ = ["SAM"]


class SAM:
    """Wrap a base optimizer with sharpness-aware two-step updates.

    Usage::

        base = SGD(model.parameters(), lr=0.01, momentum=0.9)
        sam = SAM(model.parameters(), base, rho=0.05)

        loss = compute_loss()          # first forward/backward
        loss.backward()
        sam.first_step()               # perturb to the ascent point
        loss2 = compute_loss()         # second forward/backward at w + e(w)
        loss2.backward()
        sam.second_step()              # restore w, apply base update
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        base_optimizer: Optimizer,
        rho: float = 0.05,
        adaptive: bool = False,
    ) -> None:
        if rho < 0:
            raise ValueError(f"rho must be non-negative, got {rho}")
        self.params = list(params)
        self.base_optimizer = base_optimizer
        self.rho = rho
        self.adaptive = adaptive
        self._perturbation: Dict[int, np.ndarray] = {}

    def _grad_norm(self) -> float:
        total = 0.0
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.adaptive:
                grad = np.abs(param.data) * grad
            total += float((grad.astype(np.float64) ** 2).sum())
        return float(np.sqrt(total))

    def first_step(self, zero_grad: bool = True) -> None:
        """Move parameters to the ascent point within the ρ-ball."""
        norm = self._grad_norm()
        scale = self.rho / (norm + 1e-12)
        self._perturbation.clear()
        for param in self.params:
            if param.grad is None:
                continue
            step = param.grad * scale
            if self.adaptive:
                step = step * param.data * param.data
            self._perturbation[id(param)] = step
            param.data += step
        if zero_grad:
            for param in self.params:
                param.zero_grad(set_to_none=False)

    def second_step(self, zero_grad: bool = True) -> None:
        """Restore original weights and apply the base optimizer update."""
        for param in self.params:
            step = self._perturbation.get(id(param))
            if step is not None:
                param.data -= step
        self._perturbation.clear()
        self.base_optimizer.step()
        if zero_grad:
            for param in self.params:
                param.zero_grad(set_to_none=False)

    def step(self, closure: Callable[[], None]) -> None:
        """Full SAM step given a closure that re-runs forward+backward."""
        self.first_step(zero_grad=True)
        closure()
        self.second_step(zero_grad=True)
