"""Loss functions.

Cross-entropy is the workhorse: it drives clean training, attack poisoning,
every fine-tuning defense, and — with *correct* labels on *backdoor* inputs —
the paper's unlearning loss (Eq. 2).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .tensor import Tensor

__all__ = ["cross_entropy", "nll_loss", "mse_loss", "kl_div_loss", "soft_cross_entropy"]

Labels = Union[np.ndarray, Tensor]


def _label_array(targets: Labels) -> np.ndarray:
    if isinstance(targets, Tensor):
        targets = targets.data
    return np.asarray(targets).astype(np.int64).reshape(-1)


def cross_entropy(logits: Tensor, targets: Labels, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy with integer class targets.

    Parameters
    ----------
    logits:
        Unnormalized scores of shape ``(N, C)``.
    targets:
        Integer class indices of shape ``(N,)``.
    reduction:
        ``"mean"``, ``"sum"``, or ``"none"``.
    """
    labels = _label_array(targets)
    log_probs = logits.log_softmax(axis=-1)
    return nll_loss(log_probs, labels, reduction=reduction)


def nll_loss(log_probs: Tensor, targets: Labels, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood over log-probabilities."""
    labels = _label_array(targets)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), labels]
    loss = -picked
    if reduction == "none":
        return loss
    if reduction == "sum":
        return loss.sum()
    if reduction == "mean":
        return loss.mean()
    raise ValueError(f"unknown reduction {reduction!r}")


def soft_cross_entropy(logits: Tensor, soft_targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy against a full target distribution (used by NAD-style distillation)."""
    log_probs = logits.log_softmax(axis=-1)
    loss = -(log_probs * Tensor(np.asarray(soft_targets, dtype=np.float32))).sum(axis=-1)
    if reduction == "none":
        return loss
    if reduction == "sum":
        return loss.sum()
    return loss.mean()


def mse_loss(prediction: Tensor, target: Union[Tensor, np.ndarray], reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=np.float32))
    diff = (prediction - target_t).pow(2.0)
    if reduction == "none":
        return diff
    if reduction == "sum":
        return diff.sum()
    return diff.mean()


def kl_div_loss(student_log_probs: Tensor, teacher_probs: np.ndarray, reduction: str = "mean") -> Tensor:
    """KL(teacher || student) given student log-probs and teacher probs."""
    teacher = np.asarray(teacher_probs, dtype=np.float32)
    safe = np.clip(teacher, 1e-12, None)
    const = float((teacher * np.log(safe)).sum(axis=-1).mean()) if reduction == "mean" else 0.0
    cross = -(student_log_probs * Tensor(teacher)).sum(axis=-1)
    if reduction == "none":
        return cross
    if reduction == "sum":
        return cross.sum()
    return cross.mean() + const
