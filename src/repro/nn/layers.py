"""Neural-network layers built on the autograd engine.

Contains the layer set required by the model zoo: convolutions (standard,
grouped, depthwise), linear, batch normalization, pooling, dropout, and the
activation modules used across PreactResNet / VGG / EfficientNet /
MobileNetV3.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Conv2d",
    "ConvTranspose2d",
    "Linear",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Dropout",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "SiLU",
    "HardSwish",
    "HardSigmoid",
    "Identity",
]

IntPair = Union[int, Tuple[int, int]]

_DEFAULT_RNG = np.random.default_rng(0)


class Conv2d(Module):
    """2-D convolution layer.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts. ``groups == in_channels == out_channels`` yields a
        depthwise convolution.
    kernel_size, stride, padding:
        Int or (h, w) pairs.
    bias:
        Whether to learn a per-channel additive bias.
    rng:
        Generator for deterministic initialization.
    """

    # Set by repro.nn.inference while a traced conv→BN→ReLU chain is folded:
    # the activation is applied inside the conv's GEMM tile loop and the
    # downstream ReLU module becomes a passthrough.
    _fused_activation: Optional[str] = None

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        groups: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else _DEFAULT_RNG
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        if in_channels % groups:
            raise ValueError(f"in_channels={in_channels} not divisible by groups={groups}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels // groups, kh, kw), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
            activation=self._fused_activation,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, groups={self.groups})"
        )


class ConvTranspose2d(Module):
    """2-D transposed convolution layer (decoder upsampling).

    Weight layout ``(in_channels, out_channels, kH, kW)``; output spatial
    size is ``(H - 1) * stride - 2 * padding + kernel``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else _DEFAULT_RNG
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(init.kaiming_normal((in_channels, out_channels, kh, kw), rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"ConvTranspose2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride})"
        )


class Linear(Module):
    """Fully connected layer: ``y = x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else _DEFAULT_RNG
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Batch normalization over (N, C, H, W) with running statistics.

    In training mode, normalizes with batch statistics and updates running
    mean/var via exponential moving average; in eval mode, uses the stored
    running statistics (critical for the defense protocol, where pruning and
    scoring run in eval mode on tiny batches).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))
        # Set by repro.nn.inference while this layer's scale/shift are folded
        # into the preceding convolution; the layer then acts as identity.
        self._folded_passthrough = False

    def forward(self, x: Tensor) -> Tensor:
        if self._folded_passthrough and not self.training:
            return x
        if self.training:
            out, batch_mean, batch_var = F.batch_norm2d_train(x, self.weight, self.bias, self.eps)
            count = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
            unbiased = batch_var * count / max(count - 1, 1)
            new_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            new_var = (1 - self.momentum) * self.running_var + self.momentum * unbiased
            self._update_buffer("running_mean", new_mean.astype(np.float32))
            self._update_buffer("running_var", new_var.astype(np.float32))
            return out
        return F.batch_norm2d_eval(
            x, self.weight, self.bias, self.running_mean, self.running_var, self.eps
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class MaxPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:
        return f"MaxPool2d({self.kernel_size})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: IntPair = 1) -> None:
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else _DEFAULT_RNG

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Flatten(Module):
    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=self.start_dim)


class ReLU(Module):
    # Set by repro.nn.inference while this activation is fused into the
    # preceding convolution's GEMM epilogue; the module then acts as identity.
    _folded_passthrough: bool = False

    def forward(self, x: Tensor) -> Tensor:
        if self._folded_passthrough and not self.training:
            return x
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class SiLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.silu()


class HardSwish(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.hard_swish()


class HardSigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.hard_sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
