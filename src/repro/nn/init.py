"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is fully deterministic given a seed — a requirement for the
five-trial evaluation protocol of the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # Conv: (out, in/groups, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-normal initialization, the default for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-uniform initialization."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialization, used for the final classifier layers."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
