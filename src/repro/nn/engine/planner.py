"""Static memory planner: named, lifetime-disjoint scratch slabs.

The PR 2 :class:`repro.nn.functional.Workspace` recycles one growable slab
per tag, discovering sizes dynamically as ops request buffers.  The planner
generalizes that arena into a *plan*: one recorded trace of ``get``/
``release`` events per ``(input shape, dtype)`` signature is compiled into a
set of slabs where tags whose live ranges never overlap share storage (a
padded-input buffer that dies before the weight-packing buffer is born can
occupy the same bytes).  After the recording pass every allocation in a
compiled forward is a constant-time view into a preallocated slab — no
growth checks, no fresh page-faulting allocations mid-run.

Live ranges come from explicit lifetime marks: each ``get(tag, ...)`` opens
an interval, and the interval closes at ``release(tag)`` (the fast-path
kernels mark their intermediates dead as soon as the consuming GEMM has
read them) or at the tag's next ``get``, whichever comes first.  An
unreleased tag stays live to the end of the trace.  Slab assignment is
greedy interval-graph coloring over tag conflict: two tags may share a slab
iff no live range of one overlaps a live range of the other; a shared
slab's size is the maximum any of its tags ever requested.

:class:`PlannedArena` is a drop-in for :class:`Workspace` (same ``get`` /
``release`` / ``clear`` surface).  Requests outside the plan — unknown
tags, or a request larger than recorded (e.g. an odd-sized tail batch) —
fall back to a dynamic side arena, so a stale plan degrades to PR 2
behavior rather than failing.

``allocator`` abstracts where slab bytes live: the default is private
``np.empty`` memory; the tiled engine passes a shared-memory allocator so
planned slabs are visible to its worker processes by name.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

__all__ = [
    "SlabRequest",
    "MemoryPlan",
    "PlannedArena",
    "plan_slabs",
]


@dataclass(frozen=True)
class SlabRequest:
    """One recorded live range of a tagged scratch buffer."""

    tag: str
    nbytes: int
    start: int
    end: int  # exclusive; requests with start <= t < end are live at step t

    def overlaps(self, other: "SlabRequest") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass
class MemoryPlan:
    """Tag → slab assignment plus per-slab sizes, from one recorded trace."""

    slab_sizes: List[int] = field(default_factory=list)
    assignment: Dict[str, int] = field(default_factory=dict)
    tag_nbytes: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.slab_sizes)

    @property
    def shared_bytes_saved(self) -> int:
        """Bytes the plan avoids versus giving every tag its own slab."""
        return sum(self.tag_nbytes.values()) - self.total_bytes


def plan_slabs(requests: List[SlabRequest]) -> MemoryPlan:
    """Greedy interval-coloring of tag live ranges into shared slabs.

    Tags are colored in decreasing order of their peak request size so large
    tags claim slabs first and smaller disjoint tags pack into them for
    free.  Deterministic for a given request list.
    """
    by_tag: Dict[str, List[SlabRequest]] = {}
    peak: Dict[str, int] = {}
    for req in requests:
        by_tag.setdefault(req.tag, []).append(req)
        peak[req.tag] = max(peak.get(req.tag, 0), req.nbytes)

    def conflicts(tag_a: str, tag_b: str) -> bool:
        return any(
            ra.overlaps(rb) for ra in by_tag[tag_a] for rb in by_tag[tag_b]
        )

    plan = MemoryPlan(tag_nbytes=dict(peak))
    slab_tags: List[List[str]] = []
    for tag in sorted(peak, key=lambda t: (-peak[t], t)):
        placed = False
        for slab_id, members in enumerate(slab_tags):
            if not any(conflicts(tag, member) for member in members):
                members.append(tag)
                plan.assignment[tag] = slab_id
                plan.slab_sizes[slab_id] = max(plan.slab_sizes[slab_id], peak[tag])
                placed = True
                break
        if not placed:
            plan.assignment[tag] = len(slab_tags)
            slab_tags.append([tag])
            plan.slab_sizes.append(peak[tag])
    return plan


Allocator = Callable[[int], np.ndarray]


def _default_allocator(nbytes: int) -> np.ndarray:
    return np.empty(nbytes, dtype=np.uint8)


class PlannedArena:
    """Workspace-compatible arena that compiles traces into static plans.

    One plan is kept per ``begin(signature)`` key.  The first pass under a
    new signature records events and serves requests from the dynamic
    fallback arena; ``end()`` compiles the recording into a
    :class:`MemoryPlan` and allocates its slabs.  Subsequent passes under
    the same signature serve every planned request as a view into the
    preallocated slabs.
    """

    def __init__(self, allocator: Optional[Allocator] = None) -> None:
        from ..functional import Workspace  # deferred: functional imports engine

        self._allocator = allocator or _default_allocator
        self._fallback = Workspace()
        self._plans: Dict[Hashable, MemoryPlan] = {}
        self._slabs: Dict[Hashable, List[np.ndarray]] = {}
        self._signature: Optional[Hashable] = None
        self._recording: Optional[List[Tuple[str, str, int]]] = None
        _all_arenas.add(self)

    # ------------------------------------------------------------------
    # Trace lifecycle
    # ------------------------------------------------------------------
    def begin(self, signature: Hashable) -> None:
        """Enter a trace: planned mode if ``signature`` was seen, else record."""
        self._signature = signature
        self._recording = None if signature in self._plans else []

    def end(self) -> None:
        """Leave the trace; compiles and allocates the plan after a recording."""
        if self._recording is not None and self._signature is not None:
            plan = plan_slabs(_events_to_requests(self._recording))
            self._plans[self._signature] = plan
            self._slabs[self._signature] = [
                self._allocator(size) for size in plan.slab_sizes
            ]
        self._signature = None
        self._recording = None

    def plan_for(self, signature: Hashable) -> Optional[MemoryPlan]:
        return self._plans.get(signature)

    # ------------------------------------------------------------------
    # Workspace protocol
    # ------------------------------------------------------------------
    def get(self, tag: str, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if self._recording is not None:
            self._recording.append(("get", tag, nbytes))
            return self._fallback.get(tag, shape, dtype)
        plan = self._plans.get(self._signature)
        if plan is not None:
            slab_id = plan.assignment.get(tag)
            if slab_id is not None:
                slab = self._slabs[self._signature][slab_id]
                if nbytes <= slab.nbytes:
                    return slab[:nbytes].view(dtype).reshape(shape)
        return self._fallback.get(tag, shape, dtype)

    def release(self, tag: str) -> None:
        """Mark ``tag``'s current buffer dead (closes its live range)."""
        if self._recording is not None:
            self._recording.append(("release", tag, 0))

    def clear(self) -> None:
        """Drop all plans, slabs, and fallback buffers."""
        self._plans.clear()
        self._slabs.clear()
        self._fallback.clear()
        self._signature = None
        self._recording = None

    def __len__(self) -> int:
        return sum(len(slabs) for slabs in self._slabs.values()) + len(self._fallback)

    @property
    def nbytes(self) -> int:
        planned = sum(
            slab.nbytes for slabs in self._slabs.values() for slab in slabs
        )
        return planned + self._fallback.nbytes


def _events_to_requests(events: List[Tuple[str, str, int]]) -> List[SlabRequest]:
    """Convert a get/release event stream into closed live ranges."""
    requests: List[SlabRequest] = []
    open_ranges: Dict[str, Tuple[int, int]] = {}  # tag -> (start, nbytes)
    for step, (kind, tag, nbytes) in enumerate(events):
        if kind == "get":
            if tag in open_ranges:
                start, size = open_ranges.pop(tag)
                requests.append(SlabRequest(tag, size, start, step))
            open_ranges[tag] = (step, nbytes)
        elif tag in open_ranges:  # release
            start, size = open_ranges.pop(tag)
            requests.append(SlabRequest(tag, size, start, step + 1))
    horizon = len(events) + 1
    for tag, (start, size) in open_ranges.items():
        requests.append(SlabRequest(tag, size, start, horizon))
    return requests


# Every live arena, so the fork hook can wipe child copies in one sweep.
_all_arenas: "weakref.WeakSet[PlannedArena]" = weakref.WeakSet()


def clear_all_arenas() -> None:
    """Drop every :class:`PlannedArena`'s buffers (used by the fork hook)."""
    for arena in list(_all_arenas):
        arena.clear()
