"""Persistent tile-worker pools for the tiled GEMM engine.

Two interchangeable backends execute a list of GEMM tiles:

:class:`ProcessTilePool`
    ``fork``-started worker processes fed through multiprocessing queues.
    Operands and the output live in named ``multiprocessing.shared_memory``
    slabs; a task carries only slab *references* (name, shape, dtype), and
    each worker attaches once per slab name and computes its tile through a
    buffer-protocol view — ``out[m0:m1, n0:n1] = a[m0:m1] @ b[:, n0:n1]``
    plus the fused bias/ReLU epilogue — writing directly into the shared
    output slab.  This sidesteps the GIL entirely and keeps per-task
    traffic to a few hundred bytes.

:class:`ThreadTilePool`
    Plain daemon threads.  BLAS releases the GIL inside ``np.matmul`` and
    numpy releases it in the epilogue ufunc loops, so threads scale for the
    GEMM-dominated workload while avoiding shared-memory staging copies.
    Used when ``fork`` is unavailable (or forced via
    ``REPRO_ENGINE_BACKEND=thread``).

Both pools are *persistent*: created lazily on the first multi-tile
dispatch and reused across calls.  All teardown paths are pid-guarded so a
forked child that inherits a pool object can never join threads it does not
own or unlink shared memory its parent is still using.
"""

from __future__ import annotations

import atexit
import os
import queue
import threading
import traceback
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "fork_available",
    "SharedSlabs",
    "ThreadTilePool",
    "ProcessTilePool",
]

# (shm_name, shape, dtype_str) — how tasks reference a shared slab.
SlabRef = Tuple[str, Tuple[int, ...], str]


def fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _disable_shm_tracking() -> None:
    """Stop this worker's resource tracker from registering shared memory.

    Workers only *attach* to slabs the parent owns, but Python <3.13
    registers attached segments too (bpo-39959): an exiting worker would
    unlink slabs the parent still uses, and unregister-after-attach races
    other workers in the shared tracker process.  Patching ``register`` out
    in the worker keeps the parent's register/unlink pairing exact.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register = lambda *args, **kwargs: None
    except Exception:
        pass


class SharedSlabs:
    """Parent-side registry of named, growable shared-memory slabs.

    ``stage`` copies an array into its tag's slab (reallocating a larger
    slab under a fresh name when needed — workers cache attachments by
    name, so names are never reused at a different size) and returns the
    slab-backed view plus the reference to ship to workers.
    """

    def __init__(self) -> None:
        self._slabs: Dict[str, shared_memory.SharedMemory] = {}
        self._pid = os.getpid()

    def _slab_for(self, tag: str, nbytes: int) -> shared_memory.SharedMemory:
        slab = self._slabs.get(tag)
        if slab is None or slab.size < nbytes:
            if slab is not None:
                slab.close()
                slab.unlink()
            slab = shared_memory.SharedMemory(create=True, size=nbytes)
            self._slabs[tag] = slab
        return slab

    def empty(self, tag: str, shape: Tuple[int, ...], dtype) -> Tuple[np.ndarray, SlabRef]:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        slab = self._slab_for(tag, nbytes)
        view = np.ndarray(shape, dtype=dtype, buffer=slab.buf)
        return view, (slab.name, tuple(shape), dtype.str)

    def stage(self, tag: str, array: np.ndarray) -> Tuple[np.ndarray, SlabRef]:
        view, ref = self.empty(tag, array.shape, array.dtype)
        np.copyto(view, array)
        return view, ref

    def close(self) -> None:
        if os.getpid() != self._pid:  # forked copy: slabs belong to the parent
            self._slabs.clear()
            return
        for slab in self._slabs.values():
            slab.close()
            try:
                slab.unlink()
            except FileNotFoundError:
                pass
        self._slabs.clear()

    @property
    def nbytes(self) -> int:
        return sum(slab.size for slab in self._slabs.values())


class ThreadTilePool:
    """Persistent daemon threads running submitted ``fn(*args)`` jobs."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads = [
            threading.Thread(target=self._loop, daemon=True, name=f"repro-tile-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _loop(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            fn, args, done = item
            try:
                fn(*args)
                done.put(None)
            except BaseException:
                done.put(traceback.format_exc())

    def run(self, fn: Callable, argtuples: Sequence[tuple]) -> None:
        """Run every job; raises if any job failed."""
        done: "queue.SimpleQueue" = queue.SimpleQueue()
        for args in argtuples:
            self._tasks.put((fn, args, done))
        failures = [err for _ in argtuples if (err := done.get()) is not None]
        if failures:
            raise RuntimeError(f"tile worker failed:\n{failures[0]}")

    def shutdown(self) -> None:
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads = []


# A process task is a tagged tuple.  Two kinds exist:
#
# ("mm", a_ref, b_ref, out_ref, m0, m1, n0, n1, bias_bytes | None, activation | None)
#     Output-tiled ``a @ b``: each worker owns a disjoint (M, N) tile of the
#     shared output slab.
# ("tn", a_ref, b_ref, parts_ref, slot, r0, r1)
#     Reduction-split ``a.T @ b``: each worker computes the partial product
#     of its chunk of the shared reduction dimension R into its own slot of
#     the (chunks, M, N) partials slab; the parent sums the slots.  Used by
#     backward dW GEMMs whose output is too small to tile but whose
#     reduction (N*L) is large.
_Task = Tuple


def _attach(ref: SlabRef, cache: Dict[str, shared_memory.SharedMemory]) -> np.ndarray:
    name, shape, dtype = ref
    shm = cache.get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        cache[name] = shm
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


def _run_tile(task: _Task, cache: Dict[str, shared_memory.SharedMemory]) -> None:
    kind = task[0]
    if kind == "tn":
        _, a_ref, b_ref, parts_ref, slot, r0, r1 = task
        a = _attach(a_ref, cache)
        b = _attach(b_ref, cache)
        parts = _attach(parts_ref, cache)
        np.matmul(a[r0:r1].T, b[r0:r1], out=parts[slot])
        return
    _, a_ref, b_ref, out_ref, m0, m1, n0, n1, bias_bytes, activation = task
    a = _attach(a_ref, cache)
    b = _attach(b_ref, cache)
    out = _attach(out_ref, cache)
    sub = out[m0:m1, n0:n1]
    np.matmul(a[m0:m1], b[:, n0:n1], out=sub)
    if bias_bytes is not None:
        bias = np.frombuffer(bias_bytes, dtype=out.dtype)
        sub += bias[n0:n1]
    if activation == "relu":
        np.maximum(sub, 0.0, out=sub)


def _process_worker(task_q, done_q) -> None:
    _disable_shm_tracking()
    cache: Dict[str, shared_memory.SharedMemory] = {}
    while True:
        task = task_q.get()
        if task is None:
            break
        try:
            _run_tile(task, cache)
            done_q.put(None)
        except BaseException:
            done_q.put(traceback.format_exc())
    for shm in cache.values():
        shm.close()


class ProcessTilePool:
    """Persistent fork-started workers computing tiles in shared memory."""

    def __init__(self, workers: int, join_timeout: float = 60.0) -> None:
        import multiprocessing

        if not fork_available():
            raise RuntimeError("ProcessTilePool requires the fork start method")
        ctx = multiprocessing.get_context("fork")
        self.workers = workers
        self.join_timeout = join_timeout
        self._pid = os.getpid()
        self._task_q = ctx.Queue()
        self._done_q = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_process_worker,
                args=(self._task_q, self._done_q),
                daemon=True,
                name=f"repro-tile-{i}",
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        atexit.register(self.shutdown)

    def run(self, tasks: Sequence[_Task]) -> None:
        """Dispatch tiles and block until all complete; raises on failure."""
        for task in tasks:
            self._task_q.put(task)
        pending = len(tasks)
        failures: List[str] = []
        while pending:
            try:
                err = self._done_q.get(timeout=self.join_timeout)
            except queue.Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                raise RuntimeError(
                    f"tile pool stalled waiting for {pending} tiles"
                    + (f"; dead workers: {dead}" if dead else "")
                ) from None
            pending -= 1
            if err is not None:
                failures.append(err)
        if failures:
            raise RuntimeError(f"tile worker failed:\n{failures[0]}")

    def alive(self) -> bool:
        return bool(self._procs) and all(p.is_alive() for p in self._procs)

    def shutdown(self) -> None:
        if os.getpid() != self._pid:  # inherited by a forked child: not ours
            self._procs = []
            return
        try:
            atexit.unregister(self.shutdown)
        except Exception:
            pass
        for _ in self._procs:
            try:
                self._task_q.put(None)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        for q in (self._task_q, self._done_q):
            try:
                q.close()
                q.join_thread()
            except Exception:
                pass
