"""``repro.nn.engine`` — multicore tiled GEMM execution layer.

Splits the inference fast path's im2col GEMMs into cache-blocked tiles,
dispatches them to a persistent worker pool (fork + shared memory, with a
thread fallback), fuses the conv→BN→ReLU epilogue into the tile loop, and
plans scratch memory statically per traced shape.  See DESIGN.md §10.
"""

from .gemm import (
    BACKEND_ENV,
    WORKERS_ENV,
    TiledGemmEngine,
    engine,
    reset_engine,
    resolve_backend,
    resolve_workers,
)
from .planner import MemoryPlan, PlannedArena, SlabRequest, clear_all_arenas, plan_slabs
from .pool import ProcessTilePool, SharedSlabs, ThreadTilePool, fork_available
from .tiler import TILE_ENV, cache_sizes, choose_tile_shape, tile_grid
from .training import train_step_arena, training_step

__all__ = [
    "BACKEND_ENV",
    "TILE_ENV",
    "WORKERS_ENV",
    "MemoryPlan",
    "PlannedArena",
    "ProcessTilePool",
    "SharedSlabs",
    "SlabRequest",
    "ThreadTilePool",
    "TiledGemmEngine",
    "cache_sizes",
    "choose_tile_shape",
    "clear_all_arenas",
    "engine",
    "fork_available",
    "plan_slabs",
    "reset_engine",
    "resolve_backend",
    "resolve_workers",
    "tile_grid",
    "train_step_arena",
    "training_step",
]
