"""Cache-blocked tiled GEMM executor with a fused epilogue.

:class:`TiledGemmEngine` is the execution layer under the inference fast
path.  Given the im2col operand ``a = (M, K)`` and packed weights
``b = (K, N)`` it computes ``a @ b`` plus an optional fused epilogue —
per-column bias add (which, after conv–BN folding, *is* the batch-norm
affine) and ReLU — without ever materializing an un-activated
intermediate:

- small problems (or ``workers == 1``) run inline as the single BLAS GEMM
  the PR 2 fast path already issued, bounding the 1-core overhead of this
  layer to a couple of dict lookups;
- large problems are split into cache-blocked (M, N) tiles (see
  :mod:`repro.nn.engine.tiler`) and dispatched to a persistent worker pool
  (:mod:`repro.nn.engine.pool`): fork+shared-memory processes by default,
  threads when ``fork`` is unavailable or forced.

Environment knobs (consulted on every call so tests can flip them live):

``REPRO_ENGINE_WORKERS``
    Worker count; default ``min(os.cpu_count(), 8)``.  ``1`` disables
    tiling entirely.
``REPRO_ENGINE_BACKEND``
    ``process`` | ``thread`` | ``auto`` (default: process when ``fork``
    exists).
``REPRO_ENGINE_TILE``
    Tile-shape override, e.g. ``256`` or ``256x128``.

The engine is a process-wide singleton (:func:`engine`); pools and shared
slabs are created lazily, persist across calls, and are re-created when the
requested (workers, backend) pair changes.  A fork hook in
:mod:`repro.nn.functional` resets the child's copy so orchestrator workers
never talk to a pool they do not own.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .pool import ProcessTilePool, SharedSlabs, ThreadTilePool, fork_available
from .tiler import MIN_PARALLEL_FLOPS, choose_tile_shape, tile_grid

__all__ = [
    "WORKERS_ENV",
    "BACKEND_ENV",
    "TiledGemmEngine",
    "engine",
    "reset_engine",
    "resolve_workers",
    "resolve_backend",
]

WORKERS_ENV = "REPRO_ENGINE_WORKERS"
BACKEND_ENV = "REPRO_ENGINE_BACKEND"

# More workers than this oversubscribes the BLAS-threaded GEMM on big boxes.
_MAX_DEFAULT_WORKERS = 8

# Reduction-split dispatch gives each worker at least this many rows of the
# shared R dimension; shorter chunks cost more in partial-buffer traffic and
# the parent-side reduce than the GEMM they offload.
_MIN_REDUCTION_ROWS = 64


# os.cpu_count() is a syscall and the training path resolves workers on
# every backward GEMM; the count cannot change within a process.
_CPU_COUNT = os.cpu_count() or 1


def resolve_workers() -> int:
    """Worker count from ``REPRO_ENGINE_WORKERS``, default cpu-count capped."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(f"{WORKERS_ENV} must be an integer, got {raw!r}") from None
    return max(1, min(_CPU_COUNT, _MAX_DEFAULT_WORKERS))


def resolve_backend() -> str:
    """Pool backend: ``process`` (fork + shared memory) or ``thread``."""
    raw = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    if raw not in ("auto", "process", "thread"):
        raise ValueError(f"{BACKEND_ENV} must be auto|process|thread, got {raw!r}")
    if raw == "auto":
        return "process" if fork_available() else "thread"
    if raw == "process" and not fork_available():
        return "thread"
    return raw


def _thread_tile(a, b, out, bias, activation, m0, m1, n0, n1) -> None:
    sub = out[m0:m1, n0:n1]
    np.matmul(a[m0:m1], b[:, n0:n1], out=sub)
    if bias is not None:
        sub += bias[n0:n1]
    if activation == "relu":
        np.maximum(sub, 0.0, out=sub)


def _thread_tile_tn(a, b, parts, slot, r0, r1) -> None:
    np.matmul(a[r0:r1].T, b[r0:r1], out=parts[slot])


def _reduction_chunks(r: int, chunks: int):
    """Split ``range(r)`` into ``chunks`` near-equal contiguous spans."""
    bounds = np.linspace(0, r, chunks + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(chunks)]


class TiledGemmEngine:
    """Tiled GEMM + fused epilogue over a persistent worker pool."""

    def __init__(self) -> None:
        self._pool: Optional[Union[ThreadTilePool, ProcessTilePool]] = None
        self._pool_key: Optional[Tuple[str, int]] = None
        self._slabs: Optional[SharedSlabs] = None
        self._parts_scratch: Optional[np.ndarray] = None
        # Telemetry of the most recent execute(): how the work was split.
        self.last: Dict[str, object] = {}
        # Cumulative since construction (or forked-child reset): long-lived
        # callers — the serving gateway's stats endpoint, soak benches —
        # read these to see how much work actually tiled out.
        self.totals: Dict[str, int] = {"calls": 0, "inline_calls": 0, "tiled_calls": 0, "tiles": 0}

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self, backend: str, workers: int):
        key = (backend, workers)
        if self._pool is not None and self._pool_key == key:
            if backend != "process" or self._pool.alive():
                return self._pool
        self.shutdown()
        if backend == "process":
            self._pool = ProcessTilePool(workers)
            self._slabs = SharedSlabs()
        else:
            self._pool = ThreadTilePool(workers)
        self._pool_key = key
        return self._pool

    def shutdown(self) -> None:
        """Stop the pool and release shared slabs (safe to call anytime)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_key = None
        if self._slabs is not None:
            self._slabs.close()
            self._slabs = None
        self._parts_scratch = None

    def forget_inherited_state(self) -> None:
        """Drop pool/slab handles without teardown (forked-child hook).

        The child's handles point at resources owned by the parent; closing
        them here would tear the parent's pool down underneath it.
        """
        self._pool = None
        self._pool_key = None
        if self._slabs is not None:
            self._slabs.close()  # pid-guarded: only clears the dict in a child
            self._slabs = None
        self._parts_scratch = None
        self.last = {}
        self.totals = {"calls": 0, "inline_calls": 0, "tiled_calls": 0, "tiles": 0}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        bias: Optional[np.ndarray] = None,
        activation: Optional[str] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``a @ b`` with the bias/activation epilogue fused into each tile.

        ``a`` is ``(M, K)``, ``b`` is ``(K, N)``, ``bias`` broadcasts over
        rows as ``(N,)``.  Returns ``out`` (allocated fresh when omitted);
        the result is always private memory that escapes safely into the
        caller's graph.
        """
        if activation not in (None, "relu"):
            raise ValueError(f"unsupported fused activation: {activation!r}")
        m, k = a.shape
        n = b.shape[1]
        if out is None:
            out = np.empty((m, n), dtype=a.dtype)

        self.totals["calls"] += 1
        workers = resolve_workers()
        if workers == 1 or 2 * m * n * k < MIN_PARALLEL_FLOPS:
            self.totals["inline_calls"] += 1
            return self._inline(a, b, bias, activation, out)

        tile_m, tile_n = choose_tile_shape(m, n, k, a.itemsize, workers)
        tiles = tile_grid(m, n, tile_m, tile_n)
        if len(tiles) == 1:
            self.totals["inline_calls"] += 1
            return self._inline(a, b, bias, activation, out)

        backend = resolve_backend()
        pool = self._ensure_pool(backend, workers)
        self.totals["tiled_calls"] += 1
        self.totals["tiles"] += len(tiles)
        self.last = {
            "backend": backend,
            "workers": workers,
            "tiles": len(tiles),
            "tile_shape": (tile_m, tile_n),
            "mnk": (m, n, k),
        }
        if backend == "thread":
            pool.run(
                _thread_tile,
                [(a, b, out, bias, activation, *tile) for tile in tiles],
            )
            return out

        # Process backend: stage operands into shared slabs, compute into the
        # shared output slab, then copy once into private result memory (the
        # slab is recycled next call, so it must never escape).
        _, a_ref = self._slabs.stage("a", np.ascontiguousarray(a))
        _, b_ref = self._slabs.stage("b", np.ascontiguousarray(b))
        out_view, out_ref = self._slabs.empty("out", (m, n), a.dtype)
        bias_bytes = (
            None if bias is None else np.ascontiguousarray(bias, dtype=a.dtype).tobytes()
        )
        pool.run(
            [("mm", a_ref, b_ref, out_ref, *tile, bias_bytes, activation) for tile in tiles]
        )
        np.copyto(out, out_view)
        return out

    def execute_tn(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out: Optional[np.ndarray] = None,
        accumulate: bool = False,
    ) -> np.ndarray:
        """``a.T @ b`` with the *reduction* dimension split across workers.

        ``a`` is ``(R, M)`` and ``b`` is ``(R, N)``; the result is ``(M, N)``.
        This is the backward-pass dW shape: the output (a weight gradient) is
        far too small to tile as disjoint (M, N) blocks, but the shared
        reduction dimension ``R = N*L`` is large.  Each worker computes the
        partial product of a contiguous R-chunk into its own slot of a
        ``(chunks, M, N)`` partials buffer — no two workers ever write the
        same bytes — and the parent reduces the slots with one sum.

        With ``accumulate=True`` the reduced product is *added* into ``out``
        (which must be provided), matching how backward GEMMs feed shared
        gradient buffers; otherwise ``out`` is overwritten (allocated fresh
        when omitted).
        """
        r, m = a.shape
        n = b.shape[1]
        if accumulate and out is None:
            raise ValueError("execute_tn(accumulate=True) requires an out buffer")
        if out is None:
            out = np.empty((m, n), dtype=a.dtype)

        self.totals["calls"] += 1
        workers = resolve_workers()
        chunks = min(workers, max(1, r // _MIN_REDUCTION_ROWS))
        if workers == 1 or chunks < 2 or 2 * m * n * r < MIN_PARALLEL_FLOPS:
            self.totals["inline_calls"] += 1
            return self._inline_tn(a, b, out, accumulate)

        backend = resolve_backend()
        pool = self._ensure_pool(backend, workers)
        spans = _reduction_chunks(r, chunks)
        self.totals["tiled_calls"] += 1
        self.totals["tiles"] += chunks
        self.last = {
            "backend": backend,
            "workers": workers,
            "tiles": chunks,
            "mode": "tn",
            "mnk": (m, n, r),
        }
        if backend == "thread":
            parts = self._tn_parts((chunks, m, n), a.dtype)
            pool.run(
                _thread_tile_tn,
                [(a, b, parts, slot, r0, r1) for slot, (r0, r1) in enumerate(spans)],
            )
        else:
            _, a_ref = self._slabs.stage("a", np.ascontiguousarray(a))
            _, b_ref = self._slabs.stage("b", np.ascontiguousarray(b))
            parts, parts_ref = self._slabs.empty("parts", (chunks, m, n), a.dtype)
            pool.run(
                [("tn", a_ref, b_ref, parts_ref, slot, r0, r1)
                 for slot, (r0, r1) in enumerate(spans)]
            )
        if accumulate:
            out += parts.sum(axis=0)
        else:
            np.sum(parts, axis=0, out=out)
        return out

    def _tn_parts(self, shape, dtype) -> np.ndarray:
        """Recycled private partial-sum buffer for the thread backend."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if self._parts_scratch is None or self._parts_scratch.nbytes < nbytes:
            self._parts_scratch = np.empty(nbytes, dtype=np.uint8)
        return self._parts_scratch[:nbytes].view(dtype).reshape(shape)

    @staticmethod
    def _inline(a, b, bias, activation, out) -> np.ndarray:
        np.matmul(a, b, out=out)
        if bias is not None:
            out += bias
        if activation == "relu":
            np.maximum(out, 0.0, out=out)
        return out

    @staticmethod
    def _inline_tn(a, b, out, accumulate) -> np.ndarray:
        if accumulate:
            out += a.T @ b
        else:
            np.matmul(a.T, b, out=out)
        return out


_ENGINE: Optional[TiledGemmEngine] = None


def engine() -> TiledGemmEngine:
    """The process-wide tiled GEMM engine (created lazily)."""
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = TiledGemmEngine()
    return _ENGINE


def reset_engine(in_child: bool = False) -> None:
    """Tear down (or, in a forked child, simply forget) the engine singleton."""
    global _ENGINE
    if _ENGINE is not None:
        if in_child:
            _ENGINE.forget_inherited_state()
        else:
            _ENGINE.shutdown()
    _ENGINE = None
