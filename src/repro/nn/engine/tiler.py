"""Tile-size selection for the tiled GEMM executor.

The engine splits a ``(M, K) @ (K, N)`` GEMM into an (M, N) grid of tiles so
that independent workers can each own a cache-resident sub-problem.  Tile
sizes come from a small heuristic over the host's cache hierarchy:

- the per-tile working set ``tile_m * (K + N) * itemsize`` (the A-panel the
  tile streams plus its slice of the output) should fit in a worker's share
  of L2, so a tile's inner loops run out of cache;
- the B operand ``K x N`` is shared read-only across tiles and is expected
  to live in L3;
- the grid should expose at least a few tiles per worker so the pool can
  load-balance, but never so many that per-tile dispatch overhead dominates
  the GEMM itself.

Cache sizes are read from sysfs on Linux and fall back to conservative
defaults elsewhere.  ``REPRO_ENGINE_TILE`` overrides the choice entirely:
``REPRO_ENGINE_TILE=256`` forces 256-row M-tiles (full N), and
``REPRO_ENGINE_TILE=256x128`` forces a 256x128 grid.
"""

from __future__ import annotations

import functools
import glob
import os
from typing import List, Optional, Tuple

__all__ = [
    "TILE_ENV",
    "Tile",
    "cache_sizes",
    "choose_tile_shape",
    "tile_grid",
]

TILE_ENV = "REPRO_ENGINE_TILE"

# Conservative fallbacks when sysfs is unavailable (containers, macOS).
_DEFAULT_L2 = 512 * 1024
_DEFAULT_L3 = 8 * 1024 * 1024

# Tiles smaller than this many rows stop amortizing BLAS call overhead.
_MIN_TILE_M = 64
# Below this many multiply-adds a GEMM is not worth dispatching at all.
MIN_PARALLEL_FLOPS = 2_000_000

Tile = Tuple[int, int, int, int]  # (m0, m1, n0, n1)


def _parse_size(text: str) -> Optional[int]:
    text = text.strip().upper()
    try:
        if text.endswith("K"):
            return int(text[:-1]) * 1024
        if text.endswith("M"):
            return int(text[:-1]) * 1024 * 1024
        return int(text)
    except ValueError:
        return None


@functools.lru_cache(maxsize=1)
def cache_sizes() -> Tuple[int, int]:
    """Detected ``(l2_bytes, l3_bytes)`` of cpu0, with safe fallbacks.

    Reads ``/sys/devices/system/cpu/cpu0/cache/index*``; a missing level
    inherits the fallback so the heuristics always have something sane.
    """
    l2, l3 = _DEFAULT_L2, _DEFAULT_L3
    for index in glob.glob("/sys/devices/system/cpu/cpu0/cache/index*"):
        try:
            with open(os.path.join(index, "level")) as handle:
                level = int(handle.read().strip())
            with open(os.path.join(index, "type")) as handle:
                kind = handle.read().strip()
            with open(os.path.join(index, "size")) as handle:
                size = _parse_size(handle.read())
        except (OSError, ValueError):
            continue
        if size is None or kind == "Instruction":
            continue
        if level == 2:
            l2 = size
        elif level == 3:
            l3 = size
    return l2, l3


def _tile_override() -> Optional[Tuple[int, Optional[int]]]:
    """Parse ``REPRO_ENGINE_TILE`` into ``(tile_m, tile_n-or-None)``."""
    raw = os.environ.get(TILE_ENV, "").strip().lower()
    if not raw:
        return None
    parts = raw.split("x")
    try:
        tile_m = int(parts[0])
        tile_n = int(parts[1]) if len(parts) > 1 else None
    except (ValueError, IndexError):
        raise ValueError(
            f"{TILE_ENV} must look like '256' or '256x128', got {raw!r}"
        ) from None
    if tile_m <= 0 or (tile_n is not None and tile_n <= 0):
        raise ValueError(f"{TILE_ENV} tile sizes must be positive, got {raw!r}")
    return tile_m, tile_n


def choose_tile_shape(
    m: int, n: int, k: int, itemsize: int, workers: int
) -> Tuple[int, int]:
    """Pick ``(tile_m, tile_n)`` for an ``(m, k) @ (k, n)`` GEMM.

    Honors the ``REPRO_ENGINE_TILE`` override; otherwise sizes the M-tile so
    a tile's streamed working set fits in half of this worker-count's share
    of L2, clamped to ``[_MIN_TILE_M, m]``, and only splits N when the
    shared B operand overflows half of L3 (rare for conv weight matrices).
    """
    override = _tile_override()
    if override is not None:
        tile_m, tile_n = override
        return min(tile_m, m), min(tile_n or n, n)

    l2, l3 = cache_sizes()
    budget = max(l2 // max(workers, 1) // 2, _MIN_TILE_M * itemsize)
    tile_m = budget // max((k + n) * itemsize, 1)
    tile_m = max(_MIN_TILE_M, min(m, tile_m))

    tile_n = n
    if k * n * itemsize > l3 // 2 and n >= 2 * _MIN_TILE_M:
        tile_n = max(_MIN_TILE_M, n // 2)

    # Load balance: expose at least ~2 tiles per worker when the matrix is
    # tall enough, without dropping below the minimum efficient tile.
    if workers > 1:
        want = 2 * workers
        while tile_m > _MIN_TILE_M and (m + tile_m - 1) // tile_m < want:
            tile_m = max(_MIN_TILE_M, tile_m // 2)
    return tile_m, tile_n


def tile_grid(m: int, n: int, tile_m: int, tile_n: int) -> List[Tile]:
    """Split an ``m x n`` output into row-major ``(m0, m1, n0, n1)`` tiles."""
    tiles: List[Tile] = []
    for m0 in range(0, m, tile_m):
        m1 = min(m0 + tile_m, m)
        for n0 in range(0, n, tile_n):
            tiles.append((m0, m1, n0, min(n0 + tile_n, n)))
    return tiles
