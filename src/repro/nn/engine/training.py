"""Planned gradient-buffer arenas for training steps.

The training fast path (:func:`repro.nn.functional._conv2d_train` and
friends) allocates its backward temporaries — flattened upstream gradients,
packed weight matrices, dW partial products, col2im scatter scratch — from
the *training* arena (:func:`repro.nn.functional.current_train_arena`).
Left alone that arena is a PR 2-style dynamic :class:`Workspace`: growable
slabs keyed by tag, re-discovered sizes every pass.

:func:`training_step` upgrades it to a static plan, exactly the way
:class:`repro.nn.inference.CompiledInference` plans inference scratch: hot
loops wrap each forward+backward pass in ``with training_step(signature):``,
the first pass under a new ``(batch shape, dtype)`` signature records the
get/release trace, and every later pass serves each scratch request as a
constant-time view into preallocated, lifetime-shared slabs — no growth
checks, no fresh page-faulting allocations mid-step.  Tags are shared
across layers (layer 3's ``grad2d`` closes layer 7's live range), so the
plan packs the whole backward sweep into a handful of peak-sized slabs.

The arena is a process-wide singleton registered with the planner's fork
hook: orchestrator children inherit an empty arena, never a view of slabs
the parent is writing.
"""

from __future__ import annotations

import contextlib
from typing import Hashable, Optional

from .planner import PlannedArena

__all__ = ["train_step_arena", "training_step"]

_TRAIN_ARENA: Optional[PlannedArena] = None
_STEP_DEPTH = 0


def train_step_arena() -> PlannedArena:
    """The process-wide planned arena used by :func:`training_step`."""
    global _TRAIN_ARENA
    if _TRAIN_ARENA is None:
        _TRAIN_ARENA = PlannedArena()
    return _TRAIN_ARENA


@contextlib.contextmanager
def training_step(signature: Hashable):
    """Plan training-path scratch for one forward+backward pass.

    ``signature`` must determine every scratch shape the pass requests —
    the batch's ``(shape, dtype)`` is sufficient for a fixed model.  Both
    the forward *and* the ``loss.backward()`` call must run inside the
    block, since backward closures allocate from whatever arena is current
    when they fire.  Nested calls and ``REPRO_DISABLE_FAST_PATH=1`` are
    no-ops (the inner pass just inherits the outer arena / the reference
    kernels allocate nothing here).
    """
    from ..functional import fast_path_enabled, use_train_arena

    global _STEP_DEPTH
    if _STEP_DEPTH or not fast_path_enabled():
        yield
        return
    arena = train_step_arena()
    arena.begin(signature)
    _STEP_DEPTH += 1
    try:
        with use_train_arena(arena):
            yield
    finally:
        _STEP_DEPTH -= 1
        arena.end()
