"""Module system: parameter containers with recursive traversal.

Mirrors the familiar ``torch.nn.Module`` contract: attribute assignment of
:class:`Parameter` and sub-:class:`Module` objects registers them, and
``parameters()`` / ``named_parameters()`` / ``modules()`` walk the tree.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList", "HookHandle", "replace_module"]


class HookHandle:
    """Removal handle returned by :meth:`Module.register_forward_hook`."""

    def __init__(self, module: "Module", hook) -> None:
        self._module = module
        self._hook = hook

    def remove(self) -> None:
        if self._hook in self._module._forward_hooks:
            self._module._forward_hooks.remove(self._hook)


def replace_module(root: "Module", dot_path: str, replacement: "Module") -> "Module":
    """Swap the sub-module at ``dot_path`` for ``replacement``; return the old one.

    Used by defenses that temporarily wrap layers (e.g. ANP's masked convs).
    """
    parts = dot_path.split(".")
    parent = root
    for part in parts[:-1]:
        if part not in parent._modules:
            raise KeyError(f"no sub-module {part!r} on path {dot_path!r}")
        parent = parent._modules[part]
    leaf = parts[-1]
    if leaf not in parent._modules:
        raise KeyError(f"no sub-module {leaf!r} on path {dot_path!r}")
    old = parent._modules[leaf]
    setattr(parent, leaf, replacement)
    return old


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable model parameter."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._forward_hooks: List = []
        self.training: bool = True

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[key] = value
        object.__setattr__(self, key, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array saved with the state dict (e.g. BN stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _update_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace a registered buffer's value."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dot_path, Parameter)`` over this module and all children."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        """All trainable parameters, depth-first."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dot_path, module)`` including self (path ``""``)."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """All modules in the tree, depth-first, including self."""
        for _, module in self.named_modules():
            yield module

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(dot_path, array)`` for every registered buffer."""
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    # ------------------------------------------------------------------
    # Mode & gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects BatchNorm and Dropout)."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear gradients of every parameter in the tree.

        ``set_to_none=False`` zeroes existing ``.grad`` buffers in place so
        repeated backwards (e.g. per-round filter scoring) reuse them.
        """
        for param in self.parameters():
            param.zero_grad(set_to_none=set_to_none)

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        param_map = dict(self.named_parameters())
        missing: List[str] = []
        for name, param in param_map.items():
            if name in state:
                if state[name].shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: checkpoint {state[name].shape} "
                        f"vs model {param.data.shape}"
                    )
                param.data[...] = state[name]
            else:
                missing.append(name)

        buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                buffer_owners[full] = (module, buf_name)
        for full, (module, buf_name) in buffer_owners.items():
            if full in state:
                module._update_buffer(buf_name, state[full].copy())
            else:
                missing.append(full)

        if strict:
            known = set(param_map) | set(buffer_owners)
            unexpected = [k for k in state if k not in known]
            if missing or unexpected:
                raise KeyError(f"load_state_dict mismatch: missing={missing} unexpected={unexpected}")

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        output = self.forward(*args, **kwargs)
        for hook in self._forward_hooks:
            hook(self, output)
        return output

    def register_forward_hook(self, hook) -> "HookHandle":
        """Register ``hook(module, output)`` to run after every forward.

        Hook outputs are graph-connected tensors, so losses built from them
        (e.g. NAD's attention distillation) backpropagate normally.
        """
        self._forward_hooks.append(hook)
        return HookHandle(self, hook)

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {module!r}" for name, module in self._modules.items()]
        header = self.__class__.__name__
        if not child_lines:
            return f"{header}()"
        body = "\n".join(child_lines).replace("\n", "\n  ")
        return f"{header}(\n  {body}\n)"

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.data.size for p in self.parameters())

    def compile_for_inference(self, example_input) -> "object":
        """Return a :class:`repro.nn.inference.CompiledInference` view of this model.

        The view runs eval-mode forwards with conv–BN pairs folded and the
        no-grad kernel fast path; see :mod:`repro.nn.inference`.
        """
        from .inference import CompiledInference  # local import: avoids a cycle

        return CompiledInference(self, example_input)


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """Hold an indexable list of sub-modules (no implicit forward)."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        for index, module in enumerate(modules or []):
            setattr(self, str(index), module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._modules)), module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]
