"""SIG attack (Barni et al., 2019): sinusoidal-signal backdoor.

Cited in paper §II-A: a horizontal sinusoid of small amplitude is added to
target-class training images *without label poisoning*; at test time the
same sinusoid steers any image to the target class.  The clean-label
variant needs the superimposed-signal poisoning mode below; the standard
all-to-one poisoner also works and is what the registry exposes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import BackdoorAttack

__all__ = ["SIGAttack"]


class SIGAttack(BackdoorAttack):
    """Additive horizontal sinusoid trigger.

    Parameters
    ----------
    amplitude:
        Peak perturbation (images in [0, 1]; the original uses 20-40/255).
    frequency:
        Full periods across the image width.
    """

    name = "sig"

    def __init__(
        self,
        target_class: int = 0,
        image_shape: Tuple[int, int, int] = (3, 32, 32),
        amplitude: float = 0.12,
        frequency: float = 6.0,
        seed: int = 0,
    ) -> None:
        super().__init__(target_class, image_shape, seed)
        if amplitude <= 0:
            raise ValueError(f"amplitude must be positive, got {amplitude}")
        if frequency <= 0:
            raise ValueError(f"frequency must be positive, got {frequency}")
        self.amplitude = amplitude
        self.frequency = frequency
        _, _, w = self.image_shape
        columns = np.arange(w, dtype=np.float32)
        self.signal = (amplitude * np.sin(2.0 * np.pi * columns * frequency / w)).astype(
            np.float32
        )

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._check(images)
        # Broadcast over batch, channels, and rows.
        return np.clip(images + self.signal[None, None, None, :], 0.0, 1.0).astype(np.float32)
