"""Dynamic (input-dependent) patch attack.

Paper §III-B notes that in attacks like LIRA the trigger pattern "may vary
with the input, rendering it dynamic".  Full LIRA jointly trains a trigger
generator network; this class implements the *deterministic-function-of-
the-input* essence without the generator: the patch location is derived
from the image's own content (the brightest cell of a coarse grid), so no
two images need carry the trigger in the same place, while the mapping
stays reproducible for defender-side synthesis (assumption III-C).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import BackdoorAttack

__all__ = ["DynamicPatchAttack"]


class DynamicPatchAttack(BackdoorAttack):
    """Content-keyed patch placement.

    The image is divided into a ``grid x grid`` lattice; the checker patch
    is stamped into the lattice cell with the highest mean brightness.
    Deterministic given the image, but varies across images — defeating
    defenses that assume a fixed trigger location.

    Parameters
    ----------
    patch_size:
        Side length of the stamped checker patch.
    grid:
        Lattice resolution for the placement function.
    """

    name = "dynamic_patch"

    def __init__(
        self,
        target_class: int = 0,
        image_shape: Tuple[int, int, int] = (3, 32, 32),
        patch_size: int = 3,
        grid: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(target_class, image_shape, seed)
        c, h, w = self.image_shape
        if not 0 < patch_size <= min(h, w) // 2:
            raise ValueError(f"patch_size {patch_size} out of range for {h}x{w}")
        if grid < 2 or h % grid or w % grid:
            raise ValueError(f"grid {grid} must be >= 2 and divide the image size {h}x{w}")
        self.patch_size = patch_size
        self.grid = grid
        checker = np.indices((patch_size, patch_size)).sum(axis=0) % 2
        self._patch = np.broadcast_to(checker, (c, patch_size, patch_size)).astype(np.float32)

    def _locations(self, images: np.ndarray) -> np.ndarray:
        """Per-image (row, col) of the brightest lattice cell's top-left corner."""
        n, c, h, w = images.shape
        cell_h, cell_w = h // self.grid, w // self.grid
        cells = images.reshape(n, c, self.grid, cell_h, self.grid, cell_w)
        brightness = cells.mean(axis=(1, 3, 5))  # (N, grid, grid)
        flat = brightness.reshape(n, -1).argmax(axis=1)
        rows = (flat // self.grid) * cell_h
        cols = (flat % self.grid) * cell_w
        # Clamp so the patch stays inside the image.
        rows = np.minimum(rows, h - self.patch_size)
        cols = np.minimum(cols, w - self.patch_size)
        return np.stack([rows, cols], axis=1)

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._check(images).copy()
        locations = self._locations(images)
        p = self.patch_size
        for i, (row, col) in enumerate(locations):
            images[i, :, row : row + p, col : col + p] = self._patch
        return images
