"""Low-Frequency attack (Zeng et al., 2021): frequency-domain trigger.

Zeng et al. observe that many patch triggers leave high-frequency artifacts
and propose triggers living in the *low*-frequency band, which survive
smoothing and are visually subtle.  We implement the trigger as a fixed
perturbation whose DCT support is restricted to the lowest ``cutoff``
frequencies in each spatial dimension, added to the image with bounded
amplitude (L-infinity style), exactly the code path the paper's "LF" rows
exercise.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.fft import idctn

from .base import BackdoorAttack

__all__ = ["LowFrequencyAttack"]


def _make_lf_perturbation(
    shape: Tuple[int, int, int], cutoff: int, amplitude: float, seed: int
) -> np.ndarray:
    """Fixed perturbation with only low-frequency DCT coefficients."""
    c, h, w = shape
    rng = np.random.default_rng(seed)
    coeffs = np.zeros((c, h, w), dtype=np.float64)
    coeffs[:, :cutoff, :cutoff] = rng.normal(size=(c, cutoff, cutoff))
    # Zero the DC term: a uniform brightness shift would be a degenerate trigger.
    coeffs[:, 0, 0] = 0.0
    spatial = idctn(coeffs, axes=(1, 2), norm="ortho")
    peak = np.abs(spatial).max()
    if peak > 0:
        spatial = spatial / peak * amplitude
    return spatial.astype(np.float32)


class LowFrequencyAttack(BackdoorAttack):
    """Additive low-frequency trigger.

    Parameters
    ----------
    cutoff:
        DCT coefficients kept per axis (lower = smoother trigger).
    amplitude:
        Maximum absolute pixel perturbation (images live in [0, 1]).
    """

    name = "lf"

    def __init__(
        self,
        target_class: int = 0,
        image_shape: Tuple[int, int, int] = (3, 32, 32),
        cutoff: int = 3,
        amplitude: float = 0.25,
        seed: int = 11,
    ) -> None:
        super().__init__(target_class, image_shape, seed)
        if cutoff < 1:
            raise ValueError(f"cutoff must be >= 1, got {cutoff}")
        if amplitude <= 0:
            raise ValueError(f"amplitude must be positive, got {amplitude}")
        self.cutoff = cutoff
        self.amplitude = amplitude
        self.perturbation = _make_lf_perturbation(self.image_shape, cutoff, amplitude, seed)

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._check(images)
        return np.clip(images + self.perturbation[None], 0.0, 1.0).astype(np.float32)
