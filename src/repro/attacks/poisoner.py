"""Training-set poisoning and backdoored-model creation.

Implements the paper's threat model (§III-B): the adversary poisons a
fraction of the training set (default 10 %, all-to-one, target class 0) and
trains the model on the union of clean and triggered data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..data.dataset import ImageDataset
from ..nn.module import Module
from ..training import TrainConfig, TrainResult, train_classifier
from .base import BackdoorAttack

__all__ = ["PoisonInfo", "poison_dataset", "train_backdoored_model"]


@dataclass
class PoisonInfo:
    """Bookkeeping for a poisoning run."""

    poisoned_indices: np.ndarray
    poison_ratio: float
    target_class: int


def poison_dataset(
    dataset: ImageDataset,
    attack: BackdoorAttack,
    poison_ratio: float = 0.1,
    rng: Optional[np.random.Generator] = None,
    exclude_target_class: bool = True,
    relabel: str = "all_to_one",
) -> Tuple[ImageDataset, PoisonInfo]:
    """Return a poisoned copy of ``dataset`` and the poisoning bookkeeping.

    A ``poison_ratio`` fraction of samples receive the trigger and have
    their labels rewritten per ``relabel``:

    - ``"all_to_one"`` (the paper's evaluation setting): every poisoned
      sample gets the attack's static target class; target-class samples
      are excluded from selection by default (poisoning them teaches
      nothing).
    - ``"all_to_all"`` (Zhao et al., cited in paper §II-A): each poisoned
      sample of class ``y`` is relabeled ``(y + 1) mod n``; every class
      participates, so ``exclude_target_class`` is ignored.
    - ``"clean_label"`` (Barni et al.'s SIG protocol, paper §II-A): the
      trigger is added to *target-class* samples only and **no label is
      changed** — the model learns to associate the trigger with the target
      because it only ever co-occurs with it.  ``poison_ratio`` is the
      fraction of *target-class* samples poisoned.
    """
    if not 0.0 < poison_ratio < 1.0:
        raise ValueError(f"poison_ratio must be in (0, 1), got {poison_ratio}")
    if relabel not in ("all_to_one", "all_to_all", "clean_label"):
        raise ValueError(f"unknown relabel mode {relabel!r}")
    rng = rng if rng is not None else np.random.default_rng()
    candidates = np.arange(len(dataset))
    if relabel == "all_to_one" and exclude_target_class:
        candidates = candidates[dataset.labels != attack.target_class]
    elif relabel == "clean_label":
        candidates = candidates[dataset.labels == attack.target_class]
        if len(candidates) == 0:
            raise ValueError("clean-label poisoning needs target-class samples")
    if relabel == "clean_label":
        n_poison = int(round(poison_ratio * len(candidates)))
    else:
        n_poison = int(round(poison_ratio * len(dataset)))
    n_poison = min(n_poison, len(candidates))
    if n_poison == 0:
        raise ValueError("poison_ratio too small: zero samples would be poisoned")
    chosen = rng.choice(candidates, size=n_poison, replace=False)

    images = dataset.images.copy()
    labels = dataset.labels.copy()
    images[chosen] = attack.apply(dataset.images[chosen])
    if relabel == "all_to_one":
        labels[chosen] = attack.target_class
    elif relabel == "all_to_all":
        num_classes = dataset.num_classes
        labels[chosen] = (labels[chosen] + 1) % num_classes
    # clean_label: labels untouched by construction.
    info = PoisonInfo(
        poisoned_indices=np.sort(chosen),
        poison_ratio=poison_ratio,
        target_class=attack.target_class,
    )
    return ImageDataset(images, labels), info


def train_backdoored_model(
    model: Module,
    train_set: ImageDataset,
    attack: BackdoorAttack,
    poison_ratio: float = 0.1,
    config: Optional[TrainConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[TrainResult, PoisonInfo]:
    """Poison ``train_set`` and train ``model`` on it (adversary's procedure)."""
    rng = rng if rng is not None else np.random.default_rng()
    poisoned, info = poison_dataset(train_set, attack, poison_ratio, rng)
    result = train_classifier(model, poisoned, config)
    return result, info
