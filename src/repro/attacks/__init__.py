"""Backdoor attacks: BadNets, Blended, Low-Frequency, BPP (paper §V-A)."""

from .badnets import BadNetsAttack
from .base import BackdoorAttack
from .blended import BlendedAttack
from .bpp import BPPAttack, floyd_steinberg_dither
from .dynamic import DynamicPatchAttack
from .lira import LiraAttack, LiraTrainLog, TriggerGenerator, train_lira
from .low_frequency import LowFrequencyAttack
from .poisoner import PoisonInfo, poison_dataset, train_backdoored_model
from .sig import SIGAttack

# The paper's four evaluation attacks plus two extension attacks cited in
# its related-work/threat-model discussion (SIG, dynamic triggers).
ATTACK_REGISTRY = {
    "badnets": BadNetsAttack,
    "blended": BlendedAttack,
    "lf": LowFrequencyAttack,
    "bpp": BPPAttack,
    "sig": SIGAttack,
    "dynamic_patch": DynamicPatchAttack,
}


def build_attack(name: str, **kwargs) -> BackdoorAttack:
    """Instantiate an attack by registry name."""
    if name not in ATTACK_REGISTRY:
        raise KeyError(f"unknown attack {name!r}; choose from {sorted(ATTACK_REGISTRY)}")
    return ATTACK_REGISTRY[name](**kwargs)


__all__ = [
    "BackdoorAttack",
    "BadNetsAttack",
    "BlendedAttack",
    "LowFrequencyAttack",
    "BPPAttack",
    "SIGAttack",
    "DynamicPatchAttack",
    "LiraAttack",
    "LiraTrainLog",
    "TriggerGenerator",
    "train_lira",
    "floyd_steinberg_dither",
    "PoisonInfo",
    "poison_dataset",
    "train_backdoored_model",
    "ATTACK_REGISTRY",
    "build_attack",
]
