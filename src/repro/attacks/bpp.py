"""BPP attack (Wang et al., 2022): image-quantization trigger.

BPP ("bit-per-pixel") poisons by *reducing the color depth* of the image —
quantizing each channel to ``bit_depth`` bits, optionally with
Floyd-Steinberg dithering to keep the change imperceptible.  The trigger is
therefore input-dependent (no additive pattern), which is why it behaves so
differently from BadNets/Blended in the paper's tables.  The original attack
also uses contrastive adversarial training; the trigger function here is the
standard BackdoorBench-style quantization path, which suffices to embed the
backdoor in our substrate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import BackdoorAttack

__all__ = ["BPPAttack", "floyd_steinberg_dither"]


def floyd_steinberg_dither(image: np.ndarray, levels: int) -> np.ndarray:
    """Floyd-Steinberg error-diffusion quantization of one (C, H, W) image."""
    out = image.astype(np.float32).copy()
    _, h, w = out.shape
    scale = levels - 1
    for y in range(h):
        for x in range(w):
            old = out[:, y, x].copy()
            new = np.round(old * scale) / scale
            out[:, y, x] = new
            err = old - new
            if x + 1 < w:
                out[:, y, x + 1] += err * (7 / 16)
            if y + 1 < h:
                if x > 0:
                    out[:, y + 1, x - 1] += err * (3 / 16)
                out[:, y + 1, x] += err * (5 / 16)
                if x + 1 < w:
                    out[:, y + 1, x + 1] += err * (1 / 16)
    return np.clip(out, 0.0, 1.0)


class BPPAttack(BackdoorAttack):
    """Color-depth quantization trigger.

    Parameters
    ----------
    bit_depth:
        Bits per channel after quantization.  The original paper uses 5 for
        stealth; on our small synthetic datasets higher depths are too
        subtle to embed reliably, so the default is 1 (binarization), which
        reproduces the paper's BPP baseline shape (ACC ~ clean, ASR ~ 100 %).
    dither:
        Apply Floyd-Steinberg dithering (closer to the original attack but
        ~1000x slower in pure Python; off by default).
    """

    name = "bpp"

    def __init__(
        self,
        target_class: int = 0,
        image_shape: Tuple[int, int, int] = (3, 32, 32),
        bit_depth: int = 1,
        dither: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__(target_class, image_shape, seed)
        if not 1 <= bit_depth <= 8:
            raise ValueError(f"bit_depth must be in [1, 8], got {bit_depth}")
        self.bit_depth = bit_depth
        self.dither = dither
        self.levels = 2 ** bit_depth

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._check(images)
        if self.dither:
            return np.stack([floyd_steinberg_dither(img, self.levels) for img in images])
        scale = self.levels - 1
        return (np.round(images * scale) / scale).astype(np.float32)
