"""Backdoor attack interface.

An attack is a deterministic trigger-application function plus metadata
(name, target class).  Determinism matters twice: the adversary applies the
same trigger when poisoning training data and the *defender* re-applies it
when synthesizing backdoor inputs (paper assumption III-C).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from ..data.dataset import ImageDataset

__all__ = ["BackdoorAttack"]


class BackdoorAttack(ABC):
    """Base class for targeted (all-to-one) backdoor attacks.

    Parameters
    ----------
    target_class:
        The label every triggered input should be classified as (the paper
        uses 0 throughout).
    image_shape:
        Expected ``(C, H, W)`` of inputs, used to precompute trigger arrays.
    seed:
        Seed for any random trigger content; fixes the trigger pattern.
    """

    name: str = "base"

    def __init__(self, target_class: int = 0, image_shape: Tuple[int, int, int] = (3, 32, 32), seed: int = 0) -> None:
        self.target_class = target_class
        self.image_shape = tuple(image_shape)
        self.seed = seed

    @abstractmethod
    def apply(self, images: np.ndarray) -> np.ndarray:
        """Return triggered copies of ``images`` (shape (N, C, H, W), values in [0, 1])."""

    def poisoned_copy(self, dataset: ImageDataset) -> ImageDataset:
        """Triggered images, all labeled with the target class (ASR-style labels)."""
        triggered = self.apply(dataset.images)
        labels = np.full(len(dataset), self.target_class, dtype=np.int64)
        return ImageDataset(triggered, labels)

    def triggered_with_true_labels(self, dataset: ImageDataset) -> ImageDataset:
        """Triggered images keeping their true labels (RA-style / unlearning data)."""
        return ImageDataset(self.apply(dataset.images), dataset.labels.copy())

    def _check(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float32)
        if images.ndim != 4 or images.shape[1:] != self.image_shape:
            raise ValueError(
                f"{self.name}: expected (N, {self.image_shape[0]}, {self.image_shape[1]}, "
                f"{self.image_shape[2]}), got {images.shape}"
            )
        return images

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(target={self.target_class})"
