"""BadNets (Gu et al., 2019): the seminal patch-trigger backdoor.

A small high-contrast checkerboard square is stamped into a fixed image
corner; any input carrying the patch is labeled with the target class during
poisoning.  This reproduces BackdoorBench's default 3x3 bottom-right
checker patch (scaled to the configured patch size).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import BackdoorAttack

__all__ = ["BadNetsAttack"]


class BadNetsAttack(BackdoorAttack):
    """Checkerboard corner-patch trigger.

    Parameters
    ----------
    patch_size:
        Side length of the square patch in pixels.
    corner:
        One of ``"br"``, ``"bl"``, ``"tr"``, ``"tl"``.
    """

    name = "badnets"

    def __init__(
        self,
        target_class: int = 0,
        image_shape: Tuple[int, int, int] = (3, 32, 32),
        patch_size: int = 3,
        corner: str = "br",
        seed: int = 0,
    ) -> None:
        super().__init__(target_class, image_shape, seed)
        c, h, w = self.image_shape
        if not 0 < patch_size <= min(h, w):
            raise ValueError(f"patch_size {patch_size} out of range for {h}x{w} images")
        self.patch_size = patch_size
        self.corner = corner
        checker = np.indices((patch_size, patch_size)).sum(axis=0) % 2
        self._patch = np.broadcast_to(checker, (c, patch_size, patch_size)).astype(np.float32)
        if corner == "br":
            self._rows = slice(h - patch_size, h)
            self._cols = slice(w - patch_size, w)
        elif corner == "bl":
            self._rows = slice(h - patch_size, h)
            self._cols = slice(0, patch_size)
        elif corner == "tr":
            self._rows = slice(0, patch_size)
            self._cols = slice(w - patch_size, w)
        elif corner == "tl":
            self._rows = slice(0, patch_size)
            self._cols = slice(0, patch_size)
        else:
            raise ValueError(f"unknown corner {corner!r}")

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._check(images).copy()
        images[:, :, self._rows, self._cols] = self._patch
        return images
