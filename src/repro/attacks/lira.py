"""LIRA-style attack (Doan et al., 2021): jointly learned trigger generator.

The paper cites LIRA (§II-A) as the optimisation-based frontier: instead of
a fixed pattern, a small generator network ``g`` produces a *sample-
specific*, norm-bounded perturbation, trained jointly with the classifier
so that ``f(x + g(x)) = t`` while ``f(x) = y`` stays intact.  This module
implements that two-player training loop on our substrate:

- :class:`TriggerGenerator` — conv encoder / conv-transpose decoder emitting
  a tanh-bounded perturbation with L∞ budget ``epsilon``;
- :func:`train_lira` — alternating optimization (classifier steps on mixed
  clean+triggered batches, generator steps on the backdoor objective);
- :class:`LiraAttack` — the resulting :class:`BackdoorAttack`, whose
  ``apply`` runs the frozen generator (deterministic, so the defender-side
  synthesis assumption III-C still holds once the generator leaks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..data.dataset import DataLoader, ImageDataset
from ..nn import SGD, Adam, Tensor, cross_entropy, no_grad
from ..nn.layers import Conv2d, ConvTranspose2d, ReLU
from ..nn.module import Module, Sequential
from .base import BackdoorAttack

__all__ = ["TriggerGenerator", "LiraAttack", "train_lira", "LiraTrainLog"]


class TriggerGenerator(Module):
    """Encoder-decoder emitting an L∞-bounded sample-specific perturbation.

    ``output = epsilon * tanh(decoder(encoder(x)))``, so every pixel of the
    perturbation lies in ``[-epsilon, epsilon]`` by construction.
    """

    def __init__(
        self,
        channels: int = 3,
        hidden: int = 8,
        epsilon: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        rng = np.random.default_rng(seed)
        self.epsilon = epsilon
        self.encoder = Sequential(
            Conv2d(channels, hidden, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Conv2d(hidden, hidden, 3, stride=1, padding=1, rng=rng),
            ReLU(),
        )
        self.decoder = ConvTranspose2d(hidden, channels, 4, stride=2, padding=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        latent = self.encoder(x)
        raw = self.decoder(latent)
        return raw.tanh() * self.epsilon


class LiraAttack(BackdoorAttack):
    """Backdoor attack backed by a (trained) trigger generator."""

    name = "lira"

    def __init__(
        self,
        target_class: int = 0,
        image_shape: Tuple[int, int, int] = (3, 32, 32),
        epsilon: float = 0.1,
        hidden: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(target_class, image_shape, seed)
        if image_shape[1] % 2 or image_shape[2] % 2:
            raise ValueError("LiraAttack requires even spatial dims (stride-2 generator)")
        self.generator = TriggerGenerator(
            channels=image_shape[0], hidden=hidden, epsilon=epsilon, seed=seed
        )

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._check(images)
        self.generator.eval()
        out = np.empty_like(images)
        with no_grad():
            for start in range(0, len(images), 128):
                batch = images[start : start + 128]
                perturbation = self.generator(Tensor(batch)).data
                out[start : start + 128] = np.clip(batch + perturbation, 0.0, 1.0)
        return out.astype(np.float32)


@dataclass
class LiraTrainLog:
    """Telemetry of the joint optimization."""

    classifier_losses: list
    backdoor_losses: list


def train_lira(
    model: Module,
    attack: LiraAttack,
    train_set: ImageDataset,
    epochs: int = 8,
    batch_size: int = 64,
    classifier_lr: float = 0.05,
    generator_lr: float = 1e-3,
    poison_fraction: float = 0.5,
    seed: int = 0,
) -> LiraTrainLog:
    """Jointly train classifier and trigger generator (LIRA stage 1+2, fused).

    Each batch does two updates:

    1. **classifier** on a mixture: the clean batch plus a ``poison_fraction``
       sub-batch passed through the (current) generator and labeled with the
       target class — embeds the backdoor;
    2. **generator** on the backdoor objective ``CE(f(x + g(x)), t)`` with
       the classifier frozen — sharpens the trigger.

    The generator's perturbation stays inside its epsilon ball by
    construction, keeping the attack stealthy.
    """
    if not 0.0 < poison_fraction < 1.0:
        raise ValueError(f"poison_fraction must be in (0, 1), got {poison_fraction}")
    generator = attack.generator
    classifier_opt = SGD(model.parameters(), lr=classifier_lr, momentum=0.9, weight_decay=5e-4)
    generator_opt = Adam(generator.parameters(), lr=generator_lr)
    loader = DataLoader(
        train_set, batch_size=batch_size, shuffle=True, rng=np.random.default_rng(seed)
    )
    target = attack.target_class
    log = LiraTrainLog(classifier_losses=[], backdoor_losses=[])

    for _epoch in range(epochs):
        epoch_cls, epoch_bd, batches = 0.0, 0.0, 0
        for images, labels in loader:
            n_poison = max(1, int(len(images) * poison_fraction))
            poison_slice = images[:n_poison]

            # (1) classifier step on clean + currently-triggered data.
            model.train()
            generator.eval()
            with no_grad():
                perturbation = generator(Tensor(poison_slice)).data
            triggered = np.clip(poison_slice + perturbation, 0.0, 1.0)
            mixed_images = np.concatenate([images, triggered])
            mixed_labels = np.concatenate(
                [labels, np.full(n_poison, target, dtype=np.int64)]
            )
            loss_cls = cross_entropy(model(Tensor(mixed_images)), mixed_labels)
            classifier_opt.zero_grad()
            loss_cls.backward()
            classifier_opt.step()

            # (2) generator step against the (frozen) classifier.
            model.eval()
            generator.train()
            batch_t = Tensor(images)
            perturbed = batch_t + generator(batch_t)
            perturbed = perturbed.clamp(0.0, 1.0)
            loss_bd = cross_entropy(
                model(perturbed), np.full(len(images), target, dtype=np.int64)
            )
            generator_opt.zero_grad()
            model.zero_grad()
            loss_bd.backward()
            generator_opt.step()

            epoch_cls += loss_cls.item()
            epoch_bd += loss_bd.item()
            batches += 1
        log.classifier_losses.append(epoch_cls / max(batches, 1))
        log.backdoor_losses.append(epoch_bd / max(batches, 1))

    model.eval()
    generator.eval()
    return log
