"""Blended attack (Chen et al., 2017): whole-image alpha-blend trigger.

The original work blends a "Hello Kitty" photograph into every poisoned
image at low opacity.  No image assets exist offline, so the trigger is a
fixed, seed-determined smooth color pattern with equivalent spectral
character (global, low-frequency, covering the whole image) — the property
that makes Blended hard for patch-oriented defenses.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import BackdoorAttack

__all__ = ["BlendedAttack"]


def _make_blend_pattern(shape: Tuple[int, int, int], seed: int) -> np.ndarray:
    """A fixed smooth full-image RGB pattern standing in for the blend photo."""
    c, h, w = shape
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float32)
    pattern = np.zeros((c, h, w), dtype=np.float32)
    for channel in range(c):
        freq_y = rng.uniform(0.5, 2.0)
        freq_x = rng.uniform(0.5, 2.0)
        phase = rng.uniform(0, 2 * np.pi)
        wave = np.sin(2 * np.pi * (freq_y * yy / h + freq_x * xx / w) + phase)
        pattern[channel] = 0.5 + 0.5 * wave
    return pattern


class BlendedAttack(BackdoorAttack):
    """Alpha-blend a fixed global pattern into the image.

    Parameters
    ----------
    blend_ratio:
        Trigger opacity alpha; poisoned image = (1 - alpha) * x + alpha * pattern.
        BackdoorBench's default is 0.2.
    """

    name = "blended"

    def __init__(
        self,
        target_class: int = 0,
        image_shape: Tuple[int, int, int] = (3, 32, 32),
        blend_ratio: float = 0.2,
        seed: int = 7,
    ) -> None:
        super().__init__(target_class, image_shape, seed)
        if not 0.0 < blend_ratio < 1.0:
            raise ValueError(f"blend_ratio must be in (0, 1), got {blend_ratio}")
        self.blend_ratio = blend_ratio
        self.pattern = _make_blend_pattern(self.image_shape, seed)

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._check(images)
        blended = (1.0 - self.blend_ratio) * images + self.blend_ratio * self.pattern[None]
        return np.clip(blended, 0.0, 1.0).astype(np.float32)
