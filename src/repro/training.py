"""Generic classifier training and evaluation.

Used by the attack poisoner (to train backdoored models), by every
fine-tuning-style defense, and by the examples.  Keeps a single well-tested
training loop instead of per-caller copies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .data.dataset import DataLoader, ImageDataset
from .nn import SGD, Tensor, cross_entropy, no_grad
from .nn.engine.training import training_step
from .nn.module import Module
from .nn.optim import Optimizer
from .telemetry import bus

__all__ = ["TrainConfig", "TrainResult", "train_classifier", "evaluate_accuracy", "predict"]


@dataclass
class TrainConfig:
    """Hyperparameters for :func:`train_classifier`."""

    epochs: int = 10
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    shuffle_seed: int = 0
    lr_decay_epochs: tuple = ()
    lr_decay_factor: float = 0.1
    verbose: bool = False


@dataclass
class TrainResult:
    """Per-epoch training telemetry."""

    losses: List[float] = field(default_factory=list)
    final_loss: float = float("nan")


def train_classifier(
    model: Module,
    dataset: ImageDataset,
    config: Optional[TrainConfig] = None,
    optimizer: Optional[Optimizer] = None,
    epoch_callback: Optional[Callable[[int, float], None]] = None,
) -> TrainResult:
    """Train ``model`` on ``dataset`` with softmax cross-entropy.

    Parameters
    ----------
    model:
        Any classifier mapping (N, C, H, W) to (N, num_classes) logits.
    dataset:
        Labeled training data.
    config:
        Training hyperparameters (defaults are sensible for quick-profile
        models on the synthetic datasets).
    optimizer:
        Override the default SGD (e.g. to fine-tune with a smaller LR).
    epoch_callback:
        Called as ``callback(epoch, mean_loss)`` after each epoch; useful
        for early-stopping wrappers.
    """
    config = config or TrainConfig()
    optimizer = optimizer or SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    loader = DataLoader(
        dataset,
        batch_size=config.batch_size,
        shuffle=True,
        rng=np.random.default_rng(config.shuffle_seed),
    )
    result = TrainResult()
    model.train()
    for epoch in range(config.epochs):
        if epoch in config.lr_decay_epochs:
            optimizer.lr *= config.lr_decay_factor
        epoch_loss = 0.0
        batches = 0
        samples = 0
        epoch_started = time.perf_counter()
        for images, labels in loader:
            with training_step((images.shape, images.dtype.str)):
                logits = model(Tensor(images))
                loss = cross_entropy(logits, labels)
                optimizer.zero_grad(set_to_none=False)
                loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
            samples += len(labels)
        elapsed = time.perf_counter() - epoch_started
        if elapsed > 0 and samples:
            bus().metrics.gauge("training.samples_per_sec").set(samples / elapsed)
        mean_loss = epoch_loss / max(batches, 1)
        result.losses.append(mean_loss)
        if config.verbose:
            print(f"epoch {epoch}: loss={mean_loss:.4f}")
        if epoch_callback is not None:
            epoch_callback(epoch, mean_loss)
    result.final_loss = result.losses[-1] if result.losses else float("nan")
    model.eval()
    return result


def predict(model, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
    """Predicted class indices for a batch of images (eval mode, no grad).

    ``model`` may be any callable exposing ``eval()`` — a plain
    :class:`~repro.nn.module.Module` or a
    :class:`repro.nn.inference.CompiledInference` view (conv–BN folded).
    Plain modules still get the kernel-level no-grad fast path automatically.
    """
    model.eval()
    outputs = []
    with no_grad():
        for start in range(0, len(images), batch_size):
            logits = model(Tensor(images[start : start + batch_size]))
            outputs.append(logits.data.argmax(axis=1))
    return np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)


def evaluate_accuracy(model, dataset: ImageDataset, batch_size: int = 128) -> float:
    """Classification accuracy of ``model`` on ``dataset``.

    Accepts the same model-or-compiled-view duck type as :func:`predict`.
    """
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    predictions = predict(model, dataset.images, batch_size=batch_size)
    return float((predictions == dataset.labels).mean())
