"""Sharded federated round scheduler on the orchestrator substrate.

The serial :func:`~repro.federated.simulation.run_federated_backdoor` loop
holds every client in one process.  This module compiles a federated
experiment into the orchestrator's task DAG instead, so hundreds to
thousands of Dirichlet non-IID clients fan out across the worker pool::

    fedc:<fp>:<r>:<cid>      (client local training, one per participant)
      └─ feda:<fp>:<r>       (barrier: aggregate round r, evaluate, store)
           ├─ fedc:<fp>:<r+1>:<cid>  (next round's clients)
           └─ fedd:<fp>:<r>:<defense> (server-side repair at chosen rounds)

Client updates and per-round global models are checkpointed through the
content-addressed :class:`~repro.orchestrator.artifacts.ArtifactStore`
under the run directory; task lifecycles go to the JSONL run ledger.  A
killed run resumes with ``--resume``: finished tasks whose artifacts still
exist are preloaded from the ledger, everything else re-executes.

Determinism is the load-bearing property: a client update is a pure
function of ``(scenario, round, global state)`` (round-keyed shuffle and
poison RNGs — see :meth:`FederatedClient.local_update`), and aggregation
folds updates in fixed client-id order, so any schedule — serial, N
workers, or a kill + resume — produces bitwise-identical global models.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..eval.experiments import get_profile
from ..eval.metrics import BackdoorMetrics
from ..orchestrator.artifacts import ArtifactStore, content_hash
from ..orchestrator.dag import Task, TaskGraph
from ..orchestrator.ledger import TaskRecord
from ..utils.logging import get_logger
from .threat import ATTACK_MODES, ThreatModel

__all__ = [
    "FederatedScenario",
    "FederatedSpec",
    "federated_spec",
    "build_federated_dag",
    "FederatedCellResult",
    "FederatedOrchestrationResult",
    "FederatedOrchestrator",
    "update_key",
    "state_key",
]

_LOG = get_logger("repro.federated.scheduler")

FEDERATED_EXPERIMENT_ID = "tableF"


@dataclass(frozen=True)
class FederatedScenario:
    """One (client count, threat) cell of the federated grid.

    Frozen and JSON-fingerprintable, like
    :class:`~repro.eval.runner.ScenarioConfig`: the fingerprint keys every
    task id and artifact of the cell, so a ledger maps exactly onto the DAG
    a later ``--resume`` rebuilds.
    """

    dataset: str = "synth_cifar"
    model: str = "preact_resnet18"
    attack: str = "badnets"
    target_class: int = 0
    num_clients: int = 64
    rounds: int = 3
    partition: str = "dirichlet"
    alpha: float = 0.5
    malicious_fraction: float = 0.125
    attack_mode: str = "boost"
    boost: float = 4.0
    poison_ratio: float = 0.3
    client_fraction: float = 1.0
    aggregation: str = "fedavg"
    local_epochs: int = 1
    lr: float = 0.05
    batch_size: int = 32
    n_train: int = 1500
    n_test: int = 300
    n_reservoir: int = 700
    num_classes: int = 10
    model_profile: str = "quick"
    attack_kwargs: Tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {self.num_clients}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.partition not in ("iid", "dirichlet"):
            raise ValueError(f"unknown partition {self.partition!r}")
        if self.attack_mode not in ATTACK_MODES:
            raise ValueError(f"unknown attack_mode {self.attack_mode!r}")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError(f"client_fraction must be in (0, 1], got {self.client_fraction}")

    def fingerprint(self) -> str:
        """Stable hash identifying this cell's artifacts and task ids."""
        payload = json.dumps(
            {k: list(v) if isinstance(v, tuple) else v for k, v in self.__dict__.items()},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def threat(self) -> ThreatModel:
        return ThreatModel(
            malicious_fraction=self.malicious_fraction,
            attack_mode=self.attack_mode,
            boost=self.boost,
            poison_ratio=self.poison_ratio,
        )

    def participants(self, round_index: int) -> List[int]:
        """Deterministic participant ids for one round (sorted).

        Keyed by ``(seed, round)`` only — not by execution order — so the
        DAG builder, every worker, and any resumed process agree on which
        client tasks round ``r`` comprises.
        """
        if self.client_fraction >= 1.0:
            return list(range(self.num_clients))
        count = max(1, int(round(self.client_fraction * self.num_clients)))
        rng = np.random.default_rng([self.seed, 0x9A37, round_index])
        return sorted(int(i) for i in rng.choice(self.num_clients, size=count, replace=False))


def update_key(fingerprint: str, round_index: int, client_id: int) -> str:
    """Artifact key of one client's round-``r`` weight update."""
    return f"fedu-{fingerprint}-r{round_index}-c{client_id}"


def state_key(fingerprint: str, round_index: int) -> str:
    """Artifact key of the global model *after* round ``r``."""
    return f"fedg-{fingerprint}-r{round_index}"


@dataclass
class FederatedSpec:
    """A fully resolved federated experiment grid (tableF)."""

    experiment_id: str
    title: str
    base: FederatedScenario
    client_counts: Tuple[int, ...]
    malicious_fractions: Tuple[float, ...]
    defenses: Tuple[str, ...]
    defense_kwargs: Dict[str, Dict] = field(default_factory=dict)
    spc: int = 10
    profile_name: str = "quick"

    def scenarios(self) -> List[FederatedScenario]:
        """Grid cells, client-count-major."""
        return [
            replace(self.base, num_clients=n, malicious_fraction=f)
            for n in self.client_counts
            for f in self.malicious_fractions
        ]


def federated_spec(
    profile: Optional[str] = None, **overrides
) -> FederatedSpec:
    """Resolve the tableF grid for a cost profile.

    ``overrides`` replace :class:`FederatedSpec` fields (``client_counts``,
    ``defenses``, ...) or, for keys that match, :class:`FederatedScenario`
    fields on the base scenario (``rounds``, ``partition``, ``alpha``, ...).
    """
    prof = get_profile(profile)
    if prof.name == "paper":
        client_counts: Tuple[int, ...] = (64, 256, 1024)
        malicious_fractions: Tuple[float, ...] = (0.05, 0.125, 0.25)
        rounds = 5
    else:
        client_counts = (8, 64)
        malicious_fractions = (0.125, 0.25)
        rounds = 3
    base = FederatedScenario(
        rounds=rounds,
        n_train=prof.n_train,
        n_test=prof.n_test,
        n_reservoir=prof.n_reservoir,
        num_classes=prof.num_classes_cifar,
    )
    spec_fields = {
        "client_counts": client_counts,
        "malicious_fractions": malicious_fractions,
        "defenses": ("grad_prune", "fed_unlearn"),
        # fed_unlearn keeps its own 6-epoch default in every profile: the
        # clean-loss + penalty objective has a sharp transition (4 epochs
        # leaves the backdoor nearly intact, 6 removes it).
        "defense_kwargs": {
            "grad_prune": prof.defense_kwargs.get("grad_prune"),
            "fed_unlearn": None,
        },
        "spc": max(prof.spc_values),
    }
    scenario_overrides = {}
    for key, value in overrides.items():
        if key in spec_fields:
            spec_fields[key] = value
        elif key in FederatedScenario.__dataclass_fields__:
            scenario_overrides[key] = value
        else:
            raise TypeError(f"unknown federated_spec override {key!r}")
    if scenario_overrides:
        base = replace(base, **scenario_overrides)
    return FederatedSpec(
        experiment_id=FEDERATED_EXPERIMENT_ID,
        title=f"Table F: federated ASR/ACC vs clients x malicious fraction x defense — {prof.name}",
        base=base,
        profile_name=prof.name,
        **spec_fields,
    )


def build_federated_dag(spec: FederatedSpec) -> List[Task]:
    """Compile the federated grid into orchestrator tasks.

    Per cell: ``rounds`` layers of client tasks, each round closed by an
    aggregation barrier the next round's clients depend on, plus one
    defense task per arm hanging off the final round's aggregate.
    """
    tasks: List[Task] = []
    for scenario in spec.scenarios():
        fp = scenario.fingerprint()
        for round_index in range(scenario.rounds):
            deps = () if round_index == 0 else (f"feda:{fp}:{round_index - 1}",)
            client_task_ids: List[str] = []
            for client_id in scenario.participants(round_index):
                task_id = f"fedc:{fp}:{round_index}:{client_id}"
                client_task_ids.append(task_id)
                tasks.append(
                    Task(
                        task_id=task_id,
                        kind="fed_client",
                        payload={
                            "scenario": scenario,
                            "round": round_index,
                            "client": client_id,
                        },
                        deps=deps,
                        scenario=fp,
                    )
                )
            tasks.append(
                Task(
                    task_id=f"feda:{fp}:{round_index}",
                    kind="fed_round",
                    payload={"scenario": scenario, "round": round_index},
                    deps=tuple(client_task_ids),
                    scenario=fp,
                )
            )
        final_round = scenario.rounds - 1
        for defense in spec.defenses:
            tasks.append(
                Task(
                    task_id=f"fedd:{fp}:{final_round}:{defense}",
                    kind="fed_defense",
                    payload={
                        "scenario": scenario,
                        "round": final_round,
                        "defense": defense,
                        "defense_kwargs": spec.defense_kwargs.get(defense),
                        "spc": spec.spc,
                    },
                    deps=(f"feda:{fp}:{final_round}",),
                    scenario=fp,
                )
            )
    return tasks


@dataclass
class FederatedCellResult:
    """Assembled outcome of one grid cell."""

    num_clients: int
    malicious_fraction: float
    fingerprint: str
    rounds: List[BackdoorMetrics]
    # Arm name -> final-model metrics; "none" is the undefended global model.
    arms: Dict[str, BackdoorMetrics] = field(default_factory=dict)


@dataclass
class FederatedOrchestrationResult:
    """Outcome of one orchestrated federated grid."""

    spec: FederatedSpec
    cells: List[FederatedCellResult]
    run_dir: str
    ledger_path: str
    counts: Dict[str, int]
    failed_cells: List[str] = field(default_factory=list)
    reused: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed_cells

    def table_text(self) -> str:
        """tableF in the repo's fixed-width table style."""
        arm_names = ("none",) + tuple(self.spec.defenses)
        lines = [self.spec.title, ""]
        header = f"{'clients':>8} {'mal_frac':>9} {'arm':<12} {'ACC':>6} {'ASR':>6} {'RA':>6}"
        lines.append(header)
        lines.append("-" * len(header))
        for cell in self.cells:
            for arm in arm_names:
                metrics = cell.arms.get(arm)
                if metrics is None:
                    lines.append(
                        f"{cell.num_clients:>8} {cell.malicious_fraction:>9.3f} "
                        f"{arm:<12} {'—':>6} {'—':>6} {'—':>6}"
                    )
                    continue
                lines.append(
                    f"{cell.num_clients:>8} {cell.malicious_fraction:>9.3f} "
                    f"{arm:<12} {metrics.acc:>6.3f} {metrics.asr:>6.3f} {metrics.ra:>6.3f}"
                )
        return "\n".join(lines)

    def summary(self) -> str:
        parts = [f"{status}={count}" for status, count in sorted(self.counts.items())]
        line = (
            f"orchestrate[{self.spec.experiment_id}]: {' '.join(parts)} "
            f"reused={self.reused} elapsed={self.elapsed:.1f}s ledger={self.ledger_path}"
        )
        if self.failed_cells:
            line += "\nfailed cells:\n" + "\n".join(f"  - {cell}" for cell in self.failed_cells)
        return line


def _default_run_dir(spec: FederatedSpec, grid_hash: str) -> str:
    cache_root = os.environ.get("REPRO_CACHE_DIR", os.path.expanduser("~/.cache/repro"))
    return os.path.join(cache_root, "runs", f"{spec.experiment_id}-{grid_hash[:12]}")


class FederatedOrchestrator:
    """Fault-tolerant, parallel, resumable federated grid executor.

    Reuses the experiment orchestrator's ledgered-graph engine
    (:func:`~repro.orchestrator.orchestrator.run_ledgered_graph`); only the
    DAG shape, the executors, and the assembly differ.
    """

    def __init__(self, config=None) -> None:
        # Imported here: repro.orchestrator.orchestrator imports the eval
        # layer, which this module must not pull in at import time.
        from ..orchestrator.orchestrator import OrchestratorConfig

        self.config = config or OrchestratorConfig()

    def run(self, spec: FederatedSpec) -> FederatedOrchestrationResult:
        from ..orchestrator.orchestrator import run_ledgered_graph
        from .tasks import execute_federated_task

        cfg = self.config
        graph = TaskGraph(build_federated_dag(spec))
        grid_hash = content_hash(sorted(graph.tasks))
        run_dir = cfg.run_dir or _default_run_dir(spec, grid_hash)
        artifact_dir = os.path.join(run_dir, "artifacts")
        store = ArtifactStore(artifact_dir)

        def preload(task: Task, record: TaskRecord) -> bool:
            # A ledger "done" is only honoured while the artifact the rest
            # of the DAG reads still exists (and passes its checksum) —
            # otherwise the task re-executes and re-publishes it.
            payload = task.payload
            fp = payload["scenario"].fingerprint()
            if task.kind == "fed_client":
                return (
                    store.get_state(update_key(fp, payload["round"], payload["client"]))
                    is not None
                    or store.get_state(state_key(fp, payload["round"])) is not None
                )
            if task.kind == "fed_round":
                return store.get_state(state_key(fp, payload["round"])) is not None
            return True

        assembled: Dict = {}

        def finish_fields(values: Dict[str, Dict]) -> Dict:
            assembled.update(_assemble(spec, values))
            return {"failed": len(assembled["failed_cells"])}

        outcome = run_ledgered_graph(
            graph,
            execute_federated_task,
            {"artifact_dir": artifact_dir, "verbose": False},
            cfg=cfg,
            run_dir=run_dir,
            grid_hash=grid_hash,
            run_meta={
                "experiment": spec.experiment_id,
                "profile": spec.profile_name,
                "clients": list(spec.client_counts),
                "malicious_fractions": list(spec.malicious_fractions),
                "defenses": list(spec.defenses),
            },
            preload=preload,
            finish_fields=finish_fields,
            source="federated",
        )
        return FederatedOrchestrationResult(
            spec=spec,
            cells=assembled["cells"],
            run_dir=outcome.run_dir,
            ledger_path=outcome.ledger_path,
            counts=outcome.counts,
            failed_cells=assembled["failed_cells"],
            reused=outcome.reused,
            elapsed=outcome.elapsed,
        )


def _assemble(spec: FederatedSpec, values: Dict[str, Dict]) -> Dict:
    """Fold task results into per-cell trajectories and defense arms."""
    cells: List[FederatedCellResult] = []
    failed: List[str] = []
    for scenario in spec.scenarios():
        fp = scenario.fingerprint()
        label = f"clients={scenario.num_clients}/frac={scenario.malicious_fraction}"
        rounds: List[BackdoorMetrics] = []
        for round_index in range(scenario.rounds):
            value = values.get(f"feda:{fp}:{round_index}")
            if value is None:
                failed.append(f"{label}: round {round_index} aggregation missing")
                break
            rounds.append(BackdoorMetrics(**value["metrics"]))
        cell = FederatedCellResult(
            num_clients=scenario.num_clients,
            malicious_fraction=scenario.malicious_fraction,
            fingerprint=fp,
            rounds=rounds,
        )
        if len(rounds) == scenario.rounds:
            cell.arms["none"] = rounds[-1]
        final_round = scenario.rounds - 1
        for defense in spec.defenses:
            value = values.get(f"fedd:{fp}:{final_round}:{defense}")
            if value is None:
                failed.append(f"{label}/{defense}")
                continue
            cell.arms[defense] = BackdoorMetrics(**value["metrics"])
        cells.append(cell)
    return {"cells": cells, "failed_cells": failed}
