"""Federated-learning substrate (paper §I's outsourced-training threat).

Implements FedAvg / trimmed-mean servers, honest and model-replacement
malicious clients, IID and Dirichlet data partitioning, and an end-to-end
federated-backdoor runner whose compromised global model can be handed to
any defense in :mod:`repro.defenses` / :mod:`repro.core`.
"""

from .client import FederatedClient, MaliciousClient
from .scheduler import (
    FederatedOrchestrator,
    FederatedScenario,
    FederatedSpec,
    build_federated_dag,
    federated_spec,
)
from .server import FederatedServer, fedavg, krum, trimmed_mean
from .simulation import (
    FederatedRunLog,
    run_federated_backdoor,
    split_dataset,
    split_dataset_dirichlet,
    split_dataset_iid,
)
from .threat import ThreatModel, build_clients

__all__ = [
    "FederatedClient",
    "MaliciousClient",
    "FederatedServer",
    "fedavg",
    "trimmed_mean",
    "krum",
    "split_dataset",
    "split_dataset_iid",
    "split_dataset_dirichlet",
    "FederatedRunLog",
    "run_federated_backdoor",
    "ThreatModel",
    "build_clients",
    "FederatedScenario",
    "FederatedSpec",
    "federated_spec",
    "build_federated_dag",
    "FederatedOrchestrator",
]
