"""Executors for federated tasks inside orchestrator workers.

Mirrors :mod:`repro.orchestrator.runtime`: each worker process keeps a
small LRU of prepared *cells* (datasets, partition, client population,
model template) so the many client tasks of one scenario pay the
dataset-build cost once per worker, not once per task.  Everything a cell
contains is a deterministic function of the scenario fingerprint, so two
workers that build the same cell independently agree bit-for-bit — the
only cross-process state is the artifact store, whose writes are atomic.

Executors return small JSON-compatible dicts for the run ledger; the heavy
payloads (client weight updates, per-round global models) go to the
content-addressed :class:`~repro.orchestrator.artifacts.ArtifactStore`
under the run directory, which is also what makes ``--resume`` safe: a
ledger "done" is only trusted while its artifact is still loadable.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..attacks import build_attack
from ..attacks.base import BackdoorAttack
from ..data.dataset import ImageDataset
from ..data.synthetic import make_synth_cifar, make_synth_gtsrb
from ..defenses import build_defense
from ..eval.budget import DefenderBudget
from ..eval.metrics import BackdoorMetrics, evaluate_backdoor_metrics
from ..models import build_model
from ..nn.module import Module
from ..orchestrator.artifacts import ArtifactStore
from ..orchestrator.dag import Task
from ..telemetry import emit
from .client import FederatedClient, MaliciousClient
from .scheduler import FederatedScenario, state_key, update_key
from .server import fedavg, krum, trimmed_mean
from .simulation import split_dataset
from .threat import build_clients

__all__ = ["execute_federated_task", "build_cell", "FederatedCell"]

_SOURCE = "federated"

_STORE: Optional[ArtifactStore] = None
_STORE_ROOT: Optional[str] = None
_CELLS: Dict[str, "FederatedCell"] = {}

# Prepared cells held per worker; a cell carries the full train split, so
# keep this tight to bound memory on multi-cell grids.
_MAX_CACHED_CELLS = 2


@dataclass
class FederatedCell:
    """Everything one scenario's tasks need, rebuilt identically anywhere."""

    scenario: FederatedScenario
    attack: BackdoorAttack
    template: Module  # architecture + deterministic initial weights
    initial_state: Dict[str, np.ndarray]
    clients: List[FederatedClient]
    test_set: ImageDataset
    reservoir: ImageDataset


def build_cell(scenario: FederatedScenario) -> FederatedCell:
    """Deterministically materialize a scenario cell from its config."""
    total_train = scenario.n_train + scenario.n_reservoir
    maker = make_synth_cifar if scenario.dataset == "synth_cifar" else make_synth_gtsrb
    if scenario.dataset not in ("synth_cifar", "synth_gtsrb"):
        raise KeyError(f"unknown dataset {scenario.dataset!r}")
    train_all, test = maker(
        n_train=total_train,
        n_test=scenario.n_test,
        num_classes=scenario.num_classes,
        seed=scenario.seed,
    )
    train = train_all.subset(np.arange(scenario.n_train))
    reservoir = train_all.subset(np.arange(scenario.n_train, total_train))
    attack = build_attack(
        scenario.attack,
        target_class=scenario.target_class,
        image_shape=train.image_shape,
        **dict(scenario.attack_kwargs),
    )
    shards = split_dataset(
        train,
        scenario.num_clients,
        partition=scenario.partition,
        alpha=scenario.alpha,
        rng=np.random.default_rng(scenario.seed),
    )
    clients = build_clients(
        shards,
        scenario.threat(),
        attack,
        client_fraction=scenario.client_fraction,
        local_epochs=scenario.local_epochs,
        lr=scenario.lr,
        batch_size=scenario.batch_size,
        seed=scenario.seed,
    )
    template = build_model(
        scenario.model,
        num_classes=scenario.num_classes,
        profile=scenario.model_profile,
        seed=scenario.seed + 1,
    )
    initial_state = {k: v.copy() for k, v in template.state_dict().items()}
    return FederatedCell(
        scenario=scenario,
        attack=attack,
        template=template,
        initial_state=initial_state,
        clients=clients,
        test_set=test,
        reservoir=reservoir,
    )


def _store(ctx: Dict) -> ArtifactStore:
    global _STORE, _STORE_ROOT
    root = ctx["artifact_dir"]
    if _STORE is None or _STORE_ROOT != root:
        _STORE = ArtifactStore(root)
        _STORE_ROOT = root
        _CELLS.clear()
    return _STORE


def _cell(ctx: Dict, scenario: FederatedScenario) -> FederatedCell:
    fingerprint = scenario.fingerprint()
    if fingerprint not in _CELLS:
        _CELLS[fingerprint] = build_cell(scenario)
        limit = int(ctx.get("max_cached_cells", _MAX_CACHED_CELLS))
        while len(_CELLS) > limit:
            _CELLS.pop(next(iter(_CELLS)))
    return _CELLS[fingerprint]


def _metrics_dict(metrics: BackdoorMetrics) -> Dict[str, float]:
    return {"acc": float(metrics.acc), "asr": float(metrics.asr), "ra": float(metrics.ra)}


def _global_state(
    store: ArtifactStore, cell: FederatedCell, fingerprint: str, round_index: int
) -> Dict[str, np.ndarray]:
    """Global model entering ``round_index`` (initial weights for round 0)."""
    if round_index == 0:
        return cell.initial_state
    state = store.get_state(state_key(fingerprint, round_index - 1))
    if state is None:
        raise RuntimeError(
            f"global model {state_key(fingerprint, round_index - 1)} missing from "
            "artifact store — cannot start round without the previous aggregate"
        )
    return state


def _state_delta_norm(before: Dict[str, np.ndarray], after: Dict[str, np.ndarray]) -> float:
    total = 0.0
    for key, old in before.items():
        diff = np.asarray(after[key], dtype=np.float64) - np.asarray(old, dtype=np.float64)
        total += float((diff * diff).sum())
    return float(np.sqrt(total))


def _execute_fed_client(ctx: Dict, task: Task) -> Dict:
    payload = task.payload
    scenario: FederatedScenario = payload["scenario"]
    round_index: int = payload["round"]
    client_id: int = payload["client"]
    store = _store(ctx)
    cell = _cell(ctx, scenario)
    fingerprint = scenario.fingerprint()
    client = cell.clients[client_id]
    update = client.local_update(
        cell.template, _global_state(store, cell, fingerprint, round_index), round_index
    )
    key = update_key(fingerprint, round_index, client_id)
    store.put_state(key, update)
    return {
        "round": round_index,
        "client": client_id,
        "num_samples": client.num_samples,
        "malicious": isinstance(client, MaliciousClient),
        "key": key,
    }


def _execute_fed_round(ctx: Dict, task: Task) -> Dict:
    payload = task.payload
    scenario: FederatedScenario = payload["scenario"]
    round_index: int = payload["round"]
    store = _store(ctx)
    cell = _cell(ctx, scenario)
    fingerprint = scenario.fingerprint()
    # Fixed client-id order: aggregation must not depend on which worker
    # finished first, or resumed runs would drift numerically.
    participants = scenario.participants(round_index)
    updates: List[Dict[str, np.ndarray]] = []
    weights: List[float] = []
    for client_id in participants:
        update = store.get_state(update_key(fingerprint, round_index, client_id))
        if update is None:
            raise RuntimeError(
                f"client update {update_key(fingerprint, round_index, client_id)} "
                "missing from artifact store"
            )
        updates.append(update)
        weights.append(float(cell.clients[client_id].num_samples))
    if scenario.aggregation == "fedavg":
        new_state = fedavg(updates, weights)
    elif scenario.aggregation == "trimmed_mean":
        new_state = trimmed_mean(updates)
    elif scenario.aggregation == "krum":
        new_state = krum(updates, num_malicious=scenario.threat().num_malicious(scenario.num_clients))
    else:
        raise ValueError(f"unknown aggregation {scenario.aggregation!r}")
    previous = _global_state(store, cell, fingerprint, round_index)
    agg_norm = _state_delta_norm(previous, new_state)
    key = state_key(fingerprint, round_index)
    store.put_state(key, new_state)
    evaluator = copy.deepcopy(cell.template)
    evaluator.load_state_dict(new_state)
    metrics = evaluate_backdoor_metrics(evaluator, cell.test_set, cell.attack)
    emit(
        "federated.round", _SOURCE,
        scenario=fingerprint,
        round=round_index, rounds=scenario.rounds,
        clients=scenario.num_clients,
        malicious_fraction=scenario.malicious_fraction,
        participants=len(participants),
        acc=metrics.acc, asr=metrics.asr, ra=metrics.ra,
        agg_norm=agg_norm,
    )
    return {
        "round": round_index,
        "metrics": _metrics_dict(metrics),
        "agg_norm": agg_norm,
        "participants": len(participants),
        "key": key,
    }


def _execute_fed_defense(ctx: Dict, task: Task) -> Dict:
    payload = task.payload
    scenario: FederatedScenario = payload["scenario"]
    round_index: int = payload["round"]
    defense_name: str = payload["defense"]
    store = _store(ctx)
    cell = _cell(ctx, scenario)
    fingerprint = scenario.fingerprint()
    state = store.get_state(state_key(fingerprint, round_index))
    if state is None:
        raise RuntimeError(
            f"global model {state_key(fingerprint, round_index)} missing from artifact store"
        )
    model = copy.deepcopy(cell.template)
    model.load_state_dict(state)
    budget = DefenderBudget(spc=payload["spc"], trial=0, seed=scenario.seed + 0xD)
    data = budget.draw(cell.reservoir, cell.attack)
    defense = build_defense(defense_name, **(payload.get("defense_kwargs") or {}))
    report = defense.apply(model, data)
    metrics = evaluate_backdoor_metrics(model, cell.test_set, cell.attack)
    emit(
        "federated.defense", _SOURCE,
        scenario=fingerprint,
        round=round_index,
        defense=defense_name,
        clients=scenario.num_clients,
        malicious_fraction=scenario.malicious_fraction,
        acc=metrics.acc, asr=metrics.asr, ra=metrics.ra,
    )
    return {
        "round": round_index,
        "defense": defense_name,
        "metrics": _metrics_dict(metrics),
        "report": {k: v for k, v in report.details.items() if isinstance(v, (int, float, str, bool))},
    }


_EXECUTORS = {
    "fed_client": _execute_fed_client,
    "fed_round": _execute_fed_round,
    "fed_defense": _execute_fed_defense,
}


def execute_federated_task(ctx: Dict, task: Task, attempt: int) -> Dict:
    """Pool entry point for federated task kinds."""
    try:
        executor = _EXECUTORS[task.kind]
    except KeyError:
        raise ValueError(f"unknown task kind {task.kind!r} for {task.task_id}") from None
    return executor(ctx, task)
