"""Federated clients: honest local training and backdoor-injecting clients.

Paper §I names federated learning as a setting where adversaries can
manipulate training: a participant controls its own data and local updates.
:class:`MaliciousClient` implements the standard model-replacement attack
(Bagdasaryan et al., 2020): train on locally poisoned data, then scale the
update toward the poisoned optimum so it survives averaging with honest
updates.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional

import numpy as np

from ..attacks.base import BackdoorAttack
from ..attacks.poisoner import poison_dataset
from ..data.dataset import ImageDataset
from ..nn.module import Module
from ..training import TrainConfig, train_classifier

__all__ = ["FederatedClient", "MaliciousClient"]

StateDict = Dict[str, np.ndarray]


class FederatedClient:
    """Honest participant: local SGD on private data.

    Parameters
    ----------
    client_id:
        Stable identifier (used for seeding and logs).
    dataset:
        The client's private training data.
    epochs, lr, batch_size:
        Local-update hyperparameters.
    """

    def __init__(
        self,
        client_id: int,
        dataset: ImageDataset,
        epochs: int = 1,
        lr: float = 0.05,
        batch_size: int = 32,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError(f"client {client_id} has no data")
        self.client_id = client_id
        self.dataset = dataset
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def _training_data(self, round_index: Optional[int] = None) -> ImageDataset:
        return self.dataset

    def local_update(
        self,
        model_template: Module,
        global_state: StateDict,
        round_index: Optional[int] = None,
    ) -> StateDict:
        """Train a local copy from the global weights; return new weights.

        ``round_index`` (when given) keys all per-round randomness, so the
        update is a pure function of ``(client, round, global_state)`` — the
        property the sharded scheduler relies on to re-execute a client task
        on any worker (or on resume) and obtain bitwise-identical weights.
        """
        local = copy.deepcopy(model_template)
        local.load_state_dict(global_state)
        config = TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            shuffle_seed=(
                self.client_id if round_index is None
                else self.client_id + 100_003 * (round_index + 1)
            ),
        )
        train_classifier(local, self._training_data(round_index), config)
        return local.state_dict()


class MaliciousClient(FederatedClient):
    """Backdoor-injecting participant with model-replacement boosting.

    Parameters
    ----------
    attack:
        Trigger to embed (all-to-one).
    poison_ratio:
        Fraction of the client's local data poisoned each round.
    boost:
        Update scaling ``w = global + boost * (w_local - global)``; values
        around ``num_clients / client_fraction`` approximate full model
        replacement, smaller values are stealthier.
    """

    def __init__(
        self,
        client_id: int,
        dataset: ImageDataset,
        attack: BackdoorAttack,
        poison_ratio: float = 0.3,
        boost: float = 1.0,
        epochs: int = 1,
        lr: float = 0.05,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(client_id, dataset, epochs, lr, batch_size)
        if boost <= 0:
            raise ValueError(f"boost must be positive, got {boost}")
        self.attack = attack
        self.poison_ratio = poison_ratio
        self.boost = boost
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def _training_data(self, round_index: Optional[int] = None) -> ImageDataset:
        # With a round index the poison draw is a pure function of
        # (seed, client, round); without one the stateful RNG preserves the
        # legacy sequential behaviour.
        rng = (
            self._rng
            if round_index is None
            else np.random.default_rng([self.seed, self.client_id, round_index])
        )
        # Non-IID shards can be tiny or pure-target-class; a compromised
        # client still always poisons at least one relabelable sample if it
        # holds any (and trains plainly otherwise).
        if (self.dataset.labels != self.attack.target_class).sum() == 0:
            return self.dataset
        ratio = min(max(self.poison_ratio, 0.51 / len(self.dataset)), 0.999)
        poisoned, _info = poison_dataset(self.dataset, self.attack, ratio, rng)
        return poisoned

    def local_update(
        self,
        model_template: Module,
        global_state: StateDict,
        round_index: Optional[int] = None,
    ) -> StateDict:
        update = super().local_update(model_template, global_state, round_index)
        if self.boost == 1.0:
            return update
        boosted: StateDict = {}
        for key, global_value in global_state.items():
            boosted[key] = global_value + self.boost * (update[key] - global_value)
        return boosted
