"""Threat-model layer: who is malicious, and how hard do they push.

The federated grid varies the *fraction* of compromised clients and the
attack they mount.  :class:`ThreatModel` turns those knobs into a concrete
client population:

- ``boost`` mode is the stealthy scaled-update attack (Bagdasaryan et al.,
  2020) with a fixed amplification factor;
- ``replacement`` mode resolves the boost to ``num_clients /
  client_fraction`` at build time — the classic model-replacement setting
  where one update (approximately) overwrites the average;
- ``none`` disables compromise entirely (clean-control arm).

Everything here is deterministic given the seed: the same threat model
applied to the same partition yields the same malicious-id set on every
process, which is what lets the sharded scheduler rebuild clients inside
any worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

import numpy as np

from ..attacks.base import BackdoorAttack
from ..data.dataset import ImageDataset
from .client import FederatedClient, MaliciousClient

__all__ = ["ThreatModel", "build_clients"]

ATTACK_MODES = ("none", "boost", "replacement")


@dataclass(frozen=True)
class ThreatModel:
    """Malicious-client population and attack style for one federated run.

    Parameters
    ----------
    malicious_fraction:
        Fraction of the client population that is compromised.  Any
        positive fraction yields at least one malicious client.
    attack_mode:
        ``"none"`` | ``"boost"`` | ``"replacement"``.
    boost:
        Update amplification for ``"boost"`` mode (ignored by the others).
    poison_ratio:
        Fraction of each malicious client's local data poisoned per round.
    """

    malicious_fraction: float = 0.125
    attack_mode: str = "boost"
    boost: float = 4.0
    poison_ratio: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.malicious_fraction < 1.0:
            raise ValueError(
                f"malicious_fraction must be in [0, 1), got {self.malicious_fraction}"
            )
        if self.attack_mode not in ATTACK_MODES:
            raise ValueError(
                f"unknown attack_mode {self.attack_mode!r}; choose from {ATTACK_MODES}"
            )
        if self.boost <= 0:
            raise ValueError(f"boost must be positive, got {self.boost}")
        if not 0.0 < self.poison_ratio <= 1.0:
            raise ValueError(f"poison_ratio must be in (0, 1], got {self.poison_ratio}")

    # ------------------------------------------------------------------
    def num_malicious(self, num_clients: int) -> int:
        """Compromised-client count: rounds, but never zero for f > 0."""
        if self.attack_mode == "none" or self.malicious_fraction == 0.0:
            return 0
        return min(
            num_clients - 1,
            max(1, int(round(self.malicious_fraction * num_clients))),
        )

    def resolve_boost(self, num_clients: int, client_fraction: float = 1.0) -> float:
        """Effective update scaling for this population."""
        if self.attack_mode == "replacement":
            return float(num_clients) / max(client_fraction, 1e-9)
        return self.boost

    def malicious_ids(self, num_clients: int, seed: int = 0) -> FrozenSet[int]:
        """Deterministic compromised-id set (uniform draw keyed by seed)."""
        count = self.num_malicious(num_clients)
        if count == 0:
            return frozenset()
        rng = np.random.default_rng([seed, 0xFED])
        return frozenset(
            int(i) for i in rng.choice(num_clients, size=count, replace=False)
        )


def build_clients(
    shards: Sequence[ImageDataset],
    threat: ThreatModel,
    attack: Optional[BackdoorAttack],
    *,
    client_fraction: float = 1.0,
    local_epochs: int = 1,
    lr: float = 0.05,
    batch_size: int = 32,
    seed: int = 0,
) -> List[FederatedClient]:
    """Materialize the client population for a partition under a threat model.

    Honest clients train plainly on their shard; compromised ones poison
    ``threat.poison_ratio`` of it each round and scale their update by the
    resolved boost.
    """
    num_clients = len(shards)
    malicious = threat.malicious_ids(num_clients, seed)
    if malicious and attack is None:
        raise ValueError("threat model compromises clients but no attack was given")
    boost = threat.resolve_boost(num_clients, client_fraction)
    clients: List[FederatedClient] = []
    for client_id, shard in enumerate(shards):
        if client_id in malicious:
            clients.append(
                MaliciousClient(
                    client_id, shard, attack,
                    poison_ratio=threat.poison_ratio, boost=boost,
                    epochs=local_epochs, lr=lr, batch_size=batch_size,
                    seed=seed + client_id,
                )
            )
        else:
            clients.append(
                FederatedClient(
                    client_id, shard,
                    epochs=local_epochs, lr=lr, batch_size=batch_size,
                )
            )
    return clients
