"""Federated simulation helpers: data partitioning and end-to-end runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..attacks.base import BackdoorAttack
from ..data.dataset import ImageDataset
from ..eval.metrics import BackdoorMetrics, evaluate_backdoor_metrics
from ..nn.module import Module
from ..telemetry import emit
from .client import FederatedClient, MaliciousClient
from .server import FederatedServer

__all__ = [
    "split_dataset_iid",
    "split_dataset_dirichlet",
    "split_dataset",
    "FederatedRunLog",
    "run_federated_backdoor",
]

_SOURCE = "federated"


def split_dataset_iid(
    dataset: ImageDataset, num_clients: int, rng: Optional[np.random.Generator] = None
) -> List[ImageDataset]:
    """Uniformly partition a dataset into ``num_clients`` shards."""
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if num_clients > len(dataset):
        raise ValueError("more clients than samples")
    rng = rng if rng is not None else np.random.default_rng()
    order = rng.permutation(len(dataset))
    shards = np.array_split(order, num_clients)
    return [dataset.subset(shard) for shard in shards]


def split_dataset_dirichlet(
    dataset: ImageDataset,
    num_clients: int,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> List[ImageDataset]:
    """Non-IID partition: per-class Dirichlet(alpha) allocation over clients.

    Small ``alpha`` concentrates each class on few clients (the standard
    federated non-IID benchmark construction).  The result is an exact
    partition — every sample lands on exactly one client and no client is
    left empty: clients emptied by the draw are rescued by *moving* one
    sample from the currently largest client (never by duplicating).
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if num_clients > len(dataset):
        raise ValueError("more clients than samples")
    rng = rng if rng is not None else np.random.default_rng()
    assignments: List[List[int]] = [[] for _ in range(num_clients)]
    for cls in range(dataset.num_classes):
        members = np.flatnonzero(dataset.labels == cls)
        rng.shuffle(members)
        proportions = rng.dirichlet(np.full(num_clients, alpha))
        counts = np.floor(proportions * len(members)).astype(int)
        counts[-1] = len(members) - counts[:-1].sum()
        start = 0
        for client, count in enumerate(counts):
            assignments[client].extend(int(i) for i in members[start : start + count])
            start += count
    for client in range(num_clients):
        while not assignments[client]:
            donor = max(range(num_clients), key=lambda c: len(assignments[c]))
            if len(assignments[donor]) <= 1:
                raise ValueError("cannot rescue empty client without emptying another")
            donor_pool = assignments[donor]
            assignments[client].append(donor_pool.pop(int(rng.integers(0, len(donor_pool)))))
    return [dataset.subset(np.array(sorted(idx))) for idx in assignments]


def split_dataset(
    dataset: ImageDataset,
    num_clients: int,
    partition: str = "iid",
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> List[ImageDataset]:
    """Dispatch to the IID or Dirichlet partitioner by name."""
    if partition == "iid":
        return split_dataset_iid(dataset, num_clients, rng)
    if partition == "dirichlet":
        return split_dataset_dirichlet(dataset, num_clients, alpha=alpha, rng=rng)
    raise ValueError(f"unknown partition {partition!r}; use 'iid' or 'dirichlet'")


@dataclass
class FederatedRunLog:
    """Per-round global-model metrics of a federated backdoor run."""

    rounds: List[BackdoorMetrics] = field(default_factory=list)

    @property
    def final(self) -> BackdoorMetrics:
        if not self.rounds:
            raise ValueError(
                "no federated rounds recorded yet — FederatedRunLog.final is only "
                "available after at least one server round has been evaluated"
            )
        return self.rounds[-1]

    def asr_trajectory(self) -> List[float]:
        return [m.asr for m in self.rounds]

    def acc_trajectory(self) -> List[float]:
        return [m.acc for m in self.rounds]


def _state_delta_norm(before, after) -> float:
    """L2 norm of the global-model update (aggregation norm telemetry)."""
    total = 0.0
    for key, old in before.items():
        diff = np.asarray(after[key], dtype=np.float64) - np.asarray(old, dtype=np.float64)
        total += float((diff * diff).sum())
    return float(np.sqrt(total))


def run_federated_backdoor(
    model: Module,
    train_set: ImageDataset,
    test_set: ImageDataset,
    attack: BackdoorAttack,
    num_clients: int = 8,
    num_malicious: int = 1,
    rounds: int = 5,
    local_epochs: int = 1,
    boost: float = 4.0,
    client_fraction: float = 1.0,
    aggregation: str = "fedavg",
    lr: float = 0.05,
    partition: str = "iid",
    alpha: float = 0.5,
    poison_ratio: float = 0.3,
    seed: int = 0,
) -> Tuple[FederatedServer, FederatedRunLog]:
    """Run a full federated training with embedded malicious clients.

    ``partition`` selects IID or Dirichlet(``alpha``) client sharding, and
    ``poison_ratio`` sets the malicious clients' per-round local poisoning
    fraction.  Each evaluated round is streamed through the telemetry bus
    as a ``federated.round`` event (round index, ACC/ASR/RA, aggregation
    norm), so runs show up live in ``repro watch``.

    Returns the server (holding the final global model) and per-round
    metrics, so callers can both inspect the attack's dynamics and hand the
    compromised global model to a defense.
    """
    if not 0 <= num_malicious < num_clients:
        raise ValueError("need 0 <= num_malicious < num_clients")
    rng = np.random.default_rng(seed)
    shards = split_dataset(train_set, num_clients, partition=partition, alpha=alpha, rng=rng)
    clients: List[FederatedClient] = []
    for client_id, shard in enumerate(shards):
        if client_id < num_malicious:
            clients.append(
                MaliciousClient(
                    client_id, shard, attack,
                    poison_ratio=poison_ratio, boost=boost,
                    epochs=local_epochs, lr=lr, seed=seed + client_id,
                )
            )
        else:
            clients.append(
                FederatedClient(client_id, shard, epochs=local_epochs, lr=lr)
            )
    server = FederatedServer(
        model, clients, client_fraction=client_fraction,
        aggregation=aggregation, seed=seed,
    )
    emit(
        "federated.run_started", _SOURCE,
        num_clients=num_clients, num_malicious=num_malicious, rounds=rounds,
        partition=partition, alpha=alpha, poison_ratio=poison_ratio,
        aggregation=aggregation, boost=boost,
    )
    log = FederatedRunLog()
    for round_index in range(rounds):
        before = {k: v.copy() for k, v in model.state_dict().items()}
        participants = server.run_round(round_index)
        metrics = evaluate_backdoor_metrics(model, test_set, attack)
        log.rounds.append(metrics)
        emit(
            "federated.round", _SOURCE,
            round=round_index, rounds=rounds,
            acc=metrics.acc, asr=metrics.asr, ra=metrics.ra,
            participants=len(participants),
            agg_norm=_state_delta_norm(before, model.state_dict()),
        )
    emit(
        "federated.run_finished", _SOURCE,
        rounds=len(log.rounds),
        acc=log.final.acc, asr=log.final.asr, ra=log.final.ra,
    )
    return server, log
