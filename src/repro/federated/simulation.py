"""Federated simulation helpers: data partitioning and end-to-end runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..attacks.base import BackdoorAttack
from ..data.dataset import ImageDataset
from ..eval.metrics import BackdoorMetrics, evaluate_backdoor_metrics
from ..nn.module import Module
from .client import FederatedClient, MaliciousClient
from .server import FederatedServer

__all__ = ["split_dataset_iid", "split_dataset_dirichlet", "FederatedRunLog", "run_federated_backdoor"]


def split_dataset_iid(
    dataset: ImageDataset, num_clients: int, rng: Optional[np.random.Generator] = None
) -> List[ImageDataset]:
    """Uniformly partition a dataset into ``num_clients`` shards."""
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if num_clients > len(dataset):
        raise ValueError("more clients than samples")
    rng = rng if rng is not None else np.random.default_rng()
    order = rng.permutation(len(dataset))
    shards = np.array_split(order, num_clients)
    return [dataset.subset(shard) for shard in shards]


def split_dataset_dirichlet(
    dataset: ImageDataset,
    num_clients: int,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> List[ImageDataset]:
    """Non-IID partition: per-class Dirichlet(alpha) allocation over clients.

    Small ``alpha`` concentrates each class on few clients (the standard
    federated non-IID benchmark construction).  Clients left empty by the
    draw receive one random sample so every client stays trainable.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = rng if rng is not None else np.random.default_rng()
    assignments: List[List[int]] = [[] for _ in range(num_clients)]
    for cls in range(dataset.num_classes):
        members = np.flatnonzero(dataset.labels == cls)
        rng.shuffle(members)
        proportions = rng.dirichlet(np.full(num_clients, alpha))
        counts = np.floor(proportions * len(members)).astype(int)
        counts[-1] = len(members) - counts[:-1].sum()
        start = 0
        for client, count in enumerate(counts):
            assignments[client].extend(members[start : start + count])
            start += count
    for client in range(num_clients):
        if not assignments[client]:
            assignments[client].append(int(rng.integers(0, len(dataset))))
    return [dataset.subset(np.array(sorted(idx))) for idx in assignments]


@dataclass
class FederatedRunLog:
    """Per-round global-model metrics of a federated backdoor run."""

    rounds: List[BackdoorMetrics] = field(default_factory=list)

    @property
    def final(self) -> BackdoorMetrics:
        if not self.rounds:
            raise ValueError("no rounds recorded")
        return self.rounds[-1]


def run_federated_backdoor(
    model: Module,
    train_set: ImageDataset,
    test_set: ImageDataset,
    attack: BackdoorAttack,
    num_clients: int = 8,
    num_malicious: int = 1,
    rounds: int = 5,
    local_epochs: int = 1,
    boost: float = 4.0,
    client_fraction: float = 1.0,
    aggregation: str = "fedavg",
    lr: float = 0.05,
    seed: int = 0,
) -> Tuple[FederatedServer, FederatedRunLog]:
    """Run a full federated training with embedded malicious clients.

    Returns the server (holding the final global model) and per-round
    metrics, so callers can both inspect the attack's dynamics and hand the
    compromised global model to a defense.
    """
    if not 0 <= num_malicious < num_clients:
        raise ValueError("need 0 <= num_malicious < num_clients")
    rng = np.random.default_rng(seed)
    shards = split_dataset_iid(train_set, num_clients, rng)
    clients: List[FederatedClient] = []
    for client_id, shard in enumerate(shards):
        if client_id < num_malicious:
            clients.append(
                MaliciousClient(
                    client_id, shard, attack,
                    poison_ratio=0.3, boost=boost,
                    epochs=local_epochs, lr=lr, seed=seed + client_id,
                )
            )
        else:
            clients.append(
                FederatedClient(client_id, shard, epochs=local_epochs, lr=lr)
            )
    server = FederatedServer(
        model, clients, client_fraction=client_fraction,
        aggregation=aggregation, seed=seed,
    )
    log = FederatedRunLog()
    for _round in range(rounds):
        server.run_round()
        log.rounds.append(evaluate_backdoor_metrics(model, test_set, attack))
    return server, log
