"""Federated server: client sampling, FedAvg aggregation, robust variants.

Besides plain FedAvg (McMahan et al., 2017), the server supports
coordinate-wise **trimmed-mean** aggregation (Yin et al., 2018) as the
standard robust baseline — useful for showing that simple robust
aggregation only partially blunts model-replacement backdoors, which
motivates post-hoc repair (Grad-Prune) at the server.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.module import Module
from .client import FederatedClient

__all__ = ["FederatedServer", "fedavg", "trimmed_mean", "krum"]

StateDict = Dict[str, np.ndarray]


def fedavg(updates: Sequence[StateDict], weights: Sequence[float]) -> StateDict:
    """Sample-count-weighted average of client state dicts."""
    if not updates:
        raise ValueError("no updates to aggregate")
    if len(updates) != len(weights):
        raise ValueError("updates and weights length mismatch")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    result: StateDict = {}
    for key in updates[0]:
        stacked = np.stack([u[key] for u in updates])
        w = np.asarray(weights, dtype=np.float64) / total
        result[key] = np.tensordot(w, stacked, axes=1).astype(stacked.dtype)
    return result


def trimmed_mean(updates: Sequence[StateDict], trim: int = 1) -> StateDict:
    """Coordinate-wise trimmed mean: drop the ``trim`` largest and smallest.

    Requires ``len(updates) > 2 * trim``.
    """
    if not updates:
        raise ValueError("no updates to aggregate")
    if len(updates) <= 2 * trim:
        raise ValueError(
            f"need more than {2 * trim} updates for trim={trim}, got {len(updates)}"
        )
    result: StateDict = {}
    for key in updates[0]:
        stacked = np.sort(np.stack([u[key] for u in updates]), axis=0)
        kept = stacked[trim : len(updates) - trim] if trim else stacked
        result[key] = kept.mean(axis=0).astype(stacked.dtype)
    return result


def _flatten(update: StateDict) -> np.ndarray:
    return np.concatenate([update[key].ravel() for key in sorted(update)])


def krum(updates: Sequence[StateDict], num_malicious: int = 1) -> StateDict:
    """Krum aggregation (Blanchard et al., 2017): pick the most central update.

    Each update is scored by the sum of squared distances to its
    ``n - f - 2`` nearest neighbours; the update with the smallest score is
    taken verbatim.  Requires ``len(updates) >= num_malicious + 3``.
    """
    n = len(updates)
    f = num_malicious
    if n < f + 3:
        raise ValueError(f"Krum needs >= f + 3 = {f + 3} updates, got {n}")
    vectors = np.stack([_flatten(u) for u in updates]).astype(np.float64)
    # Pairwise squared distances.
    squared_norms = (vectors ** 2).sum(axis=1)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * vectors @ vectors.T
    np.fill_diagonal(distances, np.inf)
    neighbours = n - f - 2
    scores = np.sort(distances, axis=1)[:, :neighbours].sum(axis=1)
    winner = int(scores.argmin())
    return {key: value.copy() for key, value in updates[winner].items()}


class FederatedServer:
    """Round orchestration over a fixed client population.

    Parameters
    ----------
    model:
        The global model (mutated in place each round).
    clients:
        Participating clients (honest and/or malicious).
    client_fraction:
        Fraction of clients sampled per round.
    aggregation:
        ``"fedavg"``, ``"trimmed_mean"``, or ``"krum"``.
    trim:
        Per-side trim count for trimmed-mean; doubles as Krum's assumed
        malicious count.
    seed:
        Client-sampling seed.
    """

    def __init__(
        self,
        model: Module,
        clients: Sequence[FederatedClient],
        client_fraction: float = 1.0,
        aggregation: str = "fedavg",
        trim: int = 1,
        seed: int = 0,
    ) -> None:
        if not clients:
            raise ValueError("need at least one client")
        if not 0.0 < client_fraction <= 1.0:
            raise ValueError(f"client_fraction must be in (0, 1], got {client_fraction}")
        if aggregation not in ("fedavg", "trimmed_mean", "krum"):
            raise ValueError(f"unknown aggregation {aggregation!r}")
        self.model = model
        self.clients = list(clients)
        self.client_fraction = client_fraction
        self.aggregation = aggregation
        self.trim = trim
        self._rng = np.random.default_rng(seed)

    def sample_clients(self) -> List[FederatedClient]:
        """Draw this round's participants."""
        count = max(1, int(round(self.client_fraction * len(self.clients))))
        indices = self._rng.choice(len(self.clients), size=count, replace=False)
        return [self.clients[i] for i in indices]

    def run_round(self, round_index: Optional[int] = None) -> List[int]:
        """One federated round; returns the participating client ids.

        ``round_index`` keys per-round client randomness (see
        :meth:`FederatedClient.local_update`); omitting it keeps the legacy
        stateful-RNG behaviour.
        """
        participants = self.sample_clients()
        global_state = self.model.state_dict()
        updates = [
            c.local_update(self.model, global_state, round_index) for c in participants
        ]
        if self.aggregation == "fedavg":
            new_state = fedavg(updates, [c.num_samples for c in participants])
        elif self.aggregation == "trimmed_mean":
            new_state = trimmed_mean(updates, trim=self.trim)
        else:
            new_state = krum(updates, num_malicious=self.trim)
        self.model.load_state_dict(new_state)
        return [c.client_id for c in participants]

    def run(self, rounds: int) -> List[List[int]]:
        """Run multiple rounds; returns per-round participant ids."""
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        return [self.run_round(r) for r in range(rounds)]
