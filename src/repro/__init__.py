"""Reproduction of "Unlearning Backdoor Attacks through Gradient-Based Model
Pruning" (Dunnett et al., DSN 2024).

Top-level packages
------------------
``repro.nn``
    From-scratch numpy autograd / CNN substrate (replaces PyTorch).
``repro.models``
    PreactResNet-18, VGG-19+BN, EfficientNet-B3, MobileNetV3-Large (scaled).
``repro.data``
    Synthetic CIFAR-10-like and GTSRB-like datasets, loaders, SPC sampling.
``repro.attacks``
    BadNets, Blended, Low-Frequency, BPP backdoor attacks + poisoner.
``repro.defenses``
    Baselines: FT, Fine-Pruning, NAD, CLP, FT-SAM, ANP.
``repro.core``
    The paper's contribution: gradient-based unlearning pruning (Grad-Prune).
``repro.eval``
    BackdoorBench-style ACC/ASR/RA evaluation harness.
"""

__version__ = "1.0.0"

from . import nn  # noqa: F401  (ensure substrate import order)
from . import attacks, core, data, defenses, eval, federated, models, synthesis, utils  # noqa: F401
from .training import TrainConfig, evaluate_accuracy, predict, train_classifier

__all__ = [
    "nn",
    "models",
    "data",
    "attacks",
    "defenses",
    "core",
    "eval",
    "federated",
    "synthesis",
    "utils",
    "TrainConfig",
    "train_classifier",
    "evaluate_accuracy",
    "predict",
    "__version__",
]
