"""PreactResNet-18 (He et al., 2016, pre-activation variant).

The paper's primary CIFAR-10/GTSRB architecture.  Structure is faithful —
four stages of two pre-activation basic blocks each, with stride-2
downsampling at stage entries and a 1x1 shortcut projection when shape
changes — while the base width is configurable so the reproduction can run
on CPU (BackdoorBench uses base width 64; our quick profile uses 8-16).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.layers import AdaptiveAvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear
from ..nn.module import Module, ModuleList, Sequential
from ..nn.tensor import Tensor

__all__ = ["PreActBlock", "PreActResNet18", "preact_resnet18"]


class PreActBlock(Module):
    """Pre-activation basic block: BN-ReLU-Conv, BN-ReLU-Conv + shortcut."""

    def __init__(self, in_planes: int, planes: int, stride: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.bn1 = BatchNorm2d(in_planes)
        self.conv1 = Conv2d(in_planes, planes, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(planes)
        self.conv2 = Conv2d(planes, planes, 3, stride=1, padding=1, bias=False, rng=rng)
        self.has_shortcut = stride != 1 or in_planes != planes
        if self.has_shortcut:
            self.shortcut = Conv2d(in_planes, planes, 1, stride=stride, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(x).relu()
        shortcut = self.shortcut(out) if self.has_shortcut else x
        out = self.conv1(out)
        out = self.conv2(self.bn2(out).relu())
        return out + shortcut


class PreActResNet18(Module):
    """PreactResNet-18 for 32x32 inputs.

    Parameters
    ----------
    num_classes:
        Output classes (10 for SynthCIFAR, configurable for SynthGTSRB).
    base_width:
        Channels of the first stage; stages use (w, 2w, 4w, 8w).
    seed:
        Initialization seed (deterministic construction).
    """

    def __init__(self, num_classes: int = 10, base_width: int = 16, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        widths = [base_width, base_width * 2, base_width * 4, base_width * 8]
        self.conv1 = Conv2d(3, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)

        blocks = []
        in_planes = widths[0]
        for stage, planes in enumerate(widths):
            stride = 1 if stage == 0 else 2
            blocks.append(PreActBlock(in_planes, planes, stride, rng))
            blocks.append(PreActBlock(planes, planes, 1, rng))
            in_planes = planes
        self.blocks = ModuleList(blocks)

        self.bn_final = BatchNorm2d(widths[-1])
        self.pool = AdaptiveAvgPool2d(1)
        self.flatten = Flatten()
        self.fc = Linear(widths[-1], num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv1(x)
        for block in self.blocks:
            out = block(out)
        out = self.bn_final(out).relu()
        out = self.flatten(self.pool(out))
        return self.fc(out)


def preact_resnet18(num_classes: int = 10, base_width: int = 16, seed: int = 0) -> PreActResNet18:
    """Factory matching the registry signature."""
    return PreActResNet18(num_classes=num_classes, base_width=base_width, seed=seed)
