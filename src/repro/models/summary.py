"""Model inspection: layer tables and parameter accounting.

``summarize(model, input_shape)`` runs a probe forward pass with hooks and
returns per-layer rows (name, type, output shape, parameter count) plus
totals — the numpy equivalent of torchsummary, used by the examples and by
DESIGN.md's architecture documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..nn import Tensor, no_grad
from ..nn.module import Module

__all__ = ["LayerRow", "ModelSummary", "summarize"]


@dataclass
class LayerRow:
    """One leaf layer's summary entry."""

    name: str
    type_name: str
    output_shape: Tuple[int, ...]
    num_params: int


@dataclass
class ModelSummary:
    """Full model summary."""

    rows: List[LayerRow]
    total_params: int
    conv_filters: int

    def table(self) -> str:
        """Render as an aligned text table."""
        name_w = max([len(r.name) for r in self.rows] + [5])
        type_w = max([len(r.type_name) for r in self.rows] + [5])
        lines = [
            f"{'layer':<{name_w}}  {'type':<{type_w}}  {'output':<18}  {'params':>9}",
            "-" * (name_w + type_w + 33),
        ]
        for row in self.rows:
            shape = "x".join(str(s) for s in row.output_shape)
            lines.append(
                f"{row.name:<{name_w}}  {row.type_name:<{type_w}}  {shape:<18}  {row.num_params:>9,}"
            )
        lines.append("-" * (name_w + type_w + 33))
        lines.append(f"total parameters: {self.total_params:,}")
        lines.append(f"prunable conv filters: {self.conv_filters:,}")
        return "\n".join(lines)


def summarize(model: Module, input_shape: Tuple[int, int, int] = (3, 32, 32)) -> ModelSummary:
    """Probe ``model`` with a single zero image and collect per-layer rows.

    Only leaf modules (no children) appear as rows; containers are skipped.
    """
    from .pruning_utils import count_filters

    rows: List[LayerRow] = []
    handles = []
    for name, module in model.named_modules():
        if module._modules or not name:
            continue  # containers and the root

        def hook(mod, output, _name=name):
            own_params = sum(p.data.size for p in mod._parameters.values() if p is not None)
            rows.append(
                LayerRow(
                    name=_name,
                    type_name=mod.__class__.__name__,
                    output_shape=tuple(output.shape[1:]),
                    num_params=own_params,
                )
            )

        handles.append(module.register_forward_hook(hook))

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model(Tensor(np.zeros((1, *input_shape), dtype=np.float32)))
    finally:
        for handle in handles:
            handle.remove()
        model.train(was_training)

    return ModelSummary(
        rows=rows,
        total_params=model.num_parameters(),
        conv_filters=count_filters(model),
    )
