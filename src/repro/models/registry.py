"""Model registry: build any paper architecture by name.

Two size profiles are provided.  ``"quick"`` (default) is sized for CPU
training in seconds-to-minutes; ``"paper"`` uses the published widths.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..nn.module import Module
from .efficientnet import efficientnet_b3
from .mobilenet import mobilenet_v3_large
from .preact_resnet import preact_resnet18
from .vgg import vgg19_bn

__all__ = ["MODEL_NAMES", "build_model"]

MODEL_NAMES = ("preact_resnet18", "vgg19_bn", "efficientnet_b3", "mobilenet_v3_large")

_QUICK_KWARGS: Dict[str, Dict[str, Any]] = {
    "preact_resnet18": {"base_width": 8},
    "vgg19_bn": {"width_mult": 0.125},
    "efficientnet_b3": {"width_mult": 0.2, "depth_mult": 0.15},
    "mobilenet_v3_large": {"width_mult": 0.25, "max_blocks": 6},
}

_PAPER_KWARGS: Dict[str, Dict[str, Any]] = {
    "preact_resnet18": {"base_width": 64},
    "vgg19_bn": {"width_mult": 1.0},
    "efficientnet_b3": {"width_mult": 1.0, "depth_mult": 1.0},
    "mobilenet_v3_large": {"width_mult": 1.0, "max_blocks": 15},
}

_FACTORIES: Dict[str, Callable[..., Module]] = {
    "preact_resnet18": preact_resnet18,
    "vgg19_bn": vgg19_bn,
    "efficientnet_b3": efficientnet_b3,
    "mobilenet_v3_large": mobilenet_v3_large,
}


def build_model(
    name: str,
    num_classes: int = 10,
    profile: str = "quick",
    seed: int = 0,
    **overrides: Any,
) -> Module:
    """Instantiate a model by registry name.

    Parameters
    ----------
    name:
        One of :data:`MODEL_NAMES`.
    num_classes:
        Output classes.
    profile:
        ``"quick"`` (CPU-sized) or ``"paper"`` (published widths).
    seed:
        Initialization seed.
    overrides:
        Extra keyword arguments forwarded to the factory (take precedence
        over the profile defaults).
    """
    if name not in _FACTORIES:
        raise KeyError(f"unknown model {name!r}; choose from {MODEL_NAMES}")
    if profile == "quick":
        kwargs = dict(_QUICK_KWARGS[name])
    elif profile == "paper":
        kwargs = dict(_PAPER_KWARGS[name])
    else:
        raise ValueError(f"unknown profile {profile!r}; use 'quick' or 'paper'")
    kwargs.update(overrides)
    return _FACTORIES[name](num_classes=num_classes, seed=seed, **kwargs)
