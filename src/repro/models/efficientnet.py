"""EfficientNet-B3 (Tan & Le, 2019), adapted for 32x32 inputs.

Used for GTSRB in the paper (Figure 2).  The defining pieces are all
implemented: MBConv inverted bottlenecks (1x1 expansion, depthwise kxk,
squeeze-and-excitation, 1x1 projection) with SiLU activations and residual
skips, arranged in B3's seven stages.  ``width_mult`` / ``depth_mult`` scale
the channel counts and block counts so the reproduction trains on CPU; 1.0
corresponds to the published B3 configuration (stem included).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..nn.layers import (
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    SiLU,
)
from ..nn.module import Module, ModuleList, Sequential
from ..nn.tensor import Tensor

__all__ = ["SqueezeExcite", "MBConvBlock", "EfficientNetB3", "efficientnet_b3"]


@dataclass(frozen=True)
class _StageSpec:
    expand_ratio: int
    channels: int
    repeats: int
    stride: int
    kernel: int


# EfficientNet-B3 stage table (channels/repeats already width-1.2/depth-1.4
# scaled from B0, as in the paper's Table 1 lineage).
_B3_STAGES: List[_StageSpec] = [
    _StageSpec(1, 24, 2, 1, 3),
    _StageSpec(6, 32, 3, 2, 3),
    _StageSpec(6, 48, 3, 2, 5),
    _StageSpec(6, 96, 5, 2, 3),
    _StageSpec(6, 136, 5, 1, 5),
    _StageSpec(6, 232, 6, 2, 5),
    _StageSpec(6, 384, 2, 1, 3),
]
_B3_STEM = 40
_B3_HEAD = 1536


def _scale_channels(channels: int, width_mult: float, divisor: int = 4) -> int:
    scaled = max(divisor, int(round(channels * width_mult / divisor)) * divisor)
    return scaled


def _scale_repeats(repeats: int, depth_mult: float) -> int:
    return max(1, int(math.ceil(repeats * depth_mult)))


class SqueezeExcite(Module):
    """Squeeze-and-excitation channel gate (global pool -> FC -> FC -> sigmoid)."""

    def __init__(self, channels: int, reduced: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.pool = AdaptiveAvgPool2d(1)
        self.fc1 = Conv2d(channels, reduced, 1, rng=rng)
        self.act = SiLU()
        self.fc2 = Conv2d(reduced, channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        gate = self.pool(x)
        gate = self.act(self.fc1(gate))
        gate = self.fc2(gate).sigmoid()
        return x * gate


class MBConvBlock(Module):
    """Mobile inverted bottleneck with SE, as used throughout EfficientNet."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        expand_ratio: int,
        kernel: int,
        stride: int,
        se_ratio: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        expanded = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels
        self.has_expand = expand_ratio != 1
        if self.has_expand:
            self.expand_conv = Conv2d(in_channels, expanded, 1, bias=False, rng=rng)
            self.expand_bn = BatchNorm2d(expanded)
        self.dw_conv = Conv2d(
            expanded, expanded, kernel, stride=stride, padding=kernel // 2,
            groups=expanded, bias=False, rng=rng,
        )
        self.dw_bn = BatchNorm2d(expanded)
        reduced = max(1, int(in_channels * se_ratio))
        self.se = SqueezeExcite(expanded, reduced, rng)
        self.project_conv = Conv2d(expanded, out_channels, 1, bias=False, rng=rng)
        self.project_bn = BatchNorm2d(out_channels)
        self.act = SiLU()

    def forward(self, x: Tensor) -> Tensor:
        out = x
        if self.has_expand:
            out = self.act(self.expand_bn(self.expand_conv(out)))
        out = self.act(self.dw_bn(self.dw_conv(out)))
        out = self.se(out)
        out = self.project_bn(self.project_conv(out))
        if self.use_residual:
            out = out + x
        return out


class EfficientNetB3(Module):
    """EfficientNet-B3 backbone for 32x32 inputs.

    Parameters
    ----------
    num_classes:
        Output classes.
    width_mult, depth_mult:
        Scaling of channels / block repeats relative to published B3
        (1.0 / 1.0 reproduces it; the quick profile uses much smaller values).
    seed:
        Initialization seed.
    """

    def __init__(
        self,
        num_classes: int = 10,
        width_mult: float = 0.25,
        depth_mult: float = 0.34,
        se_ratio: float = 0.25,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        stem_width = _scale_channels(_B3_STEM, width_mult)
        # Stride 1 in the stem: the paper's 224px stem stride-2 would discard
        # too much of a 32px input.
        self.stem = Sequential(
            Conv2d(3, stem_width, 3, stride=1, padding=1, bias=False, rng=rng),
            BatchNorm2d(stem_width),
            SiLU(),
        )
        blocks: List[Module] = []
        in_channels = stem_width
        for spec in _B3_STAGES:
            out_channels = _scale_channels(spec.channels, width_mult)
            repeats = _scale_repeats(spec.repeats, depth_mult)
            for block_index in range(repeats):
                stride = spec.stride if block_index == 0 else 1
                blocks.append(
                    MBConvBlock(
                        in_channels, out_channels, spec.expand_ratio,
                        spec.kernel, stride, se_ratio, rng,
                    )
                )
                in_channels = out_channels
        self.blocks = ModuleList(blocks)
        head_width = _scale_channels(_B3_HEAD, width_mult)
        self.head = Sequential(
            Conv2d(in_channels, head_width, 1, bias=False, rng=rng),
            BatchNorm2d(head_width),
            SiLU(),
        )
        self.pool = AdaptiveAvgPool2d(1)
        self.flatten = Flatten()
        self.fc = Linear(head_width, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        out = self.head(out)
        return self.fc(self.flatten(self.pool(out)))


def efficientnet_b3(
    num_classes: int = 10,
    width_mult: float = 0.25,
    depth_mult: float = 0.34,
    seed: int = 0,
) -> EfficientNetB3:
    """Factory matching the registry signature."""
    return EfficientNetB3(
        num_classes=num_classes, width_mult=width_mult, depth_mult=depth_mult, seed=seed
    )
