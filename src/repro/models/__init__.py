"""Model zoo: the four architectures used in the paper's evaluation."""

from .efficientnet import EfficientNetB3, MBConvBlock, SqueezeExcite, efficientnet_b3
from .mobilenet import InvertedResidual, MobileNetV3Large, mobilenet_v3_large
from .preact_resnet import PreActBlock, PreActResNet18, preact_resnet18
from .pruning_utils import (
    FilterRef,
    PruningMask,
    count_filters,
    iter_conv_layers,
    prune_filter,
    restore_filter,
)
from .registry import MODEL_NAMES, build_model
from .summary import LayerRow, ModelSummary, summarize
from .vgg import VGG19BN, vgg19_bn

__all__ = [
    "PreActBlock",
    "PreActResNet18",
    "preact_resnet18",
    "VGG19BN",
    "vgg19_bn",
    "EfficientNetB3",
    "MBConvBlock",
    "SqueezeExcite",
    "efficientnet_b3",
    "MobileNetV3Large",
    "InvertedResidual",
    "mobilenet_v3_large",
    "MODEL_NAMES",
    "build_model",
    "LayerRow",
    "ModelSummary",
    "summarize",
    "FilterRef",
    "PruningMask",
    "count_filters",
    "iter_conv_layers",
    "prune_filter",
    "restore_filter",
]
