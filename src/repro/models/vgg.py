"""VGG-19 with batch normalization (Simonyan & Zisserman, 2015).

The paper's second CIFAR-10/GTSRB architecture ("VGG-19+BN").  The layer
sequence is the canonical configuration "E" — sixteen 3x3 convolutions in
five max-pooled stages — with channel counts scaled by ``width_mult`` so the
reproduction trains on CPU (1.0 reproduces the original 64..512 widths).
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from ..nn.layers import BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU
from ..nn.module import Module, Sequential
from ..nn.tensor import Tensor

__all__ = ["VGG19BN", "vgg19_bn", "VGG19_CONFIG"]

# Configuration "E": numbers are conv output channels, "M" is 2x2 max pooling.
VGG19_CONFIG: List[Union[int, str]] = [
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, 256, "M",
    512, 512, 512, 512, "M",
    512, 512, 512, 512, "M",
]


class VGG19BN(Module):
    """VGG-19+BN for 32x32 inputs.

    Parameters
    ----------
    num_classes:
        Output classes.
    width_mult:
        Multiplier on the canonical channel counts (minimum 4 channels per
        layer after scaling).
    seed:
        Initialization seed.
    """

    def __init__(self, num_classes: int = 10, width_mult: float = 0.125, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        layers: List[Module] = []
        in_channels = 3
        last_width = in_channels
        for item in VGG19_CONFIG:
            if item == "M":
                layers.append(MaxPool2d(2, 2))
                continue
            width = max(4, int(round(item * width_mult)))
            layers.append(Conv2d(in_channels, width, 3, padding=1, bias=False, rng=rng))
            layers.append(BatchNorm2d(width))
            layers.append(ReLU())
            in_channels = width
            last_width = width
        self.features = Sequential(*layers)
        self.flatten = Flatten()
        # After five 2x-downsamples a 32x32 input is 1x1 spatially.
        self.classifier = Sequential(
            Linear(last_width, max(16, last_width), rng=rng),
            ReLU(),
            Dropout(0.5, rng=rng),
            Linear(max(16, last_width), num_classes, rng=rng),
        )
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.features(x)
        out = self.flatten(out)
        return self.classifier(out)


def vgg19_bn(num_classes: int = 10, width_mult: float = 0.125, seed: int = 0) -> VGG19BN:
    """Factory matching the registry signature."""
    return VGG19BN(num_classes=num_classes, width_mult=width_mult, seed=seed)
