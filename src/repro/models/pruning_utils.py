"""Helpers shared by every pruning-style defense.

All filter-pruning defenses (the paper's Grad-Prune, Fine-Pruning, CLP, ANP)
operate on the out-channels of 2-D convolutions.  This module provides:

- :func:`iter_conv_layers` — enumerate prunable convolutions with stable names;
- :class:`FilterRef` — a (layer name, filter index) handle;
- :func:`prune_filter` / :func:`restore_filter` — zero / restore one filter;
- :class:`PruningMask` — keeps pruned filters at zero through later
  fine-tuning steps (SGD would otherwise regrow them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..nn.inference import invalidate_compiled
from ..nn.layers import Conv2d
from ..nn.module import Module

__all__ = [
    "FilterRef",
    "iter_conv_layers",
    "count_filters",
    "prune_filter",
    "restore_filter",
    "PruningMask",
]


@dataclass(frozen=True)
class FilterRef:
    """Handle identifying one convolutional filter: ``layer`` dot-path + index."""

    layer: str
    index: int

    def __str__(self) -> str:
        return f"{self.layer}[{self.index}]"


def iter_conv_layers(model: Module) -> Iterator[Tuple[str, Conv2d]]:
    """Yield ``(dot_path, Conv2d)`` for every convolution in the model."""
    for name, module in model.named_modules():
        if isinstance(module, Conv2d):
            yield name, module


def count_filters(model: Module) -> int:
    """Total number of prunable conv filters (out-channels) in the model."""
    return sum(conv.out_channels for _, conv in iter_conv_layers(model))


def _get_conv(model: Module, layer: str) -> Conv2d:
    convs = dict(iter_conv_layers(model))
    if layer not in convs:
        raise KeyError(f"no Conv2d named {layer!r}; available: {sorted(convs)[:5]}...")
    return convs[layer]


def prune_filter(model: Module, ref: FilterRef) -> Dict[str, np.ndarray]:
    """Zero the weights (and bias) of one filter; return the saved values.

    The returned dict can be passed to :func:`restore_filter` to undo the
    prune, which the iterative pruning loop uses to back out a step that
    violated the accuracy threshold.
    """
    conv = _get_conv(model, ref.layer)
    if not 0 <= ref.index < conv.out_channels:
        raise IndexError(f"filter index {ref.index} out of range for {ref.layer}")
    invalidate_compiled(model)  # folded eval weights are stale once we mutate
    saved = {"weight": conv.weight.data[ref.index].copy()}
    conv.weight.data[ref.index] = 0.0
    if conv.bias is not None:
        saved["bias"] = np.array(conv.bias.data[ref.index])
        conv.bias.data[ref.index] = 0.0
    return saved


def restore_filter(model: Module, ref: FilterRef, saved: Dict[str, np.ndarray]) -> None:
    """Undo :func:`prune_filter` using its returned snapshot."""
    conv = _get_conv(model, ref.layer)
    invalidate_compiled(model)
    conv.weight.data[ref.index] = saved["weight"]
    if conv.bias is not None and "bias" in saved:
        conv.bias.data[ref.index] = saved["bias"]


class PruningMask:
    """Track pruned filters and re-apply zeros after optimizer updates.

    Fine-tuning a pruned model with SGD would regrow pruned filters because
    their gradients are generally non-zero.  Calling :meth:`apply` after each
    optimizer step keeps them at exactly zero, preserving the prune.
    """

    def __init__(self, model: Module) -> None:
        self._model = model
        self._pruned: Dict[str, List[int]] = {}

    @property
    def pruned_refs(self) -> List[FilterRef]:
        return [FilterRef(layer, i) for layer, idxs in self._pruned.items() for i in idxs]

    def __len__(self) -> int:
        return sum(len(v) for v in self._pruned.values())

    def prune(self, ref: FilterRef) -> Dict[str, np.ndarray]:
        """Prune a filter and remember it for future re-masking."""
        saved = prune_filter(self._model, ref)
        self._pruned.setdefault(ref.layer, []).append(ref.index)
        return saved

    def unprune(self, ref: FilterRef, saved: Dict[str, np.ndarray]) -> None:
        """Restore a filter and forget it."""
        restore_filter(self._model, ref, saved)
        indices = self._pruned.get(ref.layer, [])
        if ref.index in indices:
            indices.remove(ref.index)

    def is_pruned(self, ref: FilterRef) -> bool:
        return ref.index in self._pruned.get(ref.layer, [])

    def apply(self) -> None:
        """Re-zero every pruned filter (call after each optimizer step)."""
        invalidate_compiled(self._model)
        convs = dict(iter_conv_layers(self._model))
        for layer, indices in self._pruned.items():
            conv = convs[layer]
            for index in indices:
                conv.weight.data[index] = 0.0
                if conv.bias is not None:
                    conv.bias.data[index] = 0.0

    def sparsity(self) -> float:
        """Fraction of all conv filters currently pruned."""
        total = count_filters(self._model)
        return len(self) / total if total else 0.0
