"""MobileNetV3-Large (Howard et al., 2019), adapted for 32x32 inputs.

The fourth GTSRB architecture in the paper (Figure 2).  Implements the
network's defining blocks: inverted residual bottlenecks with optional
squeeze-and-excitation (using the hard-sigmoid gate) and the h-swish
activation in the deeper layers.  ``width_mult`` scales channels; 1.0
matches the published large configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..nn.layers import (
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    HardSigmoid,
    HardSwish,
    Linear,
    ReLU,
)
from ..nn.module import Module, ModuleList, Sequential
from ..nn.tensor import Tensor

__all__ = ["InvertedResidual", "MobileNetV3Large", "mobilenet_v3_large"]


@dataclass(frozen=True)
class _BlockSpec:
    kernel: int
    expanded: int
    out: int
    use_se: bool
    use_hswish: bool
    stride: int


# The published MobileNetV3-Large bneck table.
_LARGE_SPECS: List[_BlockSpec] = [
    _BlockSpec(3, 16, 16, False, False, 1),
    _BlockSpec(3, 64, 24, False, False, 2),
    _BlockSpec(3, 72, 24, False, False, 1),
    _BlockSpec(5, 72, 40, True, False, 2),
    _BlockSpec(5, 120, 40, True, False, 1),
    _BlockSpec(5, 120, 40, True, False, 1),
    _BlockSpec(3, 240, 80, False, True, 2),
    _BlockSpec(3, 200, 80, False, True, 1),
    _BlockSpec(3, 184, 80, False, True, 1),
    _BlockSpec(3, 184, 80, False, True, 1),
    _BlockSpec(3, 480, 112, True, True, 1),
    _BlockSpec(3, 672, 112, True, True, 1),
    _BlockSpec(5, 672, 160, True, True, 2),
    _BlockSpec(5, 960, 160, True, True, 1),
    _BlockSpec(5, 960, 160, True, True, 1),
]


def _scale(channels: int, width_mult: float, divisor: int = 4) -> int:
    return max(divisor, int(round(channels * width_mult / divisor)) * divisor)


class _SqueezeExciteHS(Module):
    """SE gate with ReLU + hard-sigmoid, as specified for MobileNetV3."""

    def __init__(self, channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        reduced = max(4, channels // 4)
        self.pool = AdaptiveAvgPool2d(1)
        self.fc1 = Conv2d(channels, reduced, 1, rng=rng)
        self.relu = ReLU()
        self.fc2 = Conv2d(reduced, channels, 1, rng=rng)
        self.gate = HardSigmoid()

    def forward(self, x: Tensor) -> Tensor:
        s = self.pool(x)
        s = self.relu(self.fc1(s))
        s = self.gate(self.fc2(s))
        return x * s


class InvertedResidual(Module):
    """MobileNetV3 bottleneck: 1x1 expand, depthwise kxk, optional SE, 1x1 project."""

    def __init__(
        self,
        in_channels: int,
        spec: _BlockSpec,
        width_mult: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        expanded = _scale(spec.expanded, width_mult)
        out_channels = _scale(spec.out, width_mult)
        self.use_residual = spec.stride == 1 and in_channels == out_channels
        self.out_channels = out_channels
        act = HardSwish() if spec.use_hswish else ReLU()

        self.has_expand = expanded != in_channels
        if self.has_expand:
            self.expand_conv = Conv2d(in_channels, expanded, 1, bias=False, rng=rng)
            self.expand_bn = BatchNorm2d(expanded)
        self.dw_conv = Conv2d(
            expanded, expanded, spec.kernel, stride=spec.stride,
            padding=spec.kernel // 2, groups=expanded, bias=False, rng=rng,
        )
        self.dw_bn = BatchNorm2d(expanded)
        self.se = _SqueezeExciteHS(expanded, rng) if spec.use_se else None
        self.project_conv = Conv2d(expanded, out_channels, 1, bias=False, rng=rng)
        self.project_bn = BatchNorm2d(out_channels)
        self.act = act

    def forward(self, x: Tensor) -> Tensor:
        out = x
        if self.has_expand:
            out = self.act(self.expand_bn(self.expand_conv(out)))
        out = self.act(self.dw_bn(self.dw_conv(out)))
        if self.se is not None:
            out = self.se(out)
        out = self.project_bn(self.project_conv(out))
        if self.use_residual:
            out = out + x
        return out


class MobileNetV3Large(Module):
    """MobileNetV3-Large for 32x32 inputs.

    Parameters
    ----------
    num_classes:
        Output classes.
    width_mult:
        Channel multiplier (1.0 = published widths).
    max_blocks:
        Optionally truncate the 15-block bneck table for fast CPU profiles
        (strides of dropped stride-2 blocks are preserved by keeping the
        table prefix, so spatial dims remain valid).
    seed:
        Initialization seed.
    """

    def __init__(
        self,
        num_classes: int = 10,
        width_mult: float = 0.25,
        max_blocks: int = 15,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        stem_width = _scale(16, width_mult)
        # Stride 1 (not 2) in the stem for small inputs.
        self.stem = Sequential(
            Conv2d(3, stem_width, 3, stride=1, padding=1, bias=False, rng=rng),
            BatchNorm2d(stem_width),
            HardSwish(),
        )
        specs = _LARGE_SPECS[: max(1, max_blocks)]
        blocks: List[Module] = []
        in_channels = stem_width
        for spec in specs:
            block = InvertedResidual(in_channels, spec, width_mult, rng)
            blocks.append(block)
            in_channels = block.out_channels
        self.blocks = ModuleList(blocks)
        head_width = _scale(960, width_mult)
        self.head = Sequential(
            Conv2d(in_channels, head_width, 1, bias=False, rng=rng),
            BatchNorm2d(head_width),
            HardSwish(),
        )
        self.pool = AdaptiveAvgPool2d(1)
        self.flatten = Flatten()
        classifier_width = _scale(1280, width_mult)
        self.classifier = Sequential(
            Linear(head_width, classifier_width, rng=rng),
            HardSwish(),
            Linear(classifier_width, num_classes, rng=rng),
        )
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        out = self.head(out)
        out = self.flatten(self.pool(out))
        return self.classifier(out)


def mobilenet_v3_large(
    num_classes: int = 10,
    width_mult: float = 0.25,
    max_blocks: int = 15,
    seed: int = 0,
) -> MobileNetV3Large:
    """Factory matching the registry signature."""
    return MobileNetV3Large(
        num_classes=num_classes, width_mult=width_mult, max_blocks=max_blocks, seed=seed
    )
