"""STRIP runtime backdoor-input detection (Gao et al., 2019).

A complementary defense surface to model repair: at inference time, blend
the suspect input with random clean images and measure the *entropy* of the
prediction over the perturbed copies.  A trigger dominates whatever it is
blended with, so triggered inputs keep classifying as the target with low
entropy, while clean inputs become uncertain (high entropy).  Inputs whose
mean entropy falls below a threshold calibrated on clean data are flagged.

Included because the reproduction's defender toolbox (trigger synthesis +
model repair) naturally pairs with input filtering, and because it gives
the evaluation harness a second, independent signal that an attack is
actually embedded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..data.dataset import ImageDataset
from ..nn import Tensor, no_grad
from ..nn.module import Module

__all__ = [
    "StripDetector",
    "StripResult",
    "prediction_entropy",
    "strip_entropy_scores",
    "evaluate_filtered_inference",
]


def prediction_entropy(model: Module, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Shannon entropy (nats) of the softmax prediction per image."""
    model.eval()
    entropies = []
    with no_grad():
        for start in range(0, len(images), batch_size):
            logits = model(Tensor(images[start : start + batch_size]))
            probs = logits.softmax(axis=-1).data
            safe = np.clip(probs, 1e-12, 1.0)
            entropies.append(-(safe * np.log(safe)).sum(axis=-1))
    return np.concatenate(entropies) if entropies else np.empty(0)


def strip_entropy_scores(
    model,
    images: np.ndarray,
    pool: np.ndarray,
    overlay_idx: np.ndarray,
    blend_alpha: float,
    batch_size: int = 256,
) -> np.ndarray:
    """Mean prediction entropy per input over its blended copies, batched.

    All ``num_overlays`` perturbed copies of a chunk of inputs are stacked
    into one ``(chunk * num_overlays, C, H, W)`` batch and pushed through a
    single forward pass, so the model (typically a folded
    :class:`~repro.nn.inference.CompiledInference` riding the batched
    single-GEMM path) amortizes per-call overhead across every overlay —
    the per-overlay Python loop this replaces issued ``num_overlays``
    separate forwards.  Inputs are chunked so the stacked batch stays near
    ``batch_size`` images regardless of ``num_overlays``.

    Parameters
    ----------
    model:
        Classifier callable (``Module`` or ``CompiledInference``).
    images:
        ``(n, C, H, W)`` suspect inputs.
    pool:
        ``(P, C, H, W)`` clean images blended into the suspects.
    overlay_idx:
        Either ``(num_overlays, n)`` — an independent pool row per
        (overlay, input) pair — or ``(num_overlays,)`` — one *shared*
        overlay set blended into every input.  The shared form is what the
        serving gateway uses: one gather of ``num_overlays`` pool images
        per micro-batch instead of ``num_overlays * n`` row lookups, and
        the per-input randomness STRIP needs comes from batching (each
        request lands in a differently-seeded micro-batch).
    blend_alpha:
        Overlay opacity: ``(1 - alpha) * suspect + alpha * clean``.
    """
    images = np.asarray(images, dtype=np.float32)
    n = len(images)
    shared = overlay_idx.ndim == 1
    if shared:
        num_overlays = overlay_idx.shape[0]
        # Gather the shared overlay stack once for the whole call.
        shared_overlays = blend_alpha * pool[overlay_idx][:, None]
    else:
        num_overlays, covered = overlay_idx.shape
        if covered != n:
            raise ValueError(f"overlay_idx covers {covered} inputs, got {n} images")
    scores = np.zeros(n)
    chunk = max(1, batch_size // max(1, num_overlays))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        blended = (1.0 - blend_alpha) * images[None, start:stop]
        if shared:
            blended = blended + shared_overlays
        else:
            blended = blended + blend_alpha * pool[overlay_idx[:, start:stop]]
        np.clip(blended, 0.0, 1.0, out=blended)
        flat = blended.reshape(-1, *images.shape[1:]).astype(np.float32, copy=False)
        entropy = prediction_entropy(model, flat, batch_size=batch_size)
        scores[start:stop] = entropy.reshape(num_overlays, stop - start).mean(axis=0)
    return scores


@dataclass
class StripResult:
    """Per-input STRIP scores and verdicts."""

    entropies: np.ndarray  # mean perturbation entropy per input
    flagged: np.ndarray  # boolean: input deemed triggered
    threshold: float


@dataclass
class FilteredInferenceResult:
    """End-to-end impact of STRIP-gated inference.

    ``effective_asr`` counts a triggered input as an attack success only if
    it was *not* flagged AND classified as the target — the deployment
    metric a runtime filter actually changes.  ``clean_rejection_rate`` is
    the price: clean inputs refused service.
    """

    effective_asr: float
    raw_asr: float
    triggered_detection_rate: float
    clean_rejection_rate: float


def evaluate_filtered_inference(
    model,
    detector: "StripDetector",
    test_set: ImageDataset,
    attack,
) -> FilteredInferenceResult:
    """Measure ASR with and without the STRIP gate in front of the model."""
    from ..eval.metrics import evaluate_backdoor_metrics
    from ..training import predict

    raw = evaluate_backdoor_metrics(model, test_set, attack)
    victims = test_set.subset(np.flatnonzero(test_set.labels != attack.target_class))
    triggered = attack.apply(victims.images)
    triggered_result = detector.detect(triggered)
    clean_result = detector.detect(test_set.images)
    predictions = predict(model, triggered)
    success = (predictions == attack.target_class) & ~triggered_result.flagged
    return FilteredInferenceResult(
        effective_asr=float(success.mean()),
        raw_asr=raw.asr,
        triggered_detection_rate=float(triggered_result.flagged.mean()),
        clean_rejection_rate=float(clean_result.flagged.mean()),
    )


class StripDetector:
    """Entropy-based triggered-input detector.

    Parameters
    ----------
    model:
        The (possibly backdoored) classifier.
    clean_pool:
        Clean images used both for blending and for threshold calibration.
    num_overlays:
        Blended copies per suspect input.
    blend_alpha:
        Overlay opacity: ``(1 - alpha) * suspect + alpha * clean``.
    false_positive_rate:
        Calibration quantile — the fraction of *clean* inputs the detector
        may flag.
    seed:
        Overlay sampling seed.
    """

    def __init__(
        self,
        model: Module,
        clean_pool: ImageDataset,
        num_overlays: int = 16,
        blend_alpha: float = 0.5,
        false_positive_rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        if len(clean_pool) < 2:
            raise ValueError("STRIP needs a pool of clean images to blend with")
        if not 0.0 < blend_alpha < 1.0:
            raise ValueError(f"blend_alpha must be in (0, 1), got {blend_alpha}")
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError(f"false_positive_rate must be in (0, 1), got {false_positive_rate}")
        self.model = model
        self.clean_pool = clean_pool
        self.num_overlays = num_overlays
        self.blend_alpha = blend_alpha
        self.false_positive_rate = false_positive_rate
        self._rng = np.random.default_rng(seed)
        self._threshold: Optional[float] = None

    def score(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Mean perturbation entropy per input (low = suspicious).

        All overlays ride one stacked forward per chunk — see
        :func:`strip_entropy_scores`.
        """
        images = np.asarray(images, dtype=np.float32)
        pool = self.clean_pool.images
        overlay_idx = self._rng.integers(0, len(pool), size=(self.num_overlays, len(images)))
        return strip_entropy_scores(
            self.model, images, pool, overlay_idx, self.blend_alpha, batch_size=batch_size
        )

    def calibrate(self) -> float:
        """Set the flagging threshold from clean-pool scores; returns it."""
        clean_scores = self.score(self.clean_pool.images)
        self._threshold = float(np.quantile(clean_scores, self.false_positive_rate))
        return self._threshold

    def detect(self, images: np.ndarray) -> StripResult:
        """Score ``images`` and flag those below the calibrated threshold."""
        if self._threshold is None:
            self.calibrate()
        entropies = self.score(images)
        return StripResult(
            entropies=entropies,
            flagged=entropies < self._threshold,
            threshold=self._threshold,
        )
