"""Adapter: use an inverted trigger wherever an attack handle is expected.

The paper's conclusion names "eliminating the need for synthesizing
backdoor data" as future work.  This adapter closes the loop today: run
trigger inversion (no knowledge of the real trigger), wrap the result as a
:class:`~repro.attacks.base.BackdoorAttack`, and hand it to
:class:`~repro.core.GradPruneDefense` as the synthesis handle.  The
end-to-end recipe lives in :func:`grad_prune_without_trigger`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..attacks.base import BackdoorAttack
from ..core.defense import GradPruneConfig, GradPruneDefense
from ..defenses.base import DefenderData, DefenseReport
from ..nn.module import Module
from .inversion import InvertedTrigger, detect_backdoor, invert_trigger

__all__ = ["SynthesizedTriggerAttack", "grad_prune_without_trigger"]


class SynthesizedTriggerAttack(BackdoorAttack):
    """A :class:`BackdoorAttack` backed by an inverted (mask, pattern) pair."""

    name = "synthesized"

    def __init__(self, trigger: InvertedTrigger, image_shape: Tuple[int, int, int]) -> None:
        super().__init__(target_class=trigger.target_class, image_shape=image_shape)
        self.trigger = trigger

    def apply(self, images):
        return self.trigger.apply(self._check(images))


def grad_prune_without_trigger(
    model: Module,
    data: DefenderData,
    num_classes: int,
    config: Optional[GradPruneConfig] = None,
    inversion_steps: int = 150,
    target_class: Optional[int] = None,
    seed: int = 0,
) -> Tuple[DefenseReport, SynthesizedTriggerAttack]:
    """Run Grad-Prune with an *inverted* trigger instead of the real one.

    Steps: (1) if ``target_class`` is unknown, run Neural-Cleanse detection
    over all classes and take the most anomalous; (2) invert the trigger for
    that class; (3) run the standard Grad-Prune pipeline with the
    synthesized attack as the data-synthesis handle.

    Returns the defense report and the synthesized attack (so callers can
    evaluate how well the inverted trigger approximated the real one).
    """
    clean_pool = data.clean_train.concat(data.clean_val)
    if target_class is None:
        detection = detect_backdoor(
            model, clean_pool, num_classes, steps=inversion_steps, seed=seed
        )
        if detection["flagged_classes"]:
            target_class = detection["flagged_classes"][0]
        else:
            # No outlier: fall back to the class with the smallest mask.
            target_class = int(detection["mask_l1"].argmin())
        trigger = detection["triggers"][target_class]
    else:
        trigger = invert_trigger(
            model, clean_pool, target_class, steps=inversion_steps, seed=seed
        )

    attack = SynthesizedTriggerAttack(trigger, image_shape=data.clean_train.image_shape)
    synthesized_data = DefenderData(
        clean_train=data.clean_train, clean_val=data.clean_val, attack=attack
    )
    report = GradPruneDefense(config).apply(model, synthesized_data)
    report.details["synthesized_target"] = target_class
    report.details["trigger_mask_l1"] = trigger.mask_l1
    report.details["trigger_flip_rate"] = trigger.flip_rate
    return report, attack
