"""Trigger synthesis: Neural-Cleanse-style inversion and detection.

Provides the defender's synthesis capability assumed in paper §III-C and
the trigger-free Grad-Prune pipeline the paper names as future work.
"""

from .inversion import InvertedTrigger, detect_backdoor, invert_trigger
from .strip import (
    StripDetector,
    StripResult,
    evaluate_filtered_inference,
    prediction_entropy,
    strip_entropy_scores,
)
from .synthesized_attack import SynthesizedTriggerAttack, grad_prune_without_trigger

__all__ = [
    "InvertedTrigger",
    "invert_trigger",
    "detect_backdoor",
    "SynthesizedTriggerAttack",
    "grad_prune_without_trigger",
    "StripDetector",
    "StripResult",
    "prediction_entropy",
    "strip_entropy_scores",
    "evaluate_filtered_inference",
]
