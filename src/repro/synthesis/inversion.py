"""Trigger inversion à la Neural Cleanse (Wang et al., 2019).

The paper assumes (§III-C) the defender can synthesize backdoor inputs
"using any relevant state-of-the-art synthesis approach" and cites trigger
inversion.  This module implements that substrate: given only the model and
clean samples, recover a (mask, pattern) pair that flips classification to
a candidate target class with minimal mask area:

    x' = (1 - m) ⊙ x + m ⊙ p
    minimize  CE(f(x'), t) + λ ||m||₁      over m ∈ [0,1]^{H,W}, p ∈ [0,1]^{C,H,W}

Optimization runs through the frozen model with Adam on the *inputs* — a
capability check for the autograd substrate as much as a defense tool.
Per Neural Cleanse, sweeping t over all classes and flagging the class
whose inverted mask is an extreme L1 outlier (median absolute deviation)
also yields backdoor *detection*; see :func:`detect_backdoor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..data.dataset import ImageDataset
from ..nn import Adam, Tensor, cross_entropy
from ..nn.module import Module, Parameter
from ..nn.tensor import no_grad

__all__ = ["InvertedTrigger", "invert_trigger", "detect_backdoor"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass
class InvertedTrigger:
    """Result of trigger inversion for one candidate target class."""

    target_class: int
    mask: np.ndarray  # (H, W) in [0, 1]
    pattern: np.ndarray  # (C, H, W) in [0, 1]
    mask_l1: float
    flip_rate: float  # fraction of clean samples driven to the target

    def apply(self, images: np.ndarray) -> np.ndarray:
        """Stamp the inverted trigger onto a batch of images."""
        images = np.asarray(images, dtype=np.float32)
        m = self.mask[None, None]
        return np.clip((1.0 - m) * images + m * self.pattern[None], 0.0, 1.0).astype(
            np.float32
        )


def invert_trigger(
    model: Module,
    clean_data: ImageDataset,
    target_class: int,
    steps: int = 200,
    lr: float = 0.1,
    mask_weight: float = 0.01,
    batch_size: int = 32,
    seed: int = 0,
) -> InvertedTrigger:
    """Recover a minimal trigger steering ``clean_data`` to ``target_class``.

    The mask and pattern are parameterized through sigmoids so box
    constraints hold by construction (Neural Cleanse's trick).

    Parameters
    ----------
    model:
        Frozen classifier (weights are not modified).
    clean_data:
        The defender's clean samples (all classes).
    target_class:
        Candidate backdoor target.
    steps:
        Adam iterations.
    mask_weight:
        λ in the objective — larger values force smaller masks.
    """
    if len(clean_data) == 0:
        raise ValueError("need clean samples to invert a trigger")
    model.eval()
    c, h, w = clean_data.image_shape
    rng = np.random.default_rng(seed)
    # Logit-space parameters; sigmoid keeps mask/pattern in (0, 1).
    mask_logit = Parameter(rng.normal(-2.0, 0.1, size=(h, w)).astype(np.float32))
    pattern_logit = Parameter(rng.normal(0.0, 0.5, size=(c, h, w)).astype(np.float32))
    optimizer = Adam([mask_logit, pattern_logit], lr=lr)

    n = len(clean_data)
    targets = np.full(min(batch_size, n), target_class, dtype=np.int64)
    for step in range(steps):
        idx = rng.choice(n, size=min(batch_size, n), replace=False)
        batch = Tensor(clean_data.images[idx])
        mask = mask_logit.sigmoid().reshape(1, 1, h, w)
        pattern = pattern_logit.sigmoid().reshape(1, c, h, w)
        stamped = batch * (1.0 - mask) + pattern * mask
        logits = model(stamped)
        loss = cross_entropy(logits, targets[: len(idx)])
        loss = loss + mask_weight * mask_logit.sigmoid().abs().sum()
        optimizer.zero_grad()
        model.zero_grad()
        loss.backward()
        optimizer.step()

    final_mask = _sigmoid(mask_logit.data)
    final_pattern = _sigmoid(pattern_logit.data)
    trigger = InvertedTrigger(
        target_class=target_class,
        mask=final_mask,
        pattern=final_pattern,
        mask_l1=float(np.abs(final_mask).sum()),
        flip_rate=0.0,
    )
    # Measure how often the recovered trigger actually flips predictions.
    stamped = trigger.apply(clean_data.images)
    with no_grad():
        predictions = []
        for start in range(0, n, 128):
            logits = model(Tensor(stamped[start : start + 128]))
            predictions.append(logits.data.argmax(axis=1))
    flips = np.concatenate(predictions) == target_class
    trigger.flip_rate = float(flips.mean())
    return trigger


def detect_backdoor(
    model: Module,
    clean_data: ImageDataset,
    num_classes: int,
    steps: int = 150,
    anomaly_threshold: float = 2.0,
    seed: int = 0,
) -> Dict:
    """Neural-Cleanse detection: invert per class, flag MAD outliers.

    Returns a dict with per-class mask L1 norms, anomaly indices, and the
    flagged classes (anomaly index > ``anomaly_threshold`` on the low side —
    backdoor targets need abnormally *small* triggers).
    """
    triggers: List[InvertedTrigger] = []
    for cls in range(num_classes):
        triggers.append(
            invert_trigger(model, clean_data, cls, steps=steps, seed=seed + cls)
        )
    l1 = np.array([t.mask_l1 for t in triggers])
    median = float(np.median(l1))
    mad = float(np.median(np.abs(l1 - median))) * 1.4826 + 1e-12
    anomaly_index = (median - l1) / mad  # positive & large => suspiciously small mask
    flagged = [int(i) for i in np.flatnonzero(anomaly_index > anomaly_threshold)]
    return {
        "triggers": triggers,
        "mask_l1": l1,
        "anomaly_index": anomaly_index,
        "flagged_classes": flagged,
        "median_l1": median,
    }
