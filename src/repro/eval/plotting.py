"""Dependency-free SVG scatter plots for Figures 1 and 2.

No matplotlib exists in this environment, so the figure benches emit SVG
directly: :func:`scatter_svg` renders one panel (x = ASR %, y = ACC or RA %)
with one marker shape/colour per defense plus a legend, matching the
layout of the paper's Figures 1-2.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["scatter_svg", "figure_svg", "line_svg", "pruning_history_svg"]

# Colour-blind-safe categorical palette (Okabe-Ito).
_PALETTE = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00",
    "#CC79A7", "#56B4E9", "#F0E442", "#000000",
]
_MARKERS = ("circle", "square", "diamond", "triangle", "cross", "circle_open", "square_open", "star")

Point = Tuple[float, float]
Series = Dict[str, Dict[str, List[Point]]]


def _marker_svg(shape: str, x: float, y: float, colour: str, size: float = 4.0) -> str:
    if shape == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{size}" fill="{colour}"/>'
    if shape == "circle_open":
        return (
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{size}" fill="none" '
            f'stroke="{colour}" stroke-width="1.5"/>'
        )
    if shape == "square":
        return (
            f'<rect x="{x - size:.1f}" y="{y - size:.1f}" width="{2 * size}" '
            f'height="{2 * size}" fill="{colour}"/>'
        )
    if shape == "square_open":
        return (
            f'<rect x="{x - size:.1f}" y="{y - size:.1f}" width="{2 * size}" '
            f'height="{2 * size}" fill="none" stroke="{colour}" stroke-width="1.5"/>'
        )
    if shape == "diamond":
        pts = f"{x},{y - size} {x + size},{y} {x},{y + size} {x - size},{y}"
        return f'<polygon points="{pts}" fill="{colour}"/>'
    if shape == "triangle":
        pts = f"{x},{y - size} {x + size},{y + size} {x - size},{y + size}"
        return f'<polygon points="{pts}" fill="{colour}"/>'
    if shape == "cross":
        return (
            f'<path d="M {x - size} {y - size} L {x + size} {y + size} '
            f'M {x - size} {y + size} L {x + size} {y - size}" '
            f'stroke="{colour}" stroke-width="2"/>'
        )
    if shape == "star":
        pts = f"{x},{y - size} {x + size * 0.3},{y - size * 0.3} {x + size},{y} " \
              f"{x + size * 0.3},{y + size * 0.3} {x},{y + size} {x - size * 0.3},{y + size * 0.3} " \
              f"{x - size},{y} {x - size * 0.3},{y - size * 0.3}"
        return f'<polygon points="{pts}" fill="{colour}"/>'
    raise ValueError(f"unknown marker {shape!r}")


def scatter_svg(
    series: Series,
    which: str = "acc_vs_asr",
    title: str = "",
    width: int = 420,
    height: int = 320,
) -> str:
    """Render one scatter panel as an SVG document string.

    ``series`` is the output of :func:`repro.eval.reporting.scatter_series`:
    per-defense point lists in percent, x = ASR, y = ACC or RA.
    """
    if which not in ("acc_vs_asr", "ra_vs_asr"):
        raise ValueError(f"unknown series {which!r}")
    margin_left, margin_bottom, margin_top, margin_right = 48, 40, 28, 120
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    def sx(value: float) -> float:
        return margin_left + value / 100.0 * plot_w

    def sy(value: float) -> float:
        return margin_top + (100.0 - value) / 100.0 * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{margin_left + plot_w / 2}" y="16" text-anchor="middle" '
            f'font-size="13">{title}</text>'
        )
    # Axes + gridlines every 20 %.
    for tick in range(0, 101, 20):
        parts.append(
            f'<line x1="{sx(tick):.1f}" y1="{sy(0):.1f}" x2="{sx(tick):.1f}" '
            f'y2="{sy(100):.1f}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<line x1="{sx(0):.1f}" y1="{sy(tick):.1f}" x2="{sx(100):.1f}" '
            f'y2="{sy(tick):.1f}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{sx(tick):.1f}" y="{sy(0) + 16:.1f}" text-anchor="middle">{tick}</text>'
        )
        parts.append(
            f'<text x="{sx(0) - 8:.1f}" y="{sy(tick) + 4:.1f}" text-anchor="end">{tick}</text>'
        )
    parts.append(
        f'<rect x="{sx(0):.1f}" y="{sy(100):.1f}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#333333"/>'
    )
    y_label = "ACC (%)" if which == "acc_vs_asr" else "RA (%)"
    parts.append(
        f'<text x="{sx(50):.1f}" y="{height - 6}" text-anchor="middle">ASR (%)</text>'
    )
    parts.append(
        f'<text x="14" y="{sy(50):.1f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {sy(50):.1f})">{y_label}</text>'
    )

    # Points + legend.
    legend_y = margin_top + 6
    for index, (defense, entry) in enumerate(sorted(series.items())):
        colour = _PALETTE[index % len(_PALETTE)]
        shape = _MARKERS[index % len(_MARKERS)]
        for x, y in entry[which]:
            parts.append(_marker_svg(shape, sx(x), sy(y), colour))
        lx = width - margin_right + 12
        parts.append(_marker_svg(shape, lx, legend_y, colour))
        parts.append(f'<text x="{lx + 10}" y="{legend_y + 4}">{defense}</text>')
        legend_y += 18
    parts.append("</svg>")
    return "\n".join(parts)


def line_svg(
    series: Dict[str, List[float]],
    title: str = "",
    x_label: str = "round",
    y_label: str = "value",
    width: int = 420,
    height: int = 280,
) -> str:
    """Render named line series (e.g. per-epoch losses) as an SVG document.

    The y-axis auto-scales to the data range; x is the 0-based index.
    """
    if not series or all(len(v) == 0 for v in series.values()):
        raise ValueError("line_svg needs at least one non-empty series")
    margin_left, margin_bottom, margin_top, margin_right = 52, 40, 28, 120
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    all_values = [v for values in series.values() for v in values]
    y_min, y_max = min(all_values), max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_max = max(len(v) for v in series.values()) - 1
    x_max = max(x_max, 1)

    def sx(i: float) -> float:
        return margin_left + i / x_max * plot_w

    def sy(v: float) -> float:
        return margin_top + (y_max - v) / (y_max - y_min) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{margin_left + plot_w / 2}" y="16" text-anchor="middle" '
            f'font-size="13">{title}</text>'
        )
    parts.append(
        f'<rect x="{margin_left}" y="{margin_top}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#333333"/>'
    )
    for frac in (0.0, 0.5, 1.0):
        value = y_min + frac * (y_max - y_min)
        parts.append(
            f'<text x="{margin_left - 6}" y="{sy(value) + 4:.1f}" text-anchor="end">'
            f"{value:.3g}</text>"
        )
    parts.append(
        f'<text x="{margin_left + plot_w / 2}" y="{height - 8}" text-anchor="middle">{x_label}</text>'
    )
    parts.append(
        f'<text x="16" y="{margin_top + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 16 {margin_top + plot_h / 2})">{y_label}</text>'
    )
    legend_y = margin_top + 6
    for index, (name, values) in enumerate(sorted(series.items())):
        if not values:
            continue
        colour = _PALETTE[index % len(_PALETTE)]
        points = " ".join(f"{sx(i):.1f},{sy(v):.1f}" for i, v in enumerate(values))
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{colour}" stroke-width="1.8"/>'
        )
        lx = width - margin_right + 12
        parts.append(
            f'<line x1="{lx}" y1="{legend_y}" x2="{lx + 14}" y2="{legend_y}" '
            f'stroke="{colour}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{lx + 18}" y="{legend_y + 4}">{name}</text>')
        legend_y += 18
    parts.append("</svg>")
    return "\n".join(parts)


def pruning_history_svg(history, title: str = "Pruning history") -> str:
    """Plot a :class:`repro.core.PruningHistory`: loss and accuracy per round."""
    rounds = [r for r in history.rounds if not r.rolled_back]
    if not rounds:
        raise ValueError("history has no effective pruning rounds")
    return line_svg(
        {
            "val unlearning loss": [r.val_unlearning_loss for r in rounds],
            "val accuracy x100": [r.val_accuracy * 100 for r in rounds],
        },
        title=title,
        x_label="pruning round",
        y_label="value",
    )


def figure_svg(series: Series, title: str = "") -> str:
    """Render the paper's two-panel layout (ACC-vs-ASR above RA-vs-ASR)."""
    top = scatter_svg(series, "acc_vs_asr", title=f"{title} — ACC vs ASR" if title else "")
    bottom = scatter_svg(series, "ra_vs_asr", title=f"{title} — RA vs ASR" if title else "")
    # Stack the two standalone documents into one by nesting.
    inner_top = top.replace('<svg xmlns="http://www.w3.org/2000/svg"', '<svg y="0"', 1)
    inner_bottom = bottom.replace('<svg xmlns="http://www.w3.org/2000/svg"', '<svg y="320"', 1)
    return (
        '<svg xmlns="http://www.w3.org/2000/svg" width="420" height="640" '
        'viewBox="0 0 420 640">\n' + inner_top + "\n" + inner_bottom + "\n</svg>"
    )
