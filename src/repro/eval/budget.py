"""Defender data budgets per the paper's protocol (§V-B).

The defender receives a fixed number of clean *samples per class* (SPC in
{2, 10, 100}), of which 10 % is reserved for validation — except SPC=2,
where one sample per class trains and the other validates.  Each of the five
trials draws a different subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..attacks.base import BackdoorAttack
from ..data.dataset import ImageDataset
from ..data.splits import defender_split
from ..defenses.base import DefenderData
from ..utils.seeding import seed_sequence

__all__ = ["DefenderBudget", "budget_trials"]


@dataclass(frozen=True)
class DefenderBudget:
    """An SPC budget drawn for one trial."""

    spc: int
    trial: int
    seed: int

    def draw(
        self, reservoir: ImageDataset, attack: Optional[BackdoorAttack] = None
    ) -> DefenderData:
        """Sample this trial's defender data from the clean reservoir.

        ``reservoir`` is clean, correctly-labeled data the defender could
        plausibly access (we draw from held-out clean training data, never
        the test set used for metrics).
        """
        rng = np.random.default_rng(self.seed)
        clean_train, clean_val = defender_split(reservoir, self.spc, rng)
        return DefenderData(clean_train=clean_train, clean_val=clean_val, attack=attack)


def budget_trials(spc: int, num_trials: int, root_seed: int = 0) -> Iterator[DefenderBudget]:
    """Yield ``num_trials`` decorrelated budgets for one SPC setting."""
    for trial, seed in enumerate(seed_sequence(root_seed + spc * 1000, num_trials)):
        yield DefenderBudget(spc=spc, trial=trial, seed=seed)
