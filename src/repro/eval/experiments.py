"""Predefined experiment grids for every paper table and figure.

Each experiment is a declarative grid over (dataset, model, attacks,
defenses, SPC values, trials); :func:`run_experiment` executes it through
:class:`~repro.eval.runner.BenchmarkRunner` and returns both raw aggregates
and the formatted paper-style table.

Two profiles control cost:

- ``quick`` (default): reduced sample counts, epochs, and trials — minutes
  per table on CPU.  The *shape* of results (which defenses win, ASR
  collapse, SPC trends) is preserved; absolute numbers are not comparable
  to the paper (our substrate is synthetic — see DESIGN.md §2).
- ``paper``: the full five-trial, three-SPC grid with bigger datasets and
  training budgets.  Hours on CPU.

The profile is chosen via the ``REPRO_BENCH_PROFILE`` environment variable
or the ``profile`` argument.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .metrics import BackdoorMetrics
from .reporting import format_table, scatter_series
from .runner import AggregateResult, BenchmarkRunner, ScenarioConfig

__all__ = [
    "ExperimentProfile",
    "ExperimentSpec",
    "ExperimentResult",
    "get_profile",
    "experiment_spec",
    "scenario_configs",
    "run_experiment",
    "EXPERIMENT_IDS",
    "FEDERATED_EXPERIMENT_IDS",
]

ALL_ATTACKS = ("badnets", "blended", "bpp", "lf")
ALL_DEFENSES = ("ft", "fp", "nad", "clp", "ft_sam", "anp", "grad_prune")
FIG2_DEFENSES = ("ft_sam", "anp", "grad_prune")
FIG2_MODELS = ("preact_resnet18", "vgg19_bn", "efficientnet_b3", "mobilenet_v3_large")

EXPERIMENT_IDS = (
    "table1", "table2", "figure1", "figure2", "tableF",
    "ablation_scoring", "ablation_finetune", "ablation_stopping",
)

# Experiments that run on the federated scheduler (orchestrator-only; the
# serial run_experiment path has no notion of rounds or client shards).
FEDERATED_EXPERIMENT_IDS = ("tableF",)


@dataclass(frozen=True)
class ExperimentProfile:
    """Cost knobs shared by all experiments."""

    name: str
    n_train: int
    n_test: int
    n_reservoir: int
    train_epochs: int
    spc_values: Tuple[int, ...]
    num_trials: int
    num_classes_cifar: int = 10
    num_classes_gtsrb: int = 12

    # Per-defense constructor overrides keeping the quick profile fast.
    defense_kwargs: Dict[str, Dict] = field(default_factory=dict)
    # Per-model ScenarioConfig overrides (training hyperparameters differ:
    # plain deep stacks like VGG need a lower LR than residual networks).
    model_overrides: Dict[str, Dict] = field(default_factory=dict)
    # Trigger-parameter overrides, keyed by "attack" or "model:attack".
    # Quick-profile example: VGG's five max-pools + narrow stem cannot learn
    # the default 3x3 corner patch on 32x32 synthetic data, so its BadNets
    # uses a 5x5 patch (still < 2.5 % of the image).
    attack_overrides: Dict[str, Dict] = field(default_factory=dict)


QUICK_PROFILE = ExperimentProfile(
    name="quick",
    n_train=1500,
    n_test=300,
    n_reservoir=700,
    train_epochs=8,
    spc_values=(2, 10),
    num_trials=1,
    defense_kwargs={
        "ft": {"epochs": 10},
        "fp": {"epochs": 10},
        # beta=500 (the CIFAR-scale default) dwarfs the CE term on the small
        # synthetic task and destroys the model; 50 keeps the distillation
        # signal without collapse.
        "nad": {"teacher_epochs": 4, "epochs": 4, "beta": 50.0},
        "ft_sam": {"epochs": 10},
        "anp": {"steps": 100, "mask_lr": 0.1},
        "grad_prune": {"prune_patience": 5, "tune_max_epochs": 12},
    },
    model_overrides={
        "vgg19_bn": {"train_lr": 0.02, "train_epochs": 12},
        "efficientnet_b3": {"train_lr": 0.02},
        "mobilenet_v3_large": {"train_lr": 0.02, "train_epochs": 10},
    },
    attack_overrides={
        "vgg19_bn:badnets": {"patch_size": 5},
    },
)

PAPER_PROFILE = ExperimentProfile(
    name="paper",
    n_train=2000,
    n_test=500,
    n_reservoir=1500,
    train_epochs=10,
    spc_values=(2, 10, 100),
    num_trials=5,
    defense_kwargs={
        "nad": {"teacher_epochs": 10, "epochs": 10},
        "anp": {"steps": 120},
        "grad_prune": {"prune_patience": 10, "tune_max_epochs": 50},
    },
    model_overrides={
        "vgg19_bn": {"train_lr": 0.02},
        "efficientnet_b3": {"train_lr": 0.02},
        "mobilenet_v3_large": {"train_lr": 0.02},
    },
)


def get_profile(profile: Optional[str] = None) -> ExperimentProfile:
    """Resolve a profile by argument, environment, or default ('quick')."""
    name = profile or os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if name == "quick":
        return QUICK_PROFILE
    if name == "paper":
        return PAPER_PROFILE
    raise ValueError(f"unknown profile {name!r}; use 'quick' or 'paper'")


@dataclass
class ExperimentSpec:
    """A fully resolved experiment grid."""

    experiment_id: str
    title: str
    dataset: str
    models: Tuple[str, ...]
    attacks: Tuple[str, ...]
    defenses: Tuple[str, ...]
    profile: ExperimentProfile


@dataclass
class ExperimentResult:
    """Everything an experiment produces."""

    spec: ExperimentSpec
    # {model: {attack: [AggregateResult...]}}
    results: Dict[str, Dict[str, List[AggregateResult]]]
    # {model: {attack: BackdoorMetrics}} baselines (no defense)
    baselines: Dict[str, Dict[str, BackdoorMetrics]]

    def table_text(self) -> str:
        """Paper-style table for each model in the experiment."""
        sections = []
        for model in self.spec.models:
            sections.append(
                format_table(
                    self.results[model],
                    self.baselines[model],
                    title=f"{self.spec.title} — {model}",
                )
            )
        return "\n\n".join(sections)

    def scatter(self, model: str):
        """Figure-style scatter series for one model (all attacks pooled)."""
        pooled: List[AggregateResult] = []
        for aggregates in self.results[model].values():
            pooled.extend(aggregates)
        return scatter_series(pooled)


def experiment_spec(experiment_id: str, profile: Optional[str] = None) -> ExperimentSpec:
    """Resolve one of the paper's experiments to a concrete grid."""
    prof = get_profile(profile)
    if experiment_id == "table1":
        return ExperimentSpec(
            "table1", "Table I: SynthCIFAR / PreactResNet-18",
            "synth_cifar", ("preact_resnet18",), ALL_ATTACKS, ALL_DEFENSES, prof,
        )
    if experiment_id == "table2":
        return ExperimentSpec(
            "table2", "Table II: SynthCIFAR / VGG-19+BN",
            "synth_cifar", ("vgg19_bn",), ALL_ATTACKS, ALL_DEFENSES, prof,
        )
    if experiment_id == "figure1":
        # Figure 1 visualizes the Table I+II grids; both models, all attacks.
        return ExperimentSpec(
            "figure1", "Figure 1: SynthCIFAR scatter (ACC & RA vs ASR)",
            "synth_cifar", ("preact_resnet18", "vgg19_bn"), ALL_ATTACKS, ALL_DEFENSES, prof,
        )
    if experiment_id == "figure2":
        return ExperimentSpec(
            "figure2", "Figure 2: SynthGTSRB scatter, 4 architectures",
            "synth_gtsrb", FIG2_MODELS, ALL_ATTACKS, FIG2_DEFENSES, prof,
        )
    if experiment_id in FEDERATED_EXPERIMENT_IDS:
        raise KeyError(
            f"{experiment_id!r} is a federated grid with no serial path; run it "
            "via 'repro orchestrate tableF' (repro.federated.federated_spec)"
        )
    raise KeyError(f"unknown experiment {experiment_id!r}; choose from {EXPERIMENT_IDS}")


def scenario_configs(
    spec: ExperimentSpec,
    attacks: Optional[Tuple[str, ...]] = None,
    models: Optional[Tuple[str, ...]] = None,
    root_seed: int = 0,
) -> List[Tuple[str, str, ScenarioConfig]]:
    """Resolve the (model, attack) cells of a grid to concrete configs.

    This is the single source of truth for scenario construction: the
    serial :func:`run_experiment` path and the orchestrator's DAG builder
    both call it, so their ``ScenarioConfig.fingerprint()`` values — and
    therefore their cached artifacts — are identical by construction.
    """
    prof = spec.profile
    num_classes = (
        prof.num_classes_cifar if spec.dataset == "synth_cifar" else prof.num_classes_gtsrb
    )
    cells: List[Tuple[str, str, ScenarioConfig]] = []
    for model in models or spec.models:
        for attack in attacks or spec.attacks:
            config_kwargs = dict(
                dataset=spec.dataset,
                model=model,
                attack=attack,
                n_train=prof.n_train,
                n_test=prof.n_test,
                n_reservoir=prof.n_reservoir,
                num_classes=num_classes,
                train_epochs=prof.train_epochs,
                seed=root_seed,
            )
            config_kwargs.update(prof.model_overrides.get(model, {}))
            attack_kwargs = dict(prof.attack_overrides.get(attack, {}))
            attack_kwargs.update(prof.attack_overrides.get(f"{model}:{attack}", {}))
            if attack_kwargs:
                config_kwargs["attack_kwargs"] = tuple(sorted(attack_kwargs.items()))
            cells.append((model, attack, ScenarioConfig(**config_kwargs)))
    return cells


def run_experiment(
    spec: ExperimentSpec,
    runner: Optional[BenchmarkRunner] = None,
    attacks: Optional[Tuple[str, ...]] = None,
    models: Optional[Tuple[str, ...]] = None,
    root_seed: int = 0,
) -> ExperimentResult:
    """Execute (a slice of) an experiment grid.

    ``attacks`` / ``models`` restrict the grid — the per-attack benchmark
    functions use this so each pytest-benchmark entry covers one attack.
    """
    runner = runner or BenchmarkRunner(verbose=True)
    prof = spec.profile

    results: Dict[str, Dict[str, List[AggregateResult]]] = {}
    baselines: Dict[str, Dict[str, BackdoorMetrics]] = {}
    for model, attack, config in scenario_configs(spec, attacks, models, root_seed):
        results.setdefault(model, {})
        baselines.setdefault(model, {})
        scenario = runner.prepare(config)
        baselines[model][attack] = scenario.baseline
        results[model][attack] = runner.run_grid(
            scenario,
            defenses=list(spec.defenses),
            spc_values=list(prof.spc_values),
            num_trials=prof.num_trials,
            defense_kwargs=prof.defense_kwargs,
            root_seed=root_seed,
        )
    return ExperimentResult(spec=spec, results=results, baselines=baselines)
