"""Performance measures: ACC, ASR, RA (paper §V-C, BackdoorBench definitions).

- **ACC**: accuracy on the clean test set.
- **ASR**: accuracy on triggered test images against the *target* label
  (how often the backdoor fires).
- **RA**: accuracy on triggered test images against their *true* labels
  (how often the defense restored correct classification under trigger).

Samples whose true label equals the target class are excluded from the ASR
and RA sets (triggering them proves nothing), following BackdoorBench.
Note ``ASR + RA <= 1`` always holds on the same sample set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..attacks.base import BackdoorAttack
from ..data.dataset import ImageDataset
from ..nn.module import Module
from ..training import predict

__all__ = [
    "BackdoorMetrics",
    "evaluate_backdoor_metrics",
    "evaluate_all_to_all_metrics",
    "per_class_asr",
    "confusion_matrix",
]


@dataclass
class BackdoorMetrics:
    """ACC / ASR / RA triple (fractions in [0, 1])."""

    acc: float
    asr: float
    ra: float

    def as_percentages(self) -> "BackdoorMetrics":
        return BackdoorMetrics(self.acc * 100.0, self.asr * 100.0, self.ra * 100.0)

    def __str__(self) -> str:
        return f"ACC={self.acc:.4f} ASR={self.asr:.4f} RA={self.ra:.4f}"


def evaluate_backdoor_metrics(
    model: Module,
    test_set: ImageDataset,
    attack: BackdoorAttack,
    batch_size: int = 128,
) -> BackdoorMetrics:
    """Compute ACC, ASR, and RA for ``model`` under ``attack``.

    The triggered images are generated once and both ASR and RA are scored
    on them, guaranteeing the ``ASR + RA <= 1`` identity.
    """
    if len(test_set) == 0:
        raise ValueError("empty test set")
    clean_predictions = predict(model, test_set.images, batch_size=batch_size)
    acc = float((clean_predictions == test_set.labels).mean())

    keep = test_set.labels != attack.target_class
    if not keep.any():
        raise ValueError("test set contains only target-class samples")
    victim = test_set.subset(np.flatnonzero(keep))
    triggered = attack.apply(victim.images)
    triggered_predictions = predict(model, triggered, batch_size=batch_size)
    asr = float((triggered_predictions == attack.target_class).mean())
    ra = float((triggered_predictions == victim.labels).mean())
    return BackdoorMetrics(acc=acc, asr=asr, ra=ra)


def evaluate_all_to_all_metrics(
    model: Module,
    test_set: ImageDataset,
    attack: BackdoorAttack,
    batch_size: int = 128,
) -> BackdoorMetrics:
    """ACC / ASR / RA under the all-to-all relabeling (y -> y+1 mod n).

    A triggered sample counts toward ASR when it is classified as
    ``(y + 1) mod n`` — the cyclic target — and toward RA when it is
    classified as its true label.  All classes participate (no exclusion).
    """
    if len(test_set) == 0:
        raise ValueError("empty test set")
    clean_predictions = predict(model, test_set.images, batch_size=batch_size)
    acc = float((clean_predictions == test_set.labels).mean())
    num_classes = test_set.num_classes
    triggered = attack.apply(test_set.images)
    triggered_predictions = predict(model, triggered, batch_size=batch_size)
    cyclic_targets = (test_set.labels + 1) % num_classes
    asr = float((triggered_predictions == cyclic_targets).mean())
    ra = float((triggered_predictions == test_set.labels).mean())
    return BackdoorMetrics(acc=acc, asr=asr, ra=ra)


def per_class_asr(
    model: Module,
    test_set: ImageDataset,
    attack: BackdoorAttack,
    batch_size: int = 128,
) -> np.ndarray:
    """ASR broken down by true class (target class entry is NaN).

    Useful for diagnosing partial mitigation: a defense may strip the
    backdoor for some victim classes but not others.
    """
    num_classes = test_set.num_classes
    triggered = attack.apply(test_set.images)
    predictions = predict(model, triggered, batch_size=batch_size)
    result = np.full(num_classes, np.nan)
    for cls in range(num_classes):
        if cls == attack.target_class:
            continue
        members = test_set.labels == cls
        if members.any():
            result[cls] = float((predictions[members] == attack.target_class).mean())
    return result


def confusion_matrix(
    model: Module, test_set: ImageDataset, batch_size: int = 128
) -> np.ndarray:
    """Row-true / column-predicted confusion counts on clean data."""
    num_classes = test_set.num_classes
    predictions = predict(model, test_set.images, batch_size=batch_size)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (test_set.labels, predictions), 1)
    return matrix
