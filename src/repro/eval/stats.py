"""Cross-trial statistics for defense comparisons.

The paper reports mean±std over five trials and bolds the best/second-best
per cell.  This module adds the machinery a careful comparison needs:

- :func:`paired_bootstrap` — bootstrap CI of a mean metric difference
  between two defenses evaluated on the *same* trial draws;
- :func:`rank_defenses` — per-cell ranking with the paper's bold/underline
  convention (best / second best);
- :func:`win_tie_loss` — aggregate win/tie/loss counts of one defense
  against another across many cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .runner import AggregateResult, TrialResult

__all__ = ["paired_bootstrap", "rank_defenses", "win_tie_loss", "BootstrapResult"]


@dataclass
class BootstrapResult:
    """Outcome of a paired bootstrap comparison."""

    mean_difference: float
    ci_low: float
    ci_high: float
    significant: bool  # CI excludes zero


def paired_bootstrap(
    a: Sequence[float],
    b: Sequence[float],
    num_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapResult:
    """Bootstrap CI of ``mean(a - b)`` over paired per-trial values."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"paired inputs must be equal-length 1-D, got {a.shape} vs {b.shape}")
    if len(a) == 0:
        raise ValueError("need at least one paired observation")
    diff = a - b
    rng = np.random.default_rng(seed)
    n = len(diff)
    resample_means = np.array(
        [diff[rng.integers(0, n, n)].mean() for _ in range(num_resamples)]
    )
    alpha = (1.0 - confidence) / 2.0
    ci_low = float(np.quantile(resample_means, alpha))
    ci_high = float(np.quantile(resample_means, 1.0 - alpha))
    return BootstrapResult(
        mean_difference=float(diff.mean()),
        ci_low=ci_low,
        ci_high=ci_high,
        significant=bool(ci_low > 0.0 or ci_high < 0.0),
    )


def rank_defenses(
    aggregates: Sequence[AggregateResult],
    metric: str = "asr",
    ascending: Optional[bool] = None,
) -> List[Tuple[str, float, str]]:
    """Rank one cell's defenses; returns (defense, value, emphasis) rows.

    ``emphasis`` follows the paper's table convention: ``"best"`` for the
    top entry, ``"second"`` for the runner-up, ``""`` otherwise.  Lower is
    better for ASR; higher is better for ACC/RA (override via ``ascending``).
    """
    if metric not in ("acc", "asr", "ra"):
        raise ValueError(f"unknown metric {metric!r}")
    if ascending is None:
        ascending = metric == "asr"
    keyed = [(agg.defense, getattr(agg, f"{metric}_mean")) for agg in aggregates]
    keyed.sort(key=lambda kv: kv[1], reverse=not ascending)
    rows: List[Tuple[str, float, str]] = []
    for position, (defense, value) in enumerate(keyed):
        emphasis = "best" if position == 0 else ("second" if position == 1 else "")
        rows.append((defense, value, emphasis))
    return rows


def win_tie_loss(
    trials_a: Sequence[TrialResult],
    trials_b: Sequence[TrialResult],
    metric: str = "asr",
    tolerance: float = 0.01,
) -> Dict[str, int]:
    """Win/tie/loss of defense A vs B over paired trials (lower ASR wins).

    Trials are paired by ``(spc, trial)``; unmatched trials are ignored.
    For ``acc``/``ra`` higher wins.
    """
    if metric not in ("acc", "asr", "ra"):
        raise ValueError(f"unknown metric {metric!r}")
    lower_wins = metric == "asr"
    b_by_key = {(t.spc, t.trial): t for t in trials_b}
    counts = {"win": 0, "tie": 0, "loss": 0}
    for trial in trials_a:
        other = b_by_key.get((trial.spc, trial.trial))
        if other is None:
            continue
        va = getattr(trial.metrics, metric)
        vb = getattr(other.metrics, metric)
        delta = (vb - va) if lower_wins else (va - vb)
        if abs(delta) <= tolerance:
            counts["tie"] += 1
        elif delta > 0:
            counts["win"] += 1
        else:
            counts["loss"] += 1
    return counts
