"""BackdoorBench-style evaluation runner (paper §V).

Pipeline per scenario: train (or load from cache) a backdoored model →
draw a defender budget → apply a defense to a fresh copy → measure
ACC / ASR / RA on the held-out test set.  Scenarios are repeated over
independent trials and aggregated as mean ± std, exactly like the paper's
Tables I and II.

Backdoored models are expensive to train, so :class:`ScenarioCache` stores
them on disk keyed by a configuration fingerprint; all defenses and trials
for a scenario reuse the same backdoored checkpoint, mirroring the paper
(one attack run, many defense runs).
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..attacks import build_attack
from ..attacks.base import BackdoorAttack
from ..attacks.poisoner import train_backdoored_model
from ..data import make_synth_cifar, make_synth_gtsrb
from ..data.dataset import ImageDataset
from ..defenses import build_defense
from ..defenses.base import DefenderData
from ..models import build_model
from ..nn.module import Module
from ..orchestrator.artifacts import ArtifactStore
from ..training import TrainConfig
from ..utils.logging import get_logger
from .budget import DefenderBudget, budget_trials
from .metrics import BackdoorMetrics, evaluate_backdoor_metrics

__all__ = [
    "ScenarioConfig",
    "ScenarioData",
    "TrialResult",
    "AggregateResult",
    "ScenarioCache",
    "TrialCache",
    "BenchmarkRunner",
]

_LOG = get_logger("repro.eval")


@dataclass(frozen=True)
class ScenarioConfig:
    """One (dataset, model, attack) cell of the evaluation grid.

    ``attack_kwargs`` (a tuple of (key, value) pairs, to stay hashable)
    forwards trigger parameters to the attack constructor — e.g.
    ``(("patch_size", 5),)`` for a larger BadNets patch.
    """

    dataset: str = "synth_cifar"  # "synth_cifar" | "synth_gtsrb"
    model: str = "preact_resnet18"
    attack: str = "badnets"
    target_class: int = 0
    poison_ratio: float = 0.10
    n_train: int = 1500
    n_test: int = 400
    n_reservoir: int = 1200
    num_classes: int = 10
    train_epochs: int = 8
    train_lr: float = 0.05
    train_batch_size: int = 64
    model_profile: str = "quick"
    attack_kwargs: Tuple = ()
    seed: int = 0

    def fingerprint(self) -> str:
        """Stable hash identifying the backdoored-model artifact."""
        payload = json.dumps(
            {k: list(v) if isinstance(v, tuple) else v for k, v in self.__dict__.items()},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class ScenarioData:
    """Everything a defense evaluation needs for one scenario."""

    config: ScenarioConfig
    backdoored_model: Module
    attack: BackdoorAttack
    test_set: ImageDataset
    reservoir: ImageDataset  # clean pool the defender samples from
    baseline: BackdoorMetrics


@dataclass
class TrialResult:
    """Metrics of a single defense trial."""

    defense: str
    spc: int
    trial: int
    metrics: BackdoorMetrics
    details: Dict = field(default_factory=dict)


@dataclass
class AggregateResult:
    """Mean ± std over trials for one (defense, SPC) cell."""

    defense: str
    spc: int
    acc_mean: float
    acc_std: float
    asr_mean: float
    asr_std: float
    ra_mean: float
    ra_std: float
    num_trials: int

    @staticmethod
    def from_trials(trials: List[TrialResult]) -> "AggregateResult":
        if not trials:
            raise ValueError("cannot aggregate zero trials")
        accs = np.array([t.metrics.acc for t in trials])
        asrs = np.array([t.metrics.asr for t in trials])
        ras = np.array([t.metrics.ra for t in trials])
        return AggregateResult(
            defense=trials[0].defense,
            spc=trials[0].spc,
            acc_mean=float(accs.mean()),
            acc_std=float(accs.std()),
            asr_mean=float(asrs.mean()),
            asr_std=float(asrs.std()),
            ra_mean=float(ras.mean()),
            ra_std=float(ras.std()),
            num_trials=len(trials),
        )

    def row(self) -> str:
        """Paper-style 'mean±std' percentage cell string."""
        return (
            f"{self.acc_mean * 100:.2f}±{self.acc_std * 100:.2f} | "
            f"{self.asr_mean * 100:.2f}±{self.asr_std * 100:.2f} | "
            f"{self.ra_mean * 100:.2f}±{self.ra_std * 100:.2f}"
        )


class ScenarioCache:
    """Disk cache of backdoored models keyed by scenario fingerprint.

    Backed by :class:`~repro.orchestrator.artifacts.ArtifactStore`: writes
    are atomic and loads are checksum-verified, so a worker killed
    mid-write (or a corrupted disk) yields a cache miss and a retrain, not
    a crash or a silently wrong model.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        default = os.path.join(
            os.environ.get("REPRO_CACHE_DIR", os.path.expanduser("~/.cache/repro")), "models"
        )
        self.directory = directory or default
        self.artifacts = ArtifactStore(self.directory)

    def path(self, config: ScenarioConfig) -> str:
        return self.artifacts.path(config.fingerprint(), ".npz")

    def load(self, config: ScenarioConfig, model: Module) -> bool:
        """Load cached weights into ``model``; returns False on miss."""
        state = self.artifacts.get_state(config.fingerprint())
        if state is None:
            return False
        model.load_state_dict(state)
        return True

    def store(self, config: ScenarioConfig, model: Module) -> None:
        self.artifacts.put_state(config.fingerprint(), model.state_dict())


class TrialCache:
    """Disk cache of per-trial defense metrics.

    Grids overlap across benches (the Figure 1 bench covers the Table I/II
    grids) and long runs get interrupted; caching each completed
    ``(scenario, defense, kwargs, budget)`` cell makes every re-execution
    resume instead of recompute.  Only the three metrics are cached —
    defense-report details are not (they can hold large histories).
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        default = os.path.join(
            os.environ.get("REPRO_CACHE_DIR", os.path.expanduser("~/.cache/repro")), "trials"
        )
        self.directory = directory or default
        self.artifacts = ArtifactStore(self.directory)

    @staticmethod
    def key(
        config: ScenarioConfig, defense: str, defense_kwargs: Optional[Dict], spc: int, seed: int
    ) -> str:
        payload = json.dumps(
            {
                "scenario": config.fingerprint(),
                "defense": defense,
                "kwargs": defense_kwargs or {},
                "spc": spc,
                "seed": seed,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:20]

    def _path(self, key: str) -> str:
        return self.artifacts.path(key, ".json")

    def load(self, key: str) -> Optional[BackdoorMetrics]:
        data = self.artifacts.get_json(key)
        if data is None:
            return None
        return BackdoorMetrics(acc=data["acc"], asr=data["asr"], ra=data["ra"])

    def store(self, key: str, metrics: BackdoorMetrics) -> None:
        self.artifacts.put_json(key, {"acc": metrics.acc, "asr": metrics.asr, "ra": metrics.ra})


def _build_dataset(config: ScenarioConfig) -> Tuple[ImageDataset, ImageDataset, ImageDataset]:
    """(train, test, reservoir) for the scenario; reservoir is extra clean data."""
    total_train = config.n_train + config.n_reservoir
    if config.dataset == "synth_cifar":
        train_all, test = make_synth_cifar(
            n_train=total_train,
            n_test=config.n_test,
            num_classes=config.num_classes,
            seed=config.seed,
        )
    elif config.dataset == "synth_gtsrb":
        train_all, test = make_synth_gtsrb(
            n_train=total_train,
            n_test=config.n_test,
            num_classes=config.num_classes,
            seed=config.seed,
        )
    else:
        raise KeyError(f"unknown dataset {config.dataset!r}")
    train = train_all.subset(np.arange(config.n_train))
    reservoir = train_all.subset(np.arange(config.n_train, total_train))
    return train, test, reservoir


class BenchmarkRunner:
    """Run attack→defense→metrics grids.

    Parameters
    ----------
    cache:
        Optional backdoored-model cache (created by default).
    verbose:
        Log progress.
    """

    def __init__(
        self,
        cache: Optional[ScenarioCache] = None,
        trial_cache: Optional[TrialCache] = None,
        verbose: bool = True,
    ) -> None:
        self.cache = cache if cache is not None else ScenarioCache()
        self.trial_cache = trial_cache if trial_cache is not None else TrialCache()
        self.verbose = verbose

    # ------------------------------------------------------------------
    # Scenario preparation
    # ------------------------------------------------------------------
    def prepare(self, config: ScenarioConfig) -> ScenarioData:
        """Train (or load) the backdoored model and package scenario data."""
        train, test, reservoir = _build_dataset(config)
        attack = build_attack(
            config.attack,
            target_class=config.target_class,
            image_shape=train.image_shape,
            **dict(config.attack_kwargs),
        )
        model = build_model(
            config.model,
            num_classes=config.num_classes,
            profile=config.model_profile,
            seed=config.seed + 1,
        )
        if self.cache.load(config, model):
            if self.verbose:
                _LOG.info("loaded cached backdoored model for %s", config.fingerprint())
        else:
            if self.verbose:
                _LOG.info(
                    "training backdoored model: %s/%s/%s",
                    config.dataset, config.model, config.attack,
                )
            train_cfg = TrainConfig(
                epochs=config.train_epochs,
                batch_size=config.train_batch_size,
                lr=config.train_lr,
                shuffle_seed=config.seed,
            )
            train_backdoored_model(
                model, train, attack,
                poison_ratio=config.poison_ratio,
                config=train_cfg,
                rng=np.random.default_rng(config.seed + 2),
            )
            self.cache.store(config, model)
        baseline = evaluate_backdoor_metrics(model, test, attack)
        if self.verbose:
            _LOG.info("baseline: %s", baseline)
        return ScenarioData(
            config=config,
            backdoored_model=model,
            attack=attack,
            test_set=test,
            reservoir=reservoir,
            baseline=baseline,
        )

    # ------------------------------------------------------------------
    # Defense evaluation
    # ------------------------------------------------------------------
    def run_defense_trial(
        self,
        scenario: ScenarioData,
        defense_name: str,
        budget: DefenderBudget,
        defense_kwargs: Optional[Dict] = None,
    ) -> TrialResult:
        """Apply one defense with one budget draw to a fresh model copy.

        Completed cells are served from :class:`TrialCache` (the budget's
        seed fully determines the draw, so the cached metrics are exact).
        """
        cache_key = TrialCache.key(
            scenario.config, defense_name, defense_kwargs, budget.spc, budget.seed
        )
        cached = self.trial_cache.load(cache_key) if self.trial_cache else None
        if cached is not None:
            if self.verbose:
                _LOG.info(
                    "%s spc=%d trial=%d: %s (cached)",
                    defense_name, budget.spc, budget.trial, cached,
                )
            return TrialResult(
                defense=defense_name, spc=budget.spc, trial=budget.trial,
                metrics=cached, details={"cached": True},
            )
        defense = build_defense(defense_name, **(defense_kwargs or {}))
        data = budget.draw(scenario.reservoir, attack=scenario.attack)
        model = copy.deepcopy(scenario.backdoored_model)
        report = defense.apply(model, data)
        metrics = evaluate_backdoor_metrics(model, scenario.test_set, scenario.attack)
        if self.trial_cache:
            self.trial_cache.store(cache_key, metrics)
        if self.verbose:
            _LOG.info(
                "%s spc=%d trial=%d: %s", defense_name, budget.spc, budget.trial, metrics
            )
        return TrialResult(
            defense=defense_name,
            spc=budget.spc,
            trial=budget.trial,
            metrics=metrics,
            details=report.details,
        )

    def run_cell(
        self,
        scenario: ScenarioData,
        defense_name: str,
        spc: int,
        num_trials: int = 5,
        defense_kwargs: Optional[Dict] = None,
        root_seed: int = 0,
    ) -> AggregateResult:
        """All trials of one (defense, SPC) cell, aggregated."""
        trials = [
            self.run_defense_trial(scenario, defense_name, budget, defense_kwargs)
            for budget in budget_trials(spc, num_trials, root_seed)
        ]
        return AggregateResult.from_trials(trials)

    def run_grid(
        self,
        scenario: ScenarioData,
        defenses: List[str],
        spc_values: List[int],
        num_trials: int = 5,
        defense_kwargs: Optional[Dict[str, Dict]] = None,
        root_seed: int = 0,
    ) -> List[AggregateResult]:
        """Full defense × SPC grid for one scenario."""
        defense_kwargs = defense_kwargs or {}
        results = []
        for spc in spc_values:
            for name in defenses:
                results.append(
                    self.run_cell(
                        scenario, name, spc, num_trials,
                        defense_kwargs.get(name), root_seed,
                    )
                )
        return results
