"""Result presentation: paper-style tables and scatter series (Figs. 1-2).

Tables I and II report, per attack and SPC, one 'ACC | ASR | RA' row per
defense (mean±std).  Figures 1 and 2 are scatter plots of ACC-vs-ASR and
RA-vs-ASR across all scenarios; :func:`scatter_series` extracts exactly the
(x, y) series a plotting tool would consume, and :func:`render_scatter_text`
draws a dependency-free ASCII rendition for terminal inspection.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .metrics import BackdoorMetrics
from .runner import AggregateResult

__all__ = ["format_table", "scatter_series", "render_scatter_text"]


def format_table(
    results: Dict[str, List[AggregateResult]],
    baseline: Dict[str, BackdoorMetrics],
    title: str = "",
) -> str:
    """Render a paper-style table.

    Parameters
    ----------
    results:
        ``{attack_name: [AggregateResult, ...]}`` — each list covers the
        defense × SPC grid for that attack.
    baseline:
        ``{attack_name: BackdoorMetrics}`` no-defense reference row.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for attack, aggregates in results.items():
        lines.append(f"\nAttack: {attack}")
        base = baseline.get(attack)
        if base is not None:
            lines.append(
                f"  {'baseline':<12} {'-':>4}  "
                f"ACC {base.acc * 100:6.2f}        | ASR {base.asr * 100:6.2f}        | RA {base.ra * 100:6.2f}"
            )
        for agg in sorted(aggregates, key=lambda a: (a.spc, a.defense)):
            lines.append(
                f"  {agg.defense:<12} {agg.spc:>4}  "
                f"ACC {agg.acc_mean * 100:6.2f}±{agg.acc_std * 100:5.2f} | "
                f"ASR {agg.asr_mean * 100:6.2f}±{agg.asr_std * 100:5.2f} | "
                f"RA {agg.ra_mean * 100:6.2f}±{agg.ra_std * 100:5.2f}"
            )
    return "\n".join(lines)


def scatter_series(
    results: Iterable[AggregateResult],
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Figure 1/2 data: per defense, ACC-vs-ASR and RA-vs-ASR point lists.

    Returns ``{defense: {"acc_vs_asr": [(asr, acc), ...],
    "ra_vs_asr": [(asr, ra), ...]}}`` with values in percent, matching the
    paper's axes (x = ASR, y = ACC or RA).
    """
    series: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for agg in results:
        entry = series.setdefault(agg.defense, {"acc_vs_asr": [], "ra_vs_asr": []})
        entry["acc_vs_asr"].append((agg.asr_mean * 100, agg.acc_mean * 100))
        entry["ra_vs_asr"].append((agg.asr_mean * 100, agg.ra_mean * 100))
    return series


def render_scatter_text(
    series: Dict[str, Dict[str, List[Tuple[float, float]]]],
    which: str = "acc_vs_asr",
    width: int = 60,
    height: int = 20,
) -> str:
    """ASCII scatter plot (x = ASR %, y = ACC or RA %).

    Each defense gets a distinct marker; legend appended below the axes.
    """
    if which not in ("acc_vs_asr", "ra_vs_asr"):
        raise ValueError(f"unknown series {which!r}")
    markers = "ox+*#@%&sd"
    canvas = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for idx, (defense, entry) in enumerate(sorted(series.items())):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker} = {defense}")
        for x, y in entry[which]:
            col = min(width - 1, max(0, int(round(x / 100 * (width - 1)))))
            row = min(height - 1, max(0, int(round((100 - y) / 100 * (height - 1)))))
            canvas[row][col] = marker
    y_label = "ACC%" if which == "acc_vs_asr" else "RA%"
    lines = [f"{y_label} ^"]
    for row in canvas:
        lines.append("     |" + "".join(row))
    lines.append("     +" + "-" * width + "> ASR%")
    lines.append("     " + "   ".join(legend))
    return "\n".join(lines)
