"""Evaluation harness: ACC/ASR/RA metrics, SPC budgets, grid runner, reports."""

from .budget import DefenderBudget, budget_trials
from .claims import Claim, ClaimVerdict, TABLE_CLAIMS, check_table_claims, format_verdicts
from .experiments import (
    EXPERIMENT_IDS,
    FEDERATED_EXPERIMENT_IDS,
    ExperimentProfile,
    ExperimentResult,
    ExperimentSpec,
    experiment_spec,
    get_profile,
    run_experiment,
    scenario_configs,
)
from .metrics import (
    BackdoorMetrics,
    confusion_matrix,
    evaluate_all_to_all_metrics,
    evaluate_backdoor_metrics,
    per_class_asr,
)
from .plotting import figure_svg, line_svg, pruning_history_svg, scatter_svg
from .reporting import format_table, render_scatter_text, scatter_series
from .stats import BootstrapResult, paired_bootstrap, rank_defenses, win_tie_loss
from .runner import (
    AggregateResult,
    BenchmarkRunner,
    ScenarioCache,
    ScenarioConfig,
    ScenarioData,
    TrialCache,
    TrialResult,
)

__all__ = [
    "BackdoorMetrics",
    "evaluate_backdoor_metrics",
    "evaluate_all_to_all_metrics",
    "per_class_asr",
    "confusion_matrix",
    "DefenderBudget",
    "budget_trials",
    "Claim",
    "ClaimVerdict",
    "TABLE_CLAIMS",
    "check_table_claims",
    "format_verdicts",
    "ScenarioConfig",
    "ScenarioData",
    "ScenarioCache",
    "TrialCache",
    "BenchmarkRunner",
    "TrialResult",
    "AggregateResult",
    "format_table",
    "scatter_series",
    "render_scatter_text",
    "scatter_svg",
    "figure_svg",
    "line_svg",
    "pruning_history_svg",
    "BootstrapResult",
    "paired_bootstrap",
    "rank_defenses",
    "win_tie_loss",
    "EXPERIMENT_IDS",
    "FEDERATED_EXPERIMENT_IDS",
    "ExperimentProfile",
    "ExperimentResult",
    "ExperimentSpec",
    "experiment_spec",
    "get_profile",
    "run_experiment",
    "scenario_configs",
]
