"""Automated verification of the paper's qualitative claims.

EXPERIMENTS.md promises the reproduction preserves the *shape* of the
paper's results.  This module makes that promise executable: each
:class:`Claim` is a predicate over one attack column's aggregates
(defense × SPC cells plus the no-defense baseline), and
:func:`check_table_claims` returns a PASS/FAIL verdict per claim.

The claims encode the paper's §V-D narrative, not exact numbers:

- C1 *attack embeds*: baseline ASR is high while baseline ACC is usable;
- C2 *ours works*: Grad-Prune at the top SPC cuts ASR by at least half
  without catastrophic ACC loss;
- C3 *identity*: ASR + RA ≤ 1 in every cell (metric sanity);
- C4 *CLP is data-free*: its cells are identical across SPC values;
- C5 *recovery*: where Grad-Prune cuts ASR, RA rises above the baseline RA;
- C6 *budget monotonicity (soft)*: Grad-Prune's ASR at the largest SPC is
  no worse than at the smallest (more data should not hurt).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .metrics import BackdoorMetrics
from .runner import AggregateResult

__all__ = ["Claim", "ClaimVerdict", "TABLE_CLAIMS", "check_table_claims", "format_verdicts"]


@dataclass
class ClaimVerdict:
    """Outcome of checking one claim."""

    claim_id: str
    description: str
    passed: bool
    detail: str


@dataclass
class Claim:
    """A named predicate over (aggregates, baseline)."""

    claim_id: str
    description: str
    check: Callable[[Sequence[AggregateResult], BackdoorMetrics], ClaimVerdict]


def _cells(aggregates: Sequence[AggregateResult], defense: str) -> List[AggregateResult]:
    return sorted((a for a in aggregates if a.defense == defense), key=lambda a: a.spc)


def _c1_attack_embeds(aggregates, baseline) -> ClaimVerdict:
    passed = baseline.asr >= 0.7 and baseline.acc >= 0.6
    return ClaimVerdict(
        "C1", "attack embeds (baseline ASR>=0.70 at ACC>=0.60)", passed,
        f"baseline ACC={baseline.acc:.3f} ASR={baseline.asr:.3f}",
    )


def _c2_ours_works(aggregates, baseline) -> ClaimVerdict:
    ours = _cells(aggregates, "grad_prune")
    if not ours:
        return ClaimVerdict("C2", "Grad-Prune present", False, "no grad_prune cells")
    best = ours[-1]  # largest SPC
    asr_halved = best.asr_mean <= 0.5 * baseline.asr + 1e-9
    acc_kept = best.acc_mean >= baseline.acc - 0.20
    return ClaimVerdict(
        "C2",
        "Grad-Prune at top SPC halves ASR with ACC within 0.20 of baseline",
        asr_halved and acc_kept,
        f"ASR {baseline.asr:.3f}->{best.asr_mean:.3f}, ACC {baseline.acc:.3f}->{best.acc_mean:.3f}",
    )


def _c3_identity(aggregates, baseline) -> ClaimVerdict:
    violations = [
        f"{a.defense}/spc{a.spc}" for a in aggregates if a.asr_mean + a.ra_mean > 1.0 + 1e-6
    ]
    return ClaimVerdict(
        "C3", "ASR + RA <= 1 in every cell", not violations,
        "ok" if not violations else f"violated in {violations}",
    )


def _c4_clp_data_free(aggregates, baseline) -> ClaimVerdict:
    clp = _cells(aggregates, "clp")
    if len(clp) < 2:
        return ClaimVerdict("C4", "CLP SPC-invariant", True, "single SPC cell; trivially holds")
    reference = clp[0]
    same = all(
        abs(c.acc_mean - reference.acc_mean) < 1e-9
        and abs(c.asr_mean - reference.asr_mean) < 1e-9
        for c in clp[1:]
    )
    return ClaimVerdict(
        "C4", "CLP cells identical across SPC (data-free)", same,
        f"ASR per SPC: {[round(c.asr_mean, 4) for c in clp]}",
    )


def _c5_recovery(aggregates, baseline) -> ClaimVerdict:
    ours = _cells(aggregates, "grad_prune")
    if not ours:
        return ClaimVerdict("C5", "Grad-Prune present", False, "no grad_prune cells")
    best = ours[-1]
    if best.asr_mean > 0.5 * baseline.asr:
        return ClaimVerdict(
            "C5", "RA rises where ASR falls", True,
            "ASR not halved here; claim not applicable (vacuously true)",
        )
    passed = best.ra_mean >= baseline.ra + 0.05
    return ClaimVerdict(
        "C5", "RA rises where ASR falls", passed,
        f"RA {baseline.ra:.3f}->{best.ra_mean:.3f}",
    )


def _c6_budget_monotone(aggregates, baseline) -> ClaimVerdict:
    ours = _cells(aggregates, "grad_prune")
    if len(ours) < 2:
        return ClaimVerdict("C6", "budget monotonicity", True, "single SPC; trivially holds")
    passed = ours[-1].asr_mean <= ours[0].asr_mean + 0.15
    return ClaimVerdict(
        "C6",
        "Grad-Prune ASR at top SPC <= ASR at lowest SPC (+0.15 noise margin)",
        passed,
        f"ASR spc{ours[0].spc}={ours[0].asr_mean:.3f} vs spc{ours[-1].spc}={ours[-1].asr_mean:.3f}",
    )


TABLE_CLAIMS: List[Claim] = [
    Claim("C1", "attack embeds", _c1_attack_embeds),
    Claim("C2", "Grad-Prune halves ASR, keeps ACC", _c2_ours_works),
    Claim("C3", "ASR + RA <= 1", _c3_identity),
    Claim("C4", "CLP SPC-invariant", _c4_clp_data_free),
    Claim("C5", "RA recovery", _c5_recovery),
    Claim("C6", "budget monotonicity", _c6_budget_monotone),
]


def check_table_claims(
    aggregates: Sequence[AggregateResult],
    baseline: BackdoorMetrics,
    claims: Optional[List[Claim]] = None,
) -> List[ClaimVerdict]:
    """Evaluate every claim on one attack column; returns verdicts in order."""
    return [claim.check(aggregates, baseline) for claim in (claims or TABLE_CLAIMS)]


def format_verdicts(verdicts: Sequence[ClaimVerdict], header: str = "") -> str:
    """Human-readable PASS/FAIL report."""
    lines = [header] if header else []
    for verdict in verdicts:
        status = "PASS" if verdict.passed else "FAIL"
        lines.append(f"  [{status}] {verdict.claim_id} {verdict.description} — {verdict.detail}")
    return "\n".join(lines)
