"""ANP baseline (Wu & Wang, 2021): Adversarial Neuron Pruning.

ANP's insight: backdoor neurons are the ones whose *adversarial weight
perturbation* most easily flips clean predictions.  It learns a per-neuron
mask ``m`` in [0, 1] under worst-case multiplicative weight perturbations
``delta`` bounded by ``epsilon``:

    min_m  alpha * L(clean; m (1 + delta*)) + (1 - alpha) * L(clean; m)
    where  delta* = argmax_delta L(clean; m (1 + delta)),  |delta| <= eps

Neurons whose learned mask falls below a threshold are pruned.  We realize
the masks by temporarily swapping every ``Conv2d`` for a :class:`MaskedConv2d`
wrapper whose effective weight is ``weight * m * (1 + delta)`` per output
channel; autograd then yields exact mask/perturbation gradients.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..data.dataset import DataLoader
from ..models.pruning_utils import FilterRef, PruningMask, iter_conv_layers
from ..nn import Tensor, cross_entropy
from ..nn import functional as F
from ..nn.layers import Conv2d
from ..nn.module import Module, Parameter, replace_module
from .base import Defense, DefenderData, DefenseReport

__all__ = ["ANPDefense", "MaskedConv2d"]


class MaskedConv2d(Module):
    """Conv2d wrapper with per-output-channel mask and perturbation."""

    def __init__(self, conv: Conv2d) -> None:
        super().__init__()
        self.conv = conv
        self.mask = Parameter(np.ones((conv.out_channels, 1, 1, 1), dtype=np.float32))
        self.delta = Parameter(np.zeros((conv.out_channels, 1, 1, 1), dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        scale = self.mask * (self.delta + 1.0)
        weight = self.conv.weight * scale
        bias = None
        if self.conv.bias is not None:
            bias = self.conv.bias * self.mask.reshape(self.conv.out_channels)
        return F.conv2d(
            x,
            weight,
            bias,
            stride=self.conv.stride,
            padding=self.conv.padding,
            groups=self.conv.groups,
        )


class ANPDefense(Defense):
    """Adversarial neuron pruning.

    Parameters
    ----------
    epsilon:
        Perturbation budget (ANP paper default 0.4).
    alpha:
        Trade-off between perturbed and unperturbed clean loss.
    mask_lr:
        Learning rate of the mask optimization.
    steps:
        Mask-optimization iterations (each = 1 inner ascent + 1 outer descent).
    threshold:
        Prune channels whose final mask is below this value.
    batch_size, seed:
        Data handling.
    """

    name = "anp"

    def __init__(
        self,
        epsilon: float = 0.4,
        alpha: float = 0.2,
        mask_lr: float = 0.2,
        steps: int = 120,
        threshold: float = 0.2,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.epsilon = epsilon
        self.alpha = alpha
        self.mask_lr = mask_lr
        self.steps = steps
        self.threshold = threshold
        self.batch_size = batch_size
        self.seed = seed

    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Learn adversarial channel masks, prune low-mask channels."""
        # Swap in masked wrappers.
        conv_names = [name for name, _ in iter_conv_layers(model)]
        wrappers: Dict[str, MaskedConv2d] = {}
        for name in conv_names:
            conv = dict(iter_conv_layers(model))[name]
            wrapper = MaskedConv2d(conv)
            replace_module(model, name, wrapper)
            wrappers[name] = wrapper

        model.eval()  # running BN stats; defender batches are tiny
        loader = DataLoader(
            data.clean_train,
            batch_size=min(self.batch_size, max(1, len(data.clean_train))),
            shuffle=True,
            rng=np.random.default_rng(self.seed),
        )
        batch_iter = iter(loader)

        def next_batch() -> Tuple[np.ndarray, np.ndarray]:
            nonlocal batch_iter
            try:
                return next(batch_iter)
            except StopIteration:
                batch_iter = iter(loader)
                return next(batch_iter)

        masks = [w.mask for w in wrappers.values()]
        deltas = [w.delta for w in wrappers.values()]

        for _step in range(self.steps):
            images, labels = next_batch()
            batch = Tensor(images)
            # Inner ascent on delta (maximize perturbed clean loss).
            for p in masks + deltas:
                p.zero_grad()
            loss_perturbed = cross_entropy(model(batch), labels)
            loss_perturbed.backward()
            for delta in deltas:
                if delta.grad is not None:
                    delta.data += self.epsilon * np.sign(delta.grad)
                    np.clip(delta.data, -self.epsilon, self.epsilon, out=delta.data)
            # Outer descent on the mask.
            for p in masks + deltas:
                p.zero_grad()
            loss_perturbed = cross_entropy(model(batch), labels)
            saved_delta = [d.data.copy() for d in deltas]
            for d in deltas:
                d.data[...] = 0.0
            loss_natural = cross_entropy(model(batch), labels)
            for d, s in zip(deltas, saved_delta):
                d.data[...] = s
            total = self.alpha * loss_perturbed + (1.0 - self.alpha) * loss_natural
            total.backward()
            for m in masks:
                if m.grad is not None:
                    m.data -= self.mask_lr * m.grad
                    np.clip(m.data, 0.0, 1.0, out=m.data)

        # Restore plain convs and prune low-mask channels.
        final_masks = {name: w.mask.data.reshape(-1).copy() for name, w in wrappers.items()}
        for name, wrapper in wrappers.items():
            replace_module(model, name, wrapper.conv)
        mask = PruningMask(model)
        pruned: List[str] = []
        for name, values in final_masks.items():
            for index in np.flatnonzero(values < self.threshold):
                ref = FilterRef(name, int(index))
                mask.prune(ref)
                pruned.append(str(ref))
        return DefenseReport(
            name=self.name,
            details={
                "num_pruned": len(pruned),
                "pruned": pruned,
                "mask_summary": {
                    name: {"min": float(v.min()), "mean": float(v.mean())}
                    for name, v in final_masks.items()
                },
            },
        )
