"""NAD baseline (Li et al., 2021): Neural Attention Distillation.

Two stages: (1) fine-tune a copy of the backdoored model on clean data to
obtain a *teacher*; (2) fine-tune the original (student) with the combined
loss ``CE + beta * sum_l AT(student_l, teacher_l)``, where ``AT`` is the
L2 distance between normalized spatial attention maps (channel-wise mean of
squared activations) at matched intermediate layers.  The distillation term
steers the student's attention away from trigger regions the teacher no
longer attends to.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Tuple

import numpy as np

from ..data.dataset import DataLoader, ImageDataset
from ..nn import SGD, Tensor, cross_entropy, no_grad
from ..nn.module import Module
from ..models.pruning_utils import iter_conv_layers
from .base import Defense, DefenderData, DefenseReport
from .finetune import FineTuningDefense

__all__ = ["NADDefense", "attention_map"]


def attention_map(features: Tensor) -> Tensor:
    """Normalized spatial attention: mean over channels of squared features.

    Input (N, C, H, W) -> flattened, L2-normalized (N, H*W).  Stays on the
    autograd graph so the distillation loss backpropagates into the student.
    """
    attention = (features * features).mean(axis=1)  # (N, H, W)
    flat = attention.flatten(start_dim=1)
    norm = (flat * flat).sum(axis=1, keepdims=True).pow(0.5) + 1e-8
    return flat / norm


def _attention_layers(model: Module, count: int) -> List[str]:
    """Pick the last ``count`` conv layers as distillation points."""
    names = [name for name, _ in iter_conv_layers(model)]
    return names[-count:]


class NADDefense(Defense):
    """Neural attention distillation.

    Parameters
    ----------
    beta:
        Weight of the attention-distillation term.
    teacher_epochs:
        Fine-tuning epochs to build the teacher.
    epochs, lr, batch_size, seed:
        Student distillation hyperparameters.
    num_attention_layers:
        How many (final) conv layers to distill.
    """

    name = "nad"

    def __init__(
        self,
        beta: float = 500.0,
        teacher_epochs: int = 10,
        epochs: int = 10,
        lr: float = 0.01,
        batch_size: int = 32,
        num_attention_layers: int = 3,
        seed: int = 0,
    ) -> None:
        self.beta = beta
        self.teacher_epochs = teacher_epochs
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.num_attention_layers = num_attention_layers
        self.seed = seed

    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Distill the student toward a clean-fine-tuned teacher's attention."""
        # Stage 1: teacher = clean-fine-tuned copy of the student.
        teacher = copy.deepcopy(model)
        FineTuningDefense(
            lr=self.lr, epochs=self.teacher_epochs, batch_size=self.batch_size, seed=self.seed
        ).apply(teacher, data)
        teacher.eval()

        layer_names = _attention_layers(model, self.num_attention_layers)
        student_convs = dict(iter_conv_layers(model))
        teacher_convs = dict(iter_conv_layers(teacher))

        student_feats: Dict[str, Tensor] = {}
        teacher_feats: Dict[str, Tensor] = {}
        handles = []
        for name in layer_names:
            def s_hook(_m, out, _name=name):
                student_feats[_name] = out

            def t_hook(_m, out, _name=name):
                teacher_feats[_name] = out

            handles.append(student_convs[name].register_forward_hook(s_hook))
            handles.append(teacher_convs[name].register_forward_hook(t_hook))

        optimizer = SGD(model.parameters(), lr=self.lr, momentum=0.9, weight_decay=5e-4)
        loader = DataLoader(
            data.clean_train,
            batch_size=min(self.batch_size, max(1, len(data.clean_train))),
            shuffle=True,
            rng=np.random.default_rng(self.seed),
        )
        losses: List[float] = []
        try:
            for _epoch in range(self.epochs):
                model.train()
                epoch_loss, batches = 0.0, 0
                for images, labels in loader:
                    batch = Tensor(images)
                    with no_grad():
                        teacher(batch)
                    logits = model(batch)
                    loss = cross_entropy(logits, labels)
                    for name in layer_names:
                        student_at = attention_map(student_feats[name])
                        teacher_at = Tensor(attention_map(teacher_feats[name]).data)
                        diff = student_at - teacher_at
                        loss = loss + self.beta * (diff * diff).sum(axis=1).mean()
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                    epoch_loss += loss.item()
                    batches += 1
                losses.append(epoch_loss / max(batches, 1))
        finally:
            for handle in handles:
                handle.remove()
        model.eval()
        return DefenseReport(
            name=self.name,
            details={"attention_layers": layer_names, "losses": losses},
        )
