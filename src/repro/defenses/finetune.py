"""FT baseline: vanilla fine-tuning on the defender's clean data.

The oldest mitigation (Liu et al., 2018, as the non-pruning half of
Fine-Pruning): simply continue training on clean data, hoping catastrophic
forgetting erodes the backdoor.  The paper's Tables I-II show this works
with enough data (SPC=100) and collapses in low-data settings — behaviour
our reproduction inherits.
"""

from __future__ import annotations

from ..core.tuner import FineTuner
from ..nn.module import Module
from .base import Defense, DefenderData, DefenseReport

__all__ = ["FineTuningDefense"]


class FineTuningDefense(Defense):
    """Fine-tune on clean data only.

    Parameters
    ----------
    lr, epochs, batch_size, seed:
        Standard fine-tuning hyperparameters; early stopping uses the clean
        validation loss with the given patience.
    """

    name = "ft"

    def __init__(
        self,
        lr: float = 0.01,
        epochs: int = 20,
        patience: int = 5,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.tuner = FineTuner(
            lr=lr, patience=patience, max_epochs=epochs, batch_size=batch_size, seed=seed
        )

    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Fine-tune on the defender's clean data (early-stopped)."""
        history = self.tuner.tune(model, data.clean_train, data.clean_val)
        return DefenseReport(
            name=self.name,
            details={"epochs_run": len(history.train_losses), "stop_reason": history.stop_reason},
        )
