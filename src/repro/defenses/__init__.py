"""Baseline backdoor mitigation defenses (paper §V-B).

The paper's own method lives in :mod:`repro.core`; it is registered here too
so the evaluation harness can address every approach uniformly.
"""

from typing import Callable, Dict

from .anp import ANPDefense, MaskedConv2d
from .base import Defense, DefenderData, DefenseReport
from .bnp import BNPDefense, bn_statistic_divergence
from .fed_unlearn import FederatedUnlearningDefense
from .clp import CLPDefense, channel_lipschitz_bounds
from .fine_pruning import FinePruningDefense, mean_channel_activations
from .finetune import FineTuningDefense
from .ft_sam import FTSAMDefense
from .nad import NADDefense, attention_map
from .neural_cleanse import NeuralCleanseDefense


def _grad_prune_factory(**kwargs) -> Defense:
    # Imported lazily: repro.core imports this package's base module, so a
    # top-level import here would be circular.
    from ..core.defense import GradPruneConfig, GradPruneDefense

    if kwargs:
        return GradPruneDefense(GradPruneConfig(**kwargs))
    return GradPruneDefense()


DEFENSE_REGISTRY: Dict[str, Callable[..., Defense]] = {
    "ft": FineTuningDefense,
    "fp": FinePruningDefense,
    "nad": NADDefense,
    "nc": NeuralCleanseDefense,
    "clp": CLPDefense,
    "bnp": BNPDefense,
    "ft_sam": FTSAMDefense,
    "anp": ANPDefense,
    "grad_prune": _grad_prune_factory,
    "fed_unlearn": FederatedUnlearningDefense,
}


def build_defense(name: str, **kwargs) -> Defense:
    """Instantiate a defense by registry name.

    Keyword arguments are forwarded to the defense constructor (for
    ``grad_prune`` they populate :class:`repro.core.GradPruneConfig`).
    """
    if name not in DEFENSE_REGISTRY:
        raise KeyError(f"unknown defense {name!r}; choose from {sorted(DEFENSE_REGISTRY)}")
    return DEFENSE_REGISTRY[name](**kwargs)


__all__ = [
    "Defense",
    "DefenderData",
    "DefenseReport",
    "FineTuningDefense",
    "FinePruningDefense",
    "NADDefense",
    "NeuralCleanseDefense",
    "CLPDefense",
    "BNPDefense",
    "FTSAMDefense",
    "ANPDefense",
    "FederatedUnlearningDefense",
    "MaskedConv2d",
    "DEFENSE_REGISTRY",
    "build_defense",
    "mean_channel_activations",
    "channel_lipschitz_bounds",
    "bn_statistic_divergence",
    "attention_map",
]
