"""CLP baseline (Zheng et al., 2022): data-free Channel Lipschitz Pruning.

Backdoor channels tend to have an abnormally large *channel Lipschitz
constant*: small trigger-aligned input changes produce large channel
activations.  CLP computes, per conv output channel ``k``, the upper bound

    UCLC_k = sigma_max(W_k) * |gamma_k| / sqrt(running_var_k + eps)

(spectral norm of the unfolded filter, scaled by the following batch-norm's
effective gain) and prunes channels whose UCLC exceeds ``mean + u * std``
within their layer.  No data touches the procedure — the paper's tables show
this makes CLP deterministic across SPC settings (identical rows for SPC 2 /
10 / 100) but brittle on architectures that violate its assumptions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..models.pruning_utils import FilterRef, PruningMask
from ..nn.layers import BatchNorm2d, Conv2d
from ..nn.module import Module
from .base import Defense, DefenderData, DefenseReport

__all__ = ["CLPDefense", "channel_lipschitz_bounds"]


def _conv_bn_pairs(model: Module) -> List[Tuple[str, Conv2d, Optional[BatchNorm2d]]]:
    """Pair each conv with the batch norm that immediately follows it.

    Walks modules in registration (definition) order, which matches forward
    order in all zoo architectures.
    """
    items = [(name, module) for name, module in model.named_modules()]
    pairs: List[Tuple[str, Conv2d, Optional[BatchNorm2d]]] = []
    for position, (name, module) in enumerate(items):
        if not isinstance(module, Conv2d):
            continue
        following: Optional[BatchNorm2d] = None
        for _next_name, next_module in items[position + 1 :]:
            if isinstance(next_module, Conv2d):
                break
            if isinstance(next_module, BatchNorm2d):
                if next_module.num_features == module.out_channels:
                    following = next_module
                break
        pairs.append((name, module, following))
    return pairs


def channel_lipschitz_bounds(model: Module) -> Dict[str, np.ndarray]:
    """UCLC per channel for every conv layer, keyed by layer name."""
    bounds: Dict[str, np.ndarray] = {}
    for name, conv, bn in _conv_bn_pairs(model):
        weight = conv.weight.data
        out_channels = weight.shape[0]
        sigma = np.empty(out_channels, dtype=np.float64)
        for k in range(out_channels):
            matrix = weight[k].reshape(weight.shape[1], -1)
            # Largest singular value of the unfolded filter.
            sigma[k] = np.linalg.svd(matrix, compute_uv=False)[0] if matrix.size else 0.0
        if bn is not None:
            gain = np.abs(bn.weight.data) / np.sqrt(bn.running_var + bn.eps)
            sigma = sigma * gain
        bounds[name] = sigma
    return bounds


class CLPDefense(Defense):
    """Data-free channel-Lipschitz pruning.

    Parameters
    ----------
    u:
        Outlier threshold in intra-layer standard deviations (the CLP
        paper's single hyperparameter; 3.0 is its default).
    """

    name = "clp"

    def __init__(self, u: float = 3.0) -> None:
        if u <= 0:
            raise ValueError(f"u must be positive, got {u}")
        self.u = u

    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Prune channels whose Lipschitz bound is an intra-layer outlier."""
        bounds = channel_lipschitz_bounds(model)
        mask = PruningMask(model)
        pruned: List[str] = []
        for layer, values in bounds.items():
            if len(values) < 2:
                continue
            threshold = values.mean() + self.u * values.std()
            for index in np.flatnonzero(values > threshold):
                ref = FilterRef(layer, int(index))
                mask.prune(ref)
                pruned.append(str(ref))
        return DefenseReport(
            name=self.name,
            details={"num_pruned": len(pruned), "pruned": pruned, "u": self.u},
        )
