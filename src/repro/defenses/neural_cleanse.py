"""Neural Cleanse defense (Wang et al., 2019) — paper reference [17].

The full pipeline the paper's fine-tuning stage is adapted from:

1. **Detect**: invert a minimal trigger per class; flag the class whose
   mask-L1 is an anomalously small MAD outlier.
2. **Patch by unlearning**: fine-tune the model on clean data where a
   fraction of samples carry the *inverted* trigger but keep their correct
   labels — teaching the model to ignore the trigger.

Unlike Grad-Prune, no weights are removed; mitigation is purely through
fine-tuning against the reconstructed trigger.  Also unlike Grad-Prune's
§IV-C stage, only a *portion* of the data is triggered (the detail the
paper explicitly changes — giving this baseline makes that comparison
testable).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import ImageDataset
from ..core.tuner import FineTuner
from ..nn.module import Module
from ..synthesis.inversion import detect_backdoor, invert_trigger
from .base import Defense, DefenderData, DefenseReport

__all__ = ["NeuralCleanseDefense"]


class NeuralCleanseDefense(Defense):
    """Trigger inversion + unlearning fine-tune.

    Parameters
    ----------
    num_classes:
        Class count for the detection sweep (None = infer from defender data;
        requires every class present, which the SPC protocol guarantees).
    inversion_steps:
        Adam iterations per class inversion.
    trigger_fraction:
        Fraction of fine-tuning samples stamped with the inverted trigger
        (Wang et al. use 10-20 %).
    epochs, lr, patience, batch_size, seed:
        Unlearning fine-tune hyperparameters.
    """

    name = "nc"

    def __init__(
        self,
        num_classes: Optional[int] = None,
        inversion_steps: int = 150,
        trigger_fraction: float = 0.2,
        epochs: int = 15,
        lr: float = 0.01,
        patience: int = 5,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if not 0.0 < trigger_fraction < 1.0:
            raise ValueError(f"trigger_fraction must be in (0, 1), got {trigger_fraction}")
        self.num_classes = num_classes
        self.inversion_steps = inversion_steps
        self.trigger_fraction = trigger_fraction
        self.epochs = epochs
        self.lr = lr
        self.patience = patience
        self.batch_size = batch_size
        self.seed = seed

    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Invert the trigger, then unlearning-fine-tune against it."""
        clean_pool = data.clean_train.concat(data.clean_val)
        num_classes = self.num_classes or clean_pool.num_classes

        detection = detect_backdoor(
            model, clean_pool, num_classes, steps=self.inversion_steps, seed=self.seed
        )
        if detection["flagged_classes"]:
            target = detection["flagged_classes"][0]
        else:
            target = int(detection["mask_l1"].argmin())
        trigger = detection["triggers"][target]

        # Build the unlearning fine-tune set: a fraction of clean training
        # samples stamped with the inverted trigger, labels unchanged.
        rng = np.random.default_rng(self.seed)
        n = len(data.clean_train)
        n_triggered = max(1, int(round(self.trigger_fraction * n)))
        chosen = rng.choice(n, size=n_triggered, replace=False)
        stamped_images = data.clean_train.images.copy()
        stamped_images[chosen] = trigger.apply(data.clean_train.images[chosen])
        train_set = ImageDataset(stamped_images, data.clean_train.labels.copy())

        tuner = FineTuner(
            lr=self.lr,
            patience=self.patience,
            max_epochs=self.epochs,
            batch_size=self.batch_size,
            seed=self.seed,
        )
        history = tuner.tune(model, train_set, data.clean_val)

        return DefenseReport(
            name=self.name,
            details={
                "detected_target": target,
                "flagged_classes": detection["flagged_classes"],
                "mask_l1": detection["mask_l1"].tolist(),
                "trigger_flip_rate": trigger.flip_rate,
                "epochs_run": len(history.train_losses),
                "tune_stop_reason": history.stop_reason,
            },
        )
