"""Shared defense interface.

Every mitigation approach (the six baselines and the paper's Grad-Prune)
receives the same :class:`DefenderData` bundle — the limited clean data the
paper's defender owns, pre-split into train/validation halves, plus the
attack handle used to *synthesize* backdoor variants (paper assumption
III-C: the defender can faithfully re-create triggered inputs) — and mutates
the model in place, returning a :class:`DefenseReport`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..attacks.base import BackdoorAttack
from ..data.dataset import ImageDataset
from ..nn.module import Module

__all__ = ["DefenderData", "DefenseReport", "Defense"]


@dataclass
class DefenderData:
    """The defender's data budget.

    Attributes
    ----------
    clean_train:
        Clean correctly-labeled samples available for fine-tuning / scoring.
    clean_val:
        Held-out clean samples for stopping decisions (never used for
        gradient computation — the paper is explicit about this split).
    attack:
        Trigger synthesis handle.  Defenses that do not use backdoor data
        (FT, FP, NAD, CLP, FT-SAM) simply ignore it.
    """

    clean_train: ImageDataset
    clean_val: ImageDataset
    attack: Optional[BackdoorAttack] = None

    def backdoor_train(self) -> ImageDataset:
        """Triggered copies of the clean training samples with true labels."""
        if self.attack is None:
            raise ValueError("no attack handle available to synthesize backdoor data")
        return self.attack.triggered_with_true_labels(self.clean_train)

    def backdoor_val(self) -> ImageDataset:
        """Triggered copies of the clean validation samples with true labels."""
        if self.attack is None:
            raise ValueError("no attack handle available to synthesize backdoor data")
        return self.attack.triggered_with_true_labels(self.clean_val)


@dataclass
class DefenseReport:
    """What a defense did: free-form details plus standard counters."""

    name: str
    details: Dict[str, Any] = field(default_factory=dict)


class Defense(ABC):
    """Base class for backdoor mitigation approaches."""

    name: str = "base"

    @abstractmethod
    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Mitigate the backdoor in ``model`` in place."""

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"
