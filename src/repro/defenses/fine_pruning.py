"""Fine-Pruning baseline (Liu et al., 2018).

The classic activation-based defense: backdoor neurons are *dormant* on
clean inputs, so rank the last convolutional layer's channels by mean
activation over the defender's clean data and prune from the least active
upward until clean accuracy drops by more than the allowed margin; then
fine-tune.  Contrast with Grad-Prune: the ranking signal is activations on
clean data, not unlearning-loss gradients — the comparison the paper's
Tables I-II make.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.tuner import FineTuner
from ..data.dataset import ImageDataset
from ..models.pruning_utils import FilterRef, PruningMask, iter_conv_layers
from ..nn import Tensor, no_grad
from ..nn.module import Module
from ..training import evaluate_accuracy
from .base import Defense, DefenderData, DefenseReport

__all__ = ["FinePruningDefense", "mean_channel_activations"]


def mean_channel_activations(
    model: Module, dataset: ImageDataset, batch_size: int = 128
) -> Dict[str, np.ndarray]:
    """Mean absolute activation per conv output channel on ``dataset``.

    Returns ``{layer_name: (out_channels,) array}`` collected with forward
    hooks in eval mode.
    """
    sums: Dict[str, np.ndarray] = {}
    counts: Dict[str, int] = {}
    handles = []

    def make_hook(name: str):
        def hook(_module, output) -> None:
            data = output.data
            sums[name] = sums.get(name, 0.0) + np.abs(data).mean(axis=(2, 3)).sum(axis=0)
            counts[name] = counts.get(name, 0) + data.shape[0]

        return hook

    for name, conv in iter_conv_layers(model):
        handles.append(conv.register_forward_hook(make_hook(name)))
    model.eval()
    try:
        with no_grad():
            for start in range(0, len(dataset), batch_size):
                model(Tensor(dataset.images[start : start + batch_size]))
    finally:
        for handle in handles:
            handle.remove()
    return {name: sums[name] / counts[name] for name in sums}


class FinePruningDefense(Defense):
    """Prune dormant channels of the last conv layer, then fine-tune.

    Parameters
    ----------
    max_acc_drop:
        Stop pruning when validation clean accuracy has dropped this much
        below its initial value (the defender's accuracy budget).
    max_prune_fraction:
        Never prune more than this fraction of the targeted layer.
    lr, epochs, patience, batch_size, seed:
        Fine-tuning hyperparameters (clean data only, early-stopped).
    """

    name = "fp"

    def __init__(
        self,
        max_acc_drop: float = 0.10,
        max_prune_fraction: float = 0.95,
        lr: float = 0.01,
        epochs: int = 20,
        patience: int = 5,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.max_acc_drop = max_acc_drop
        self.max_prune_fraction = max_prune_fraction
        self.tuner = FineTuner(
            lr=lr, patience=patience, max_epochs=epochs, batch_size=batch_size, seed=seed
        )

    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Prune dormant last-layer channels, then fine-tune."""
        activations = mean_channel_activations(model, data.clean_train)
        if not activations:
            raise ValueError("model has no convolutional layers to prune")
        # Liu et al. prune the last convolutional layer (where backdoor
        # neurons concentrate); named_modules order makes this the final key.
        target_layer = list(activations)[-1]
        ranking = np.argsort(activations[target_layer])  # dormant first

        mask = PruningMask(model)
        initial_acc = evaluate_accuracy(model, data.clean_val)
        floor = initial_acc - self.max_acc_drop
        limit = int(len(ranking) * self.max_prune_fraction)
        pruned: List[FilterRef] = []
        for channel in ranking[:limit]:
            ref = FilterRef(target_layer, int(channel))
            saved = mask.prune(ref)
            acc = evaluate_accuracy(model, data.clean_val)
            if acc < floor:
                mask.unprune(ref, saved)
                break
            pruned.append(ref)

        history = self.tuner.tune(model, data.clean_train, data.clean_val, mask=mask)
        return DefenseReport(
            name=self.name,
            details={
                "target_layer": target_layer,
                "num_pruned": len(pruned),
                "pruned_channels": [r.index for r in pruned],
                "tune_stop_reason": history.stop_reason,
            },
        )
